//! Streaming (single-pass, O(1)-memory) aggregation: online moments and
//! quantile sketches.
//!
//! Million-trial sweeps cannot hold per-trial samples in memory, so the sweep
//! orchestrator folds every metric into these accumulators as trials finish.
//! Two estimators are provided:
//!
//! * [`StreamingMoments`] — count, plain running sum, Welford mean/M2 (for a
//!   numerically stable variance), min and max.  The reported
//!   [`mean`](StreamingMoments::mean) is `sum / count`, which is *bit-identical*
//!   to [`crate::estimators::mean`] over the same values in the same order —
//!   that identity is what lets a sweep-backed experiment reproduce a
//!   hand-rolled one digit-for-digit.
//! * [`P2Quantile`] — the P² algorithm of Jain & Chlamtac (1985): a five-marker
//!   sketch that tracks one quantile with O(1) memory and no sorting.
//!
//! Both expose their full internal state ([`StreamingMoments`] as public
//! fields, [`P2Quantile`] via [`P2Quantile::snapshot`]/[`P2Quantile::restore`])
//! so result stores can serialize them exactly and resume aggregation across
//! process restarts.

/// Anything that can absorb a stream of observations one value at a time.
///
/// The sweep orchestrator drives every metric accumulator through this trait,
/// so adding a new streaming estimator only requires implementing it here.
pub trait StreamingEstimator {
    /// Absorbs one observation.
    fn observe(&mut self, x: f64);

    /// Number of observations absorbed so far.
    fn count(&self) -> u64;
}

/// Online count / sum / mean / variance / min / max.
///
/// # Example
///
/// ```
/// use analysis::streaming::{StreamingEstimator, StreamingMoments};
///
/// let mut m = StreamingMoments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.observe(x);
/// }
/// assert_eq!(m.count(), 4);
/// assert!((m.mean() - 2.5).abs() < 1e-12);
/// assert!((m.std_dev() - 1.2909944487358056).abs() < 1e-12);
/// assert_eq!(m.min, 1.0);
/// assert_eq!(m.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingMoments {
    /// Number of observations.
    pub count: u64,
    /// Plain running sum, accumulated in observation order (`mean()` divides
    /// this by `count` so it matches a naive sum-then-divide bit for bit).
    pub sum: f64,
    /// Welford running mean (used only to keep `m2` stable; see `mean()`).
    pub welford_mean: f64,
    /// Welford sum of squared deviations.
    pub m2: f64,
    /// Smallest observation (`+∞` when empty).
    pub min: f64,
    /// Largest observation (`-∞` when empty).
    pub max: f64,
}

impl StreamingMoments {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            welford_mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The mean as `sum / count` (0 when empty).
    ///
    /// Deliberately *not* the Welford mean: dividing the plain in-order sum
    /// reproduces [`crate::estimators::mean`] exactly, so streaming and
    /// collect-then-average code paths print identical digits.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Unbiased sample variance from Welford's M2 (0 for fewer than 2 values).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Default for StreamingMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingEstimator for StreamingMoments {
    fn observe(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.welford_mean;
        self.welford_mean += delta / self.count as f64;
        self.m2 += delta * (x - self.welford_mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    fn count(&self) -> u64 {
        self.count
    }
}

/// The full serializable state of a [`P2Quantile`] sketch.
///
/// `buffer` holds the raw observations while fewer than five have been seen
/// (the sketch proper initialises from the first five); afterwards it is
/// empty and the five markers carry all state.
#[derive(Debug, Clone, PartialEq)]
pub struct P2State {
    /// The tracked quantile in `(0, 1)`.
    pub q: f64,
    /// Observations absorbed so far.
    pub count: u64,
    /// Marker heights (estimates of the min, q/2, q, (1+q)/2 quantiles, max).
    pub heights: [f64; 5],
    /// Marker positions (1-based ranks, integral values stored as `f64`).
    pub positions: [f64; 5],
    /// Desired marker positions.
    pub desired: [f64; 5],
    /// Raw observations while `count < 5`, in arrival order.
    pub buffer: Vec<f64>,
}

/// A P² single-quantile sketch (Jain & Chlamtac, 1985).
///
/// Tracks an estimate of the `q`-quantile of a stream using five markers,
/// adjusted with piecewise-parabolic interpolation — O(1) memory and O(1)
/// work per observation, no sorting, deterministic given the input order.
///
/// # Example
///
/// ```
/// use analysis::streaming::{P2Quantile, StreamingEstimator};
///
/// let mut median = P2Quantile::new(0.5).unwrap();
/// for i in 0..1001 {
///     // A linear ramp: the true median is 500.
///     median.observe(f64::from(i));
/// }
/// assert!((median.estimate() - 500.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    buffer: Vec<f64>,
}

impl P2Quantile {
    /// Creates a sketch for the quantile `q`; returns `None` unless
    /// `0 < q < 1`.
    #[must_use]
    pub fn new(q: f64) -> Option<Self> {
        if !(q > 0.0 && q < 1.0) {
            return None;
        }
        Some(Self {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            buffer: Vec::with_capacity(5),
        })
    }

    /// The tracked quantile.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The current estimate of the `q`-quantile.
    ///
    /// With fewer than five observations the estimate interpolates the sorted
    /// buffer; with none it is `NaN`.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.count < 5 {
            let mut sorted = self.buffer.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            // Linear interpolation between order statistics.
            let rank = self.q * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
        }
        self.heights[2]
    }

    /// Exports the full sketch state for serialization.
    #[must_use]
    pub fn snapshot(&self) -> P2State {
        P2State {
            q: self.q,
            count: self.count,
            heights: self.heights,
            positions: self.positions,
            desired: self.desired,
            buffer: self.buffer.clone(),
        }
    }

    /// Rebuilds a sketch from a [`snapshot`](Self::snapshot); returns `None`
    /// on an invalid quantile or an inconsistent buffer.
    #[must_use]
    pub fn restore(state: P2State) -> Option<Self> {
        let mut sketch = Self::new(state.q)?;
        if state.count < 5 && state.buffer.len() as u64 != state.count {
            return None;
        }
        if state.count >= 5 && !state.buffer.is_empty() {
            // Initialisation drains the buffer into the markers; a state
            // claiming both is corrupt and would diverge from the sketch
            // that produced it.
            return None;
        }
        sketch.count = state.count;
        sketch.heights = state.heights;
        sketch.positions = state.positions;
        sketch.desired = state.desired;
        sketch.buffer = state.buffer;
        Some(sketch)
    }

    /// Initialises the markers from the first five observations.
    fn initialise(&mut self) {
        let mut sorted = self.buffer.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for (h, s) in self.heights.iter_mut().zip(sorted) {
            *h = s;
        }
        self.buffer.clear();
    }

    /// One P² marker-adjustment step after a new observation landed in cell
    /// `k` (i.e. between markers `k` and `k + 1`).
    fn adjust(&mut self, k: usize) {
        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (des, inc) in self.desired.iter_mut().zip(self.increments) {
            *des += inc;
        }
        for i in 1..=3 {
            let d = self.desired[i] - self.positions[i];
            let can_right = d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0;
            let can_left = d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0;
            if !(can_right || can_left) {
                continue;
            }
            let d = d.signum();
            let parabolic = self.heights[i]
                + d / (self.positions[i + 1] - self.positions[i - 1])
                    * ((self.positions[i] - self.positions[i - 1] + d)
                        * (self.heights[i + 1] - self.heights[i])
                        / (self.positions[i + 1] - self.positions[i])
                        + (self.positions[i + 1] - self.positions[i] - d)
                            * (self.heights[i] - self.heights[i - 1])
                            / (self.positions[i] - self.positions[i - 1]));
            if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                self.heights[i] = parabolic;
            } else {
                // Parabolic prediction left the bracket: fall back to linear.
                let j = if d > 0.0 { i + 1 } else { i - 1 };
                self.heights[i] += d * (self.heights[j] - self.heights[i])
                    / (self.positions[j] - self.positions[i]);
            }
            self.positions[i] += d;
        }
    }
}

impl StreamingEstimator for P2Quantile {
    fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.buffer.push(x);
            if self.count == 5 {
                self.initialise();
            }
            return;
        }
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // Largest i in 0..=3 with heights[i] <= x.
            (0..=3).rfind(|&i| self.heights[i] <= x).unwrap_or(0)
        };
        self.adjust(k);
    }

    fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_the_batch_estimators() {
        let values: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 - 5.0).collect();
        let mut m = StreamingMoments::new();
        for &v in &values {
            m.observe(v);
        }
        assert_eq!(m.count(), 100);
        // Bit-identical to the naive in-order sum, not merely close.
        assert_eq!(m.mean(), crate::estimators::mean(&values));
        assert!((m.std_dev() - crate::estimators::std_dev(&values)).abs() < 1e-9);
        assert_eq!(m.min, -5.0);
        assert_eq!(m.max, 99.0 * 0.37 - 5.0);
    }

    #[test]
    fn empty_and_single_moments_are_safe() {
        let mut m = StreamingMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        m.observe(3.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min, 3.0);
        assert_eq!(m.max, 3.0);
    }

    #[test]
    fn p2_rejects_degenerate_quantiles() {
        assert!(P2Quantile::new(0.0).is_none());
        assert!(P2Quantile::new(1.0).is_none());
        assert!(P2Quantile::new(-0.5).is_none());
        assert!(P2Quantile::new(0.5).is_some());
    }

    #[test]
    fn p2_small_streams_interpolate_exactly() {
        let mut sketch = P2Quantile::new(0.5).unwrap();
        assert!(sketch.estimate().is_nan());
        for x in [4.0, 1.0, 3.0] {
            sketch.observe(x);
        }
        assert!((sketch.estimate() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn p2_tracks_quantiles_of_a_uniform_ramp() {
        for (q, truth) in [(0.1, 100.0), (0.5, 500.0), (0.9, 900.0)] {
            let mut sketch = P2Quantile::new(q).unwrap();
            for i in 0..=1000 {
                sketch.observe(f64::from(i));
            }
            let got = sketch.estimate();
            assert!(
                (got - truth).abs() < 25.0,
                "q = {q}: got {got}, want ≈ {truth}"
            );
        }
    }

    #[test]
    fn p2_survives_constant_streams() {
        let mut sketch = P2Quantile::new(0.9).unwrap();
        for _ in 0..100 {
            sketch.observe(7.0);
        }
        assert_eq!(sketch.estimate(), 7.0);
    }

    #[test]
    fn p2_snapshot_restore_round_trips_mid_stream() {
        let mut original = P2Quantile::new(0.5).unwrap();
        for i in 0..37 {
            original.observe(f64::from(i * i % 23));
        }
        let mut restored = P2Quantile::restore(original.snapshot()).unwrap();
        // Continuing both with the same tail keeps them identical.
        for i in 0..50 {
            original.observe(f64::from(i));
            restored.observe(f64::from(i));
        }
        assert_eq!(original, restored);

        // Round-trip also works before the sketch initialises.
        let mut young = P2Quantile::new(0.1).unwrap();
        young.observe(2.0);
        young.observe(9.0);
        let back = P2Quantile::restore(young.snapshot()).unwrap();
        assert_eq!(young, back);
    }

    #[test]
    fn p2_restore_rejects_inconsistent_state() {
        let mut state = P2Quantile::new(0.5).unwrap().snapshot();
        state.count = 3; // but buffer is empty
        assert!(P2Quantile::restore(state).is_none());
        let mut bad_q = P2Quantile::new(0.5).unwrap().snapshot();
        bad_q.q = 1.5;
        assert!(P2Quantile::restore(bad_q).is_none());
        // An initialised sketch (count >= 5) must have drained its buffer;
        // a state claiming both is corrupt.
        let mut sketch = P2Quantile::new(0.5).unwrap();
        for i in 0..9 {
            sketch.observe(f64::from(i));
        }
        let mut torn = sketch.snapshot();
        torn.buffer = vec![1.0, 2.0];
        assert!(P2Quantile::restore(torn).is_none());
    }

    #[test]
    fn p2_small_sample_regime_estimates_and_round_trips_exactly() {
        // Every pre-initialisation count (0..=4): the estimate is the exact
        // sorted-buffer interpolation, and snapshot -> restore reproduces
        // the sketch *exactly* (f64-bit equality via PartialEq), then
        // continues identically to the original.
        let samples = [7.5, -2.0, 7.5, 11.25]; // includes a duplicate
        for (q, truths) in [
            (0.5, [7.5, 2.75, 7.5, 7.5]),
            (0.1, [7.5, -1.05, -0.1, 0.85]),
        ] {
            let mut sketch = P2Quantile::new(q).unwrap();
            assert!(sketch.estimate().is_nan(), "empty sketch has no estimate");
            let empty = P2Quantile::restore(sketch.snapshot()).unwrap();
            assert_eq!(empty, sketch, "empty state round-trips");

            for (i, &x) in samples.iter().enumerate() {
                sketch.observe(x);
                assert_eq!(sketch.count(), i as u64 + 1);
                let got = sketch.estimate();
                let want = truths[i];
                assert!(
                    (got - want).abs() < 1e-12,
                    "q = {q}, n = {}: estimate {got} != {want}",
                    i + 1
                );
                let restored = P2Quantile::restore(sketch.snapshot()).unwrap();
                assert_eq!(restored, sketch, "q = {q}, n = {}", i + 1);
                // Exact same future: drive both across the initialisation
                // boundary and beyond.
                let mut a = sketch.clone();
                let mut b = restored;
                for j in 0..40 {
                    a.observe(f64::from(j * j % 13));
                    b.observe(f64::from(j * j % 13));
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn p2_all_duplicate_streams_stay_exact_and_round_trip() {
        // A constant stream must pin every quantile to the constant with no
        // drift (the parabolic update degenerates to equal heights), and the
        // sketch state must serialize exactly at every prefix length.
        for q in [0.1, 0.5, 0.9] {
            let mut sketch = P2Quantile::new(q).unwrap();
            for i in 0..200 {
                sketch.observe(-3.25);
                assert_eq!(
                    sketch.estimate(),
                    -3.25,
                    "q = {q}: drifted after {} duplicates",
                    i + 1
                );
                let state = sketch.snapshot();
                assert!(state.heights.iter().all(|h| h.is_finite()));
                let restored = P2Quantile::restore(state).unwrap();
                assert_eq!(restored, sketch);
            }
        }
    }

    #[test]
    fn moments_small_and_duplicate_streams_round_trip_through_public_state() {
        // StreamingMoments exposes its state as public fields; rebuilding
        // from them must be exact in the same regimes.
        let mut m = StreamingMoments::new();
        for _ in 0..3 {
            m.observe(0.1); // 0.1 is not exactly representable: sums wobble
        }
        let copy = StreamingMoments { ..m };
        assert_eq!(copy, m);
        assert_eq!(m.count(), 3);
        assert_eq!(m.min, 0.1);
        assert_eq!(m.max, 0.1);
        assert_eq!(m.mean(), (0.1 + 0.1 + 0.1) / 3.0, "in-order sum exactly");
    }
}
