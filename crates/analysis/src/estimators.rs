//! Empirical estimators: success rates with confidence intervals, means and
//! standard deviations.

/// An empirical success rate over repeated trials, with a Wilson confidence interval.
///
/// # Example
///
/// ```
/// use analysis::SuccessRate;
///
/// let mut rate = SuccessRate::new();
/// for i in 0..20 {
///     rate.record(i % 5 != 0); // 16 successes out of 20
/// }
/// assert!((rate.estimate() - 0.8).abs() < 1e-12);
/// let (lo, hi) = rate.wilson_interval(1.96);
/// assert!(lo < 0.8 && 0.8 < hi);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuccessRate {
    successes: u64,
    trials: u64,
}

impl SuccessRate {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an estimator directly from counts.
    #[must_use]
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        Self { successes, trials }
    }

    /// Records the outcome of one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Number of recorded trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of recorded successes.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// The point estimate (0 when no trials were recorded).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson score interval at the given z-value (e.g. `1.96` for 95%).
    ///
    /// Returns `(0, 1)` when no trials were recorded.
    #[must_use]
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation of a slice (0 for fewer than two values).
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Median of a slice (0 for an empty slice); does not require sorted input.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimators_are_safe() {
        let rate = SuccessRate::new();
        assert_eq!(rate.estimate(), 0.0);
        assert_eq!(rate.wilson_interval(1.96), (0.0, 1.0));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn success_rate_counts_and_estimates() {
        let mut rate = SuccessRate::new();
        for i in 0..10 {
            rate.record(i < 7);
        }
        assert_eq!(rate.trials(), 10);
        assert_eq!(rate.successes(), 7);
        assert!((rate.estimate() - 0.7).abs() < 1e-12);
        assert_eq!(rate, SuccessRate::from_counts(7, 10));
    }

    #[test]
    fn wilson_interval_contains_the_estimate_and_narrows_with_trials() {
        let narrow = SuccessRate::from_counts(800, 1_000);
        let wide = SuccessRate::from_counts(8, 10);
        let (nl, nh) = narrow.wilson_interval(1.96);
        let (wl, wh) = wide.wilson_interval(1.96);
        assert!(nl < 0.8 && 0.8 < nh);
        assert!(wl < 0.8 && 0.8 < wh);
        assert!(nh - nl < wh - wl);
        assert!(nl >= 0.0 && nh <= 1.0);
    }

    #[test]
    fn extreme_rates_stay_within_bounds() {
        let all = SuccessRate::from_counts(50, 50);
        let (lo, hi) = all.wilson_interval(1.96);
        assert!(lo > 0.9 && (hi - 1.0).abs() < 1e-12);
        let none = SuccessRate::from_counts(0, 50);
        let (lo, hi) = none.wilson_interval(1.96);
        assert!((lo - 0.0).abs() < 1e-12 && hi < 0.1);
    }

    #[test]
    fn mean_std_and_median_match_hand_computations() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&values) - 2.5).abs() < 1e-12);
        assert!((std_dev(&values) - 1.2909944487358056).abs() < 1e-12);
        assert!((median(&values) - 2.5).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}
