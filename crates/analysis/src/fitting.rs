//! Least-squares fits used to verify scaling shapes (`log n`, `1/ε²`).

/// The result of a simple linear least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 means a perfect fit).
    pub r_squared: f64,
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// Returns `None` if fewer than two points are given or all `x` are identical.
///
/// # Example
///
/// ```
/// use analysis::fit_linear;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.1, 3.9, 6.1, 8.0];
/// let fit = fit_linear(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 0.1);
/// assert!(fit.r_squared > 0.99);
/// ```
#[must_use]
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits a power law `y ≈ c·x^exponent` by linear regression in log-log space.
///
/// Returns `None` if any input is non-positive or the linear fit fails.
/// The returned pair is `(exponent, c)` along with the log-space `R²`.
#[must_use]
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    if xs.iter().any(|&x| x <= 0.0) || ys.iter().any(|&y| y <= 0.0) {
        return None;
    }
    let log_x: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let log_y: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let fit = fit_linear(&log_x, &log_y)?;
    Some((fit.slope, fit.intercept.exp(), fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_is_recovered() {
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 1.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(fit_linear(&[1.0], &[2.0]).is_none());
        assert!(fit_linear(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(fit_linear(&[1.0, 2.0], &[2.0]).is_none());
        assert!(fit_power_law(&[1.0, -2.0], &[1.0, 2.0]).is_none());
        assert!(fit_power_law(&[1.0, 2.0], &[0.0, 2.0]).is_none());
    }

    #[test]
    fn power_law_exponent_is_recovered() {
        let xs: Vec<f64> = (1..=20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x.powf(2.0)).collect();
        let (exponent, c, r2) = fit_power_law(&xs, &ys).unwrap();
        assert!((exponent - 2.0).abs() < 1e-9);
        assert!((c - 5.0).abs() < 1e-6);
        assert!(r2 > 0.999);
    }

    #[test]
    fn constant_data_has_perfect_r_squared() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!((fit.slope - 0.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_still_fits_well() {
        let xs: Vec<f64> = (1..=30).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }
}
