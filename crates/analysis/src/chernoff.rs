//! The multiplicative Chernoff bounds of paper §1.7.
//!
//! For independent (or negatively-correlated, per Panconesi–Srinivasan)
//! Bernoulli variables with sum `X` and mean `μ = E[X]`:
//!
//! * upper tail: `Pr[X ≥ (1+δ)μ] ≤ exp(−δ²μ/3)`   (Equation 1)
//! * lower tail: `Pr[X ≤ (1−δ)μ] ≤ exp(−δ²μ/2)`   (Equation 2)
//!
//! for any `0 < δ < 1`.  These are the only concentration tools the paper's
//! analysis needs; the experiments use them to derive predicted failure
//! probabilities to put next to the measured ones.

/// Upper bound on `Pr[X ≥ (1+δ)·mean]` (paper Equation 1).
///
/// Returns `1.0` (a vacuous bound) when `δ` or `mean` are outside the valid
/// range, so the function is total and safe to call on experiment data.
#[must_use]
pub fn upper_tail(delta: f64, mean: f64) -> f64 {
    if !(0.0..1.0).contains(&delta) || delta == 0.0 || mean <= 0.0 {
        return 1.0;
    }
    (-delta * delta * mean / 3.0).exp().min(1.0)
}

/// Upper bound on `Pr[X ≤ (1−δ)·mean]` (paper Equation 2).
///
/// Returns `1.0` (a vacuous bound) when `δ` or `mean` are outside the valid range.
#[must_use]
pub fn lower_tail(delta: f64, mean: f64) -> f64 {
    if !(0.0..1.0).contains(&delta) || delta == 0.0 || mean <= 0.0 {
        return 1.0;
    }
    (-delta * delta * mean / 2.0).exp().min(1.0)
}

/// The smallest mean `μ` for which the lower-tail bound drops below
/// `failure_probability` at relative deviation `δ`.
///
/// Used to reproduce the paper's "choose `s` large enough" arguments: e.g.
/// Claim 2.2 needs `e^{−ε²·Y₀/8} ≤ n^{−c}`, i.e. `Y₀ ≥ 8·c·ln n / ε²`.
#[must_use]
pub fn required_mean(delta: f64, failure_probability: f64) -> f64 {
    if !(0.0..1.0).contains(&delta) || delta == 0.0 {
        return f64::INFINITY;
    }
    if failure_probability <= 0.0 || failure_probability >= 1.0 {
        return 0.0;
    }
    2.0 * (1.0 / failure_probability).ln() / (delta * delta)
}

/// Exact tail probability `Pr[Bin(trials, p) ≥ threshold]`, computed by
/// summing the binomial mass; used in tests and small-sample predictions
/// where the Chernoff bound is too loose.
///
/// Returns `0.0` when `threshold > trials`.
#[must_use]
pub fn binomial_upper_tail(trials: u64, p: f64, threshold: u64) -> f64 {
    if threshold > trials {
        return 0.0;
    }
    if threshold == 0 {
        return 1.0;
    }
    let p = p.clamp(0.0, 1.0);
    // Iterate the pmf multiplicatively for numerical stability at small sizes.
    let q = 1.0 - p;
    let mut pmf = q.powf(trials as f64); // Pr[X = 0]
    let mut cdf_below = 0.0;
    for k in 0..threshold {
        cdf_below += pmf;
        // pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q
        let k_f = k as f64;
        if q == 0.0 {
            pmf = 0.0;
        } else {
            pmf *= (trials as f64 - k_f) / (k_f + 1.0) * (p / q);
        }
    }
    (1.0 - cdf_below).clamp(0.0, 1.0)
}

/// Probability that the majority of `2r + 1` independent samples, each correct
/// with probability `p`, is correct.
#[must_use]
pub fn majority_correct_probability(samples: u64, p: f64) -> f64 {
    debug_assert_eq!(samples % 2, 1, "majorities need an odd sample count");
    binomial_upper_tail(samples, p, samples / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tails_are_probabilities_and_decay_with_the_mean() {
        for &mean in &[1.0, 10.0, 100.0, 1_000.0] {
            let up = upper_tail(0.3, mean);
            let low = lower_tail(0.3, mean);
            assert!((0.0..=1.0).contains(&up));
            assert!((0.0..=1.0).contains(&low));
        }
        assert!(upper_tail(0.3, 1_000.0) < upper_tail(0.3, 10.0));
        assert!(lower_tail(0.3, 1_000.0) < lower_tail(0.3, 10.0));
    }

    #[test]
    fn lower_tail_is_tighter_than_upper_tail() {
        // exp(-δ²μ/2) ≤ exp(-δ²μ/3)
        assert!(lower_tail(0.4, 50.0) <= upper_tail(0.4, 50.0));
    }

    #[test]
    fn out_of_range_inputs_give_vacuous_bounds() {
        assert_eq!(upper_tail(0.0, 10.0), 1.0);
        assert_eq!(upper_tail(1.5, 10.0), 1.0);
        assert_eq!(lower_tail(0.3, -1.0), 1.0);
    }

    #[test]
    fn required_mean_inverts_the_lower_tail() {
        let delta = 0.25;
        let target = 1e-6;
        let mean = required_mean(delta, target);
        let achieved = lower_tail(delta, mean);
        assert!(achieved <= target * 1.0001);
        assert_eq!(required_mean(0.0, 0.1), f64::INFINITY);
        assert_eq!(required_mean(0.3, 2.0), 0.0);
    }

    #[test]
    fn binomial_tail_matches_hand_computed_values() {
        // Pr[Bin(3, 0.5) >= 2] = 0.5
        assert!((binomial_upper_tail(3, 0.5, 2) - 0.5).abs() < 1e-12);
        // Pr[Bin(2, 0.5) >= 1] = 0.75
        assert!((binomial_upper_tail(2, 0.5, 1) - 0.75).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(binomial_upper_tail(5, 0.3, 0), 1.0);
        assert_eq!(binomial_upper_tail(5, 0.3, 6), 0.0);
        assert!((binomial_upper_tail(5, 1.0, 5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn majority_probability_grows_with_sample_count_and_bias() {
        let p = 0.55;
        let small = majority_correct_probability(5, p);
        let large = majority_correct_probability(101, p);
        assert!(large > small);
        assert!(majority_correct_probability(21, 0.7) > majority_correct_probability(21, 0.55));
        // A fair coin gives exactly 1/2 for odd sample counts.
        assert!((majority_correct_probability(9, 0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chernoff_upper_bounds_the_exact_binomial_tail() {
        // X ~ Bin(200, 0.5), mean 100; Pr[X >= 130] should be below exp-bound.
        let exact = binomial_upper_tail(200, 0.5, 130);
        let bound = upper_tail(0.3, 100.0);
        assert!(exact <= bound, "exact {exact} vs bound {bound}");
    }
}
