//! Probability bounds, theoretical predictions and empirical estimators used
//! to reproduce the quantitative claims of *Breathe before Speaking*.
//!
//! * [`chernoff`] — the multiplicative Chernoff bounds of paper §1.7.
//! * [`stirling`] — Stirling-formula bounds on central binomial probabilities
//!   (Claim 2.12) and the two-step imaginary process of Lemma 2.11.
//! * [`theory`] — closed-form predictions: round/message complexities, the
//!   per-phase boost guarantee, per-hop deterioration and the §1.4 lower
//!   bounds.
//! * [`estimators`] — empirical success rates with Wilson confidence
//!   intervals, means and standard deviations.
//! * [`bias`] — bias/fraction-correct bookkeeping shared by experiments.
//! * [`fitting`] — least-squares fits used to check the `log n` and `1/ε²`
//!   scaling shapes.
//! * [`streaming`] — single-pass aggregation: online moments (Welford) and
//!   P² quantile sketches, used by the sweep orchestrator so million-trial
//!   sweeps never hold per-trial data in memory.
//! * [`tables`] — plain-text/markdown/CSV rendering for experiment reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod chernoff;
pub mod estimators;
pub mod fitting;
pub mod stirling;
pub mod streaming;
pub mod tables;
pub mod theory;

pub use bias::BiasTrajectory;
pub use estimators::{mean, std_dev, SuccessRate};
pub use fitting::{fit_linear, fit_power_law, LinearFit};
pub use streaming::{P2Quantile, P2State, StreamingEstimator, StreamingMoments};
pub use tables::Table;
