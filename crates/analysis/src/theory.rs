//! Closed-form predictions from the paper: complexities, lower bounds, and the
//! per-phase guarantees that the experiments compare measurements against.

/// Asymptotic shape of the protocol's round complexity (Theorem 2.17):
/// `constant · ln n / ε²`.
#[must_use]
pub fn predicted_rounds(n: usize, epsilon: f64, constant: f64) -> f64 {
    constant * (n as f64).ln() / (epsilon * epsilon)
}

/// Asymptotic shape of the protocol's message/bit complexity (Theorem 2.17):
/// `constant · n · ln n / ε²`.
#[must_use]
pub fn predicted_messages(n: usize, epsilon: f64, constant: f64) -> f64 {
    n as f64 * predicted_rounds(n, epsilon, constant)
}

/// Round-complexity lower bound of §1.4: every agent needs `Ω(ln n / ε²)`
/// received bits even if all of them came straight from the source, and it can
/// accept at most one per round.
#[must_use]
pub fn lower_bound_rounds(n: usize, epsilon: f64, constant: f64) -> f64 {
    constant * (n as f64).ln() / (epsilon * epsilon)
}

/// Message-complexity lower bound of §1.4: `Ω(n·ln n / ε²)` total bits.
#[must_use]
pub fn lower_bound_messages(n: usize, epsilon: f64, constant: f64) -> f64 {
    n as f64 * lower_bound_rounds(n, epsilon, constant)
}

/// Shannon-style two-party bound (§1.4): the number of uses of a binary
/// symmetric channel with crossover `1/2 − ε` needed to learn one bit with
/// error probability at most `failure`, up to constants: `ln(1/failure)/(2ε²)`.
///
/// This is the `Θ(1/ε²)` sample bound instantiated with the standard
/// Chernoff/KL constant for a majority decoder.
#[must_use]
pub fn two_party_samples(epsilon: f64, failure: f64) -> f64 {
    if failure <= 0.0 || failure >= 1.0 {
        return f64::INFINITY;
    }
    (1.0 / failure).ln() / (2.0 * epsilon * epsilon)
}

/// Per-hop deterioration of §1.6: a message relayed over `c` hops is correct
/// with probability `1/2 + (2ε)^c / 2`.
#[must_use]
pub fn relay_correct_probability(epsilon: f64, hops: u32) -> f64 {
    0.5 + 0.5 * (2.0 * epsilon).powi(hops as i32)
}

/// Per-sample correctness during Stage II (Lemma 2.11): sampling a population
/// with bias `δ` over a channel with margin `ε` yields a correct bit with
/// probability `1/2 + 2εδ`.
#[must_use]
pub fn noisy_sample_correct_probability(epsilon: f64, delta: f64) -> f64 {
    (0.5 + 2.0 * epsilon * delta).clamp(0.0, 1.0)
}

/// The bias the paper guarantees at the end of Stage I (Lemma 2.3):
/// `constant · √(ln n / n)`.
#[must_use]
pub fn stage1_final_bias(n: usize, constant: f64) -> f64 {
    constant * ((n as f64).ln() / n as f64).sqrt()
}

/// The per-phase growth guarantee of Stage II (Lemma 2.14): from a bias of
/// `δ`, one phase reaches at least `min{1.7·δ, 1/800}` — provided
/// `δ ≥ c·√(ln n / n)`.
#[must_use]
pub fn lemma_2_14_next_bias(delta: f64) -> f64 {
    (1.7 * delta).min(1.0 / 800.0)
}

/// The additive overhead of removing the global clock (Theorem 3.1):
/// `constant · ln² n` rounds.
#[must_use]
pub fn async_overhead_rounds(n: usize, constant: f64) -> f64 {
    let ln_n = (n as f64).ln();
    constant * ln_n * ln_n
}

/// Claim 2.2: at the end of phase 0 the activated set has size in
/// `[βs/3, βs]` and bias at least `ε/2`.  Returns `(min_activated, max_activated,
/// min_bias)` for the given phase-0 length.
#[must_use]
pub fn claim_2_2_bounds(beta_s: u64, epsilon: f64) -> (f64, f64, f64) {
    (beta_s as f64 / 3.0, beta_s as f64, epsilon / 2.0)
}

/// Claim 2.4: after phase `i` the activated population `X_i` satisfies
/// `(β+1)^i·X₀/16 ≤ X_i ≤ (β+1)^i·X₀`.  Returns `(lower, upper)`.
#[must_use]
pub fn claim_2_4_bounds(beta: u64, x0: u64, i: u32) -> (f64, f64) {
    let growth = (beta as f64 + 1.0).powi(i as i32);
    (growth * x0 as f64 / 16.0, growth * x0 as f64)
}

/// Claim 2.8: the per-level bias satisfies `ε_i ≥ ε^{i+1}/2`.
#[must_use]
pub fn claim_2_8_bias_lower_bound(epsilon: f64, level: u32) -> f64 {
    epsilon.powi(level as i32 + 1) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexities_scale_as_documented() {
        let base = predicted_rounds(1_000, 0.2, 1.0);
        assert!(predicted_rounds(1_000_000, 0.2, 1.0) / base > 1.9);
        assert!((predicted_rounds(1_000, 0.1, 1.0) / base - 4.0).abs() < 1e-9);
        assert!(
            (predicted_messages(1_000, 0.2, 1.0) / predicted_rounds(1_000, 0.2, 1.0) - 1_000.0)
                .abs()
                < 1e-6
        );
        assert_eq!(
            lower_bound_messages(500, 0.25, 1.0),
            500.0 * lower_bound_rounds(500, 0.25, 1.0)
        );
    }

    #[test]
    fn two_party_bound_grows_with_confidence_and_noise() {
        assert!(two_party_samples(0.1, 0.01) > two_party_samples(0.3, 0.01));
        assert!(two_party_samples(0.1, 0.0001) > two_party_samples(0.1, 0.01));
        assert_eq!(two_party_samples(0.1, 0.0), f64::INFINITY);
        assert_eq!(two_party_samples(0.1, 1.0), f64::INFINITY);
    }

    #[test]
    fn relay_probability_matches_single_hop_and_decays() {
        assert!((relay_correct_probability(0.2, 1) - 0.7).abs() < 1e-12);
        assert!(relay_correct_probability(0.2, 10) < 0.51);
        assert!((relay_correct_probability(0.5, 7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_correctness_is_clamped() {
        assert!((noisy_sample_correct_probability(0.2, 0.1) - 0.54).abs() < 1e-12);
        assert_eq!(noisy_sample_correct_probability(0.5, 0.6), 1.0);
    }

    #[test]
    fn stage1_bias_shrinks_with_n() {
        assert!(stage1_final_bias(1_000, 1.0) > stage1_final_bias(100_000, 1.0));
    }

    #[test]
    fn lemma_2_14_growth_caps_at_the_plateau() {
        assert!((lemma_2_14_next_bias(0.0005) - 0.00085).abs() < 1e-9);
        assert!((lemma_2_14_next_bias(0.1) - 1.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn async_overhead_is_polylogarithmic() {
        let small = async_overhead_rounds(1_000, 1.0);
        let large = async_overhead_rounds(1_000_000, 1.0);
        assert!(large / small < 5.0, "log² growth is tame");
    }

    #[test]
    fn claim_bounds_have_sane_shapes() {
        let (lo, hi, bias) = claim_2_2_bounds(300, 0.2);
        assert!(lo < hi);
        assert!((bias - 0.1).abs() < 1e-12);

        let (lo, hi) = claim_2_4_bounds(10, 50, 2);
        assert!((hi / lo - 16.0).abs() < 1e-9);
        assert!((hi - 121.0 * 50.0).abs() < 1e-9);

        assert!(claim_2_8_bias_lower_bound(0.2, 0) > claim_2_8_bias_lower_bound(0.2, 1));
        assert!((claim_2_8_bias_lower_bound(0.2, 0) - 0.1).abs() < 1e-12);
    }
}
