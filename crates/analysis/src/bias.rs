//! Bias bookkeeping: trajectories of the fraction of correct agents.

/// A recorded trajectory of the fraction of correct agents over phases or rounds.
///
/// # Example
///
/// ```
/// use analysis::BiasTrajectory;
///
/// let mut trajectory = BiasTrajectory::new();
/// trajectory.push(0.52);
/// trajectory.push(0.6);
/// trajectory.push(0.99);
/// assert_eq!(trajectory.len(), 3);
/// assert!((trajectory.final_bias().unwrap() - 0.49).abs() < 1e-12);
/// assert!(trajectory.is_monotonically_non_decreasing(1e-9));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BiasTrajectory {
    fractions: Vec<f64>,
}

impl BiasTrajectory {
    /// An empty trajectory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trajectory from recorded fractions of correct agents.
    #[must_use]
    pub fn from_fractions(fractions: Vec<f64>) -> Self {
        Self { fractions }
    }

    /// Appends the fraction of correct agents after one more phase/round.
    pub fn push(&mut self, fraction_correct: f64) {
        self.fractions.push(fraction_correct);
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Whether the trajectory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// The recorded fractions of correct agents.
    #[must_use]
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// The recorded biases (`fraction − 1/2`).
    #[must_use]
    pub fn biases(&self) -> Vec<f64> {
        self.fractions.iter().map(|f| f - 0.5).collect()
    }

    /// The final bias, if any point was recorded.
    #[must_use]
    pub fn final_bias(&self) -> Option<f64> {
        self.fractions.last().map(|f| f - 0.5)
    }

    /// First index at which the fraction of correct agents reached `threshold`, if any.
    #[must_use]
    pub fn first_reaching(&self, threshold: f64) -> Option<usize> {
        self.fractions.iter().position(|&f| f >= threshold)
    }

    /// Whether each point is at least the previous one minus `slack`
    /// (the boosting stage should essentially never lose ground).
    #[must_use]
    pub fn is_monotonically_non_decreasing(&self, slack: f64) -> bool {
        self.fractions.windows(2).all(|w| w[1] + slack >= w[0])
    }

    /// The per-step multiplicative growth factors of the bias (ignoring steps
    /// where the bias is non-positive).
    #[must_use]
    pub fn bias_growth_factors(&self) -> Vec<f64> {
        self.biases()
            .windows(2)
            .filter(|w| w[0] > 0.0)
            .map(|w| w[1] / w[0])
            .collect()
    }
}

impl FromIterator<f64> for BiasTrajectory {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            fractions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trajectory_behaves() {
        let t = BiasTrajectory::new();
        assert!(t.is_empty());
        assert_eq!(t.final_bias(), None);
        assert_eq!(t.first_reaching(0.5), None);
        assert!(t.is_monotonically_non_decreasing(0.0));
        assert!(t.bias_growth_factors().is_empty());
    }

    #[test]
    fn biases_and_fractions_are_consistent() {
        let t: BiasTrajectory = [0.5, 0.6, 0.75].into_iter().collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.fractions(), &[0.5, 0.6, 0.75]);
        let biases = t.biases();
        assert!((biases[1] - 0.1).abs() < 1e-12);
        assert!((t.final_bias().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn threshold_and_monotonicity_queries() {
        let t = BiasTrajectory::from_fractions(vec![0.51, 0.55, 0.54, 0.9, 1.0]);
        assert_eq!(t.first_reaching(0.9), Some(3));
        assert_eq!(t.first_reaching(1.01), None);
        assert!(!t.is_monotonically_non_decreasing(0.0));
        assert!(t.is_monotonically_non_decreasing(0.02));
    }

    #[test]
    fn growth_factors_skip_non_positive_biases() {
        let t = BiasTrajectory::from_fractions(vec![0.45, 0.55, 0.65]);
        let factors = t.bias_growth_factors();
        // Only the 0.05 -> 0.15 step counts (the first has negative bias).
        assert_eq!(factors.len(), 1);
        assert!((factors[0] - 3.0).abs() < 1e-9);
    }
}
