//! Stirling-formula bounds and the two-step imaginary process of Lemma 2.11.
//!
//! Claim 2.12 of the paper lower-bounds the probability that a fair-coin
//! population of `2r + 1` players lands within `x` of a tie:
//! `Pr[U_x] > x / (10 √r)` for `1 ≤ x ≤ √r`.  Lemma 2.11 then shows that the
//! majority of `γ = 2r + 1` noisy samples from a population with bias `δ` is
//! correct with probability at least `min{1/2 + 4δ, 1/2 + 1/100}`.  This
//! module provides both the paper's closed-form bounds and exact evaluations
//! so experiments can compare measured boost probabilities against them.

/// Natural-log factorial via the `ln Γ` series (adequate for the modest sizes
/// used in the analysis; exact for small integers by direct summation).
fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 256 {
        return (2..=n).map(|k| (k as f64).ln()).sum();
    }
    // Stirling's series with the 1/(12n) correction term.
    let n_f = n as f64;
    n_f * n_f.ln() - n_f + 0.5 * (2.0 * std::f64::consts::PI * n_f).ln() + 1.0 / (12.0 * n_f)
}

/// Probability that a fair binomial `Bin(2r+1, 1/2)` equals exactly `r + i`
/// ("`i` more wrong than right" in the paper's imaginary first step).
#[must_use]
pub fn central_binomial_probability(r: u64, i: u64) -> f64 {
    let n = 2 * r + 1;
    if r + i > n {
        return 0.0;
    }
    let k = r + i;
    let ln_p =
        ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k) - n as f64 * std::f64::consts::LN_2;
    ln_p.exp()
}

/// The paper's Claim 2.12 lower bound `x / (10 √r)` on `Pr[U_x]`, the
/// probability that the first step leaves between `r+1` and `r+x` wrong players.
#[must_use]
pub fn claim_2_12_lower_bound(r: u64, x: u64) -> f64 {
    if r == 0 || x == 0 {
        return 0.0;
    }
    x as f64 / (10.0 * (r as f64).sqrt())
}

/// Exact value of `Pr[U_x] = Σ_{i=1..x} Pr[exactly r+i wrong]`.
#[must_use]
pub fn probability_near_tie(r: u64, x: u64) -> f64 {
    (1..=x).map(|i| central_binomial_probability(r, i)).sum()
}

/// The paper's Lemma 2.11 guarantee: the probability that the majority of
/// `γ = 2r+1` noisy samples from a population with bias `δ` towards the
/// correct opinion is itself correct is at least `min{1/2 + 4δ, 1/2 + 1/100}`.
#[must_use]
pub fn lemma_2_11_lower_bound(delta: f64) -> f64 {
    0.5 + (4.0 * delta).min(0.01)
}

/// Exact probability that the majority of `gamma` samples is correct when each
/// sample is independently correct with probability `1/2 + 2·ε·δ`
/// (the per-sample correctness derived at the start of Lemma 2.11).
#[must_use]
pub fn exact_majority_boost(gamma: u64, epsilon: f64, delta: f64) -> f64 {
    let p = 0.5 + 2.0 * epsilon * delta;
    crate::chernoff::majority_correct_probability(gamma, p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_known_values() {
        assert!((ln_factorial(0) - 0.0).abs() < 1e-12);
        assert!((ln_factorial(1) - 0.0).abs() < 1e-12);
        assert!((ln_factorial(5) - (120.0f64).ln()).abs() < 1e-9);
        assert!((ln_factorial(10) - (3_628_800.0f64).ln()).abs() < 1e-9);
        // The Stirling branch should agree closely with the direct branch near
        // the crossover.
        let direct: f64 = (2..=300u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(300) - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn central_binomial_probabilities_sum_to_at_most_one() {
        let r = 40;
        let total: f64 = (0..=(r + 1))
            .map(|i| central_binomial_probability(r, i))
            .sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.4, "mass above the tie should be close to 1/2");
    }

    #[test]
    fn claim_2_12_bound_holds_for_exact_probabilities() {
        // Verify Pr[U_x] > x / (10 sqrt r) for a range of r and x <= sqrt r.
        for &r in &[9u64, 25, 64, 144, 400] {
            let sqrt_r = (r as f64).sqrt() as u64;
            for x in 1..=sqrt_r {
                let exact = probability_near_tie(r, x);
                let bound = claim_2_12_lower_bound(r, x);
                assert!(
                    exact > bound,
                    "r={r}, x={x}: exact {exact} <= bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma_2_11_bound_is_capped() {
        assert!((lemma_2_11_lower_bound(0.001) - 0.504).abs() < 1e-12);
        assert!((lemma_2_11_lower_bound(0.3) - 0.51).abs() < 1e-12);
    }

    #[test]
    fn exact_boost_dominates_the_papers_bound_for_large_gamma() {
        // With a comfortably large sample count (γ ≈ 16/ε²) the exact majority
        // probability exceeds the paper's min{1/2+4δ, ...} guarantee; the
        // paper's own constants are far larger still.
        let epsilon = 0.2;
        let gamma = 401; // ≈ 16 / 0.04, odd
        for &delta in &[0.005, 0.01, 0.05, 0.1, 0.25] {
            let exact = exact_majority_boost(gamma, epsilon, delta);
            let bound = lemma_2_11_lower_bound(delta);
            assert!(
                exact >= bound - 1e-9,
                "delta={delta}: exact {exact} < bound {bound}"
            );
        }
    }

    #[test]
    fn exact_boost_increases_with_delta_and_gamma() {
        let epsilon = 0.2;
        assert!(exact_majority_boost(101, epsilon, 0.1) > exact_majority_boost(101, epsilon, 0.01));
        assert!(exact_majority_boost(301, epsilon, 0.05) > exact_majority_boost(51, epsilon, 0.05));
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        assert_eq!(claim_2_12_lower_bound(0, 5), 0.0);
        assert_eq!(claim_2_12_lower_bound(5, 0), 0.0);
        assert_eq!(central_binomial_probability(3, 10), 0.0);
    }
}
