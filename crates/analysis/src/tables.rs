//! Result tables rendered as markdown or CSV (used by the experiment reports).

use serde::{Deserialize, Serialize};

/// A simple rectangular table of strings with named columns.
///
/// # Example
///
/// ```
/// use analysis::Table;
///
/// let mut table = Table::new("rounds vs n", &["n", "rounds"]);
/// table.push_row(&["1000", "1234"]);
/// table.push_row(&["2000", "1410"]);
/// let markdown = table.to_markdown();
/// assert!(markdown.contains("| n | rounds |"));
/// assert!(table.to_csv().starts_with("n,rounds"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column names.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column names.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows added so far.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row of cells (missing cells are filled with empty strings,
    /// extra cells are dropped).
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.columns.len())
            .map(|c| c.as_ref().to_string())
            .collect();
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured markdown (title as a heading).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (header row first, fields quoted only if they
    /// contain commas or quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(field: &str) -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for reports.
#[must_use]
pub fn fmt_float(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1_000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalised_to_the_column_count() {
        let mut table = Table::new("t", &["a", "b", "c"]);
        table.push_row(&["1"]);
        table.push_row(&["1", "2", "3", "4"]);
        assert_eq!(table.rows()[0], vec!["1", "", ""]);
        assert_eq!(table.rows()[1], vec!["1", "2", "3"]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn markdown_contains_header_separator_and_rows() {
        let mut table = Table::new("demo", &["x", "y"]);
        table.push_row(&["1", "2"]);
        let md = table.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes_awkward_fields() {
        let mut table = Table::new("demo", &["x", "y"]);
        table.push_row(&["a,b", "say \"hi\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn serde_round_trip_preserves_content() {
        let mut table = Table::new("demo", &["x"]);
        table.push_row(&["1"]);
        let json = serde_json_like(&table);
        assert!(json.contains("demo"));
    }

    // Minimal check that Serialize derives are wired (without pulling serde_json).
    fn serde_json_like(table: &Table) -> String {
        format!("{table:?}")
    }

    #[test]
    fn float_formatting_has_three_regimes() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(12345.678), "12346");
        assert_eq!(fmt_float(3.24159), "3.24");
        assert_eq!(fmt_float(0.012345), "0.0123");
    }
}
