//! End-to-end tests of the `sweep` binary: run, interrupt, resume, export —
//! and the byte-identity guarantee that holds it all together.
//!
//! The interruption is simulated two ways: deterministically with
//! `--max-cells` (stop after N cells, exactly what a kill between
//! checkpoints leaves behind) and destructively by truncating a shard file
//! mid-line (exactly what a kill *during* a checkpoint write leaves behind).
//! In both cases `sweep resume` must complete the grid and `sweep export`
//! must emit bytes identical to an uninterrupted run's.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A tiny 4-cell rumor sweep that runs in well under a second.
const TINY_SPEC: &str = r#"{
  "name": "cli-tiny",
  "protocol": "rumor",
  "backend": "agents",
  "trials": 3,
  "base_seed": 99,
  "point_base": 0,
  "rounds": 120,
  "defaults": {"epsilon": 0.25, "informed": 5.0},
  "axes": [{"key": "n", "values": [60.0, 90.0, 120.0, 150.0]}]
}"#;

fn sweep(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(args)
        // Telemetry-off assertions (and byte-identity references) must not
        // depend on an ambient opt-in from the harness environment; the
        // tests that want telemetry pass --telemetry or set the variable
        // explicitly.
        .env_remove("FLIP_TELEMETRY")
        .output()
        .expect("sweep binary runs")
}

fn sweep_ok(args: &[&str]) -> String {
    let out = sweep(args);
    assert!(
        out.status.success(),
        "sweep {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("sweep-cli-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("spec.json");
    fs::write(&path, TINY_SPEC).unwrap();
    path
}

fn export(dir: &Path, format: &str) -> String {
    sweep_ok(&["export", dir.to_str().unwrap(), format])
}

#[test]
fn interrupted_then_resumed_sweep_exports_byte_identical_output() {
    let root = scratch("resume");
    let spec = write_spec(&root);
    let spec = spec.to_str().unwrap();

    // Reference: an uninterrupted run.
    let full_dir = root.join("full");
    let stdout = sweep_ok(&[
        "run",
        spec,
        "--out",
        full_dir.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert!(stdout.contains("4 executed"), "{stdout}");
    let reference_csv = export(&full_dir, "--csv");
    let reference_json = export(&full_dir, "--json");

    // Interrupted: stop after 2 cells, then resume.
    let cut_dir = root.join("interrupted");
    let stdout = sweep_ok(&[
        "run",
        spec,
        "--out",
        cut_dir.to_str().unwrap(),
        "--max-cells",
        "2",
    ]);
    assert!(stdout.contains("incomplete (2/4"), "{stdout}");
    // Exporting an incomplete store refuses without --partial.
    let refused = sweep(&["export", cut_dir.to_str().unwrap(), "--csv"]);
    assert!(!refused.status.success());
    assert!(String::from_utf8_lossy(&refused.stderr).contains("incomplete"));

    let stdout = sweep_ok(&["resume", cut_dir.to_str().unwrap()]);
    assert!(stdout.contains("2 already persisted"), "{stdout}");
    assert_eq!(
        export(&cut_dir, "--csv"),
        reference_csv,
        "CSV must be byte-identical"
    );
    assert_eq!(
        export(&cut_dir, "--json"),
        reference_json,
        "JSON must be byte-identical"
    );

    // Resuming a complete sweep is a no-op.
    let stdout = sweep_ok(&["resume", cut_dir.to_str().unwrap()]);
    assert!(stdout.contains("0 executed"), "{stdout}");
}

#[test]
fn resume_with_a_different_thread_count_exports_byte_identical_output() {
    // The shard-to-worker mapping is a scheduling detail: a sweep killed
    // mid-run and resumed with a *different* `--threads` (or `FLIP_THREADS`)
    // than the original run must still export byte for byte what an
    // uninterrupted single-threaded run exports.  Worker counts change the
    // shard file layout, never the records.
    let root = scratch("resume-threads");
    let spec = write_spec(&root);
    let spec = spec.to_str().unwrap();

    // Reference: uninterrupted, three workers.
    let full_dir = root.join("full");
    sweep_ok(&[
        "run",
        spec,
        "--out",
        full_dir.to_str().unwrap(),
        "--threads",
        "3",
    ]);
    let reference_csv = export(&full_dir, "--csv");
    let reference_json = export(&full_dir, "--json");

    // Interrupted run at 2 threads, then a simulated kill during the last
    // checkpoint append (torn final line in the biggest shard).
    let cut_dir = root.join("cut");
    sweep_ok(&[
        "run",
        spec,
        "--out",
        cut_dir.to_str().unwrap(),
        "--threads",
        "2",
        "--max-cells",
        "3",
    ]);
    let shards: Vec<PathBuf> = fs::read_dir(cut_dir.join("shards"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    let victim = shards
        .iter()
        .max_by_key(|p| fs::metadata(p).unwrap().len())
        .unwrap();
    let content = fs::read(victim).unwrap();
    fs::write(victim, &content[..content.len() - 20]).unwrap();

    // Resume wider than the original run ever was.
    let stdout = sweep_ok(&["resume", cut_dir.to_str().unwrap(), "--threads", "5"]);
    assert!(stdout.contains("executed"), "{stdout}");
    assert_eq!(
        export(&cut_dir, "--csv"),
        reference_csv,
        "CSV must not depend on worker counts"
    );
    assert_eq!(
        export(&cut_dir, "--json"),
        reference_json,
        "JSON must not depend on worker counts"
    );

    // And a FLIP_THREADS override on a fresh single-cell-at-a-time run
    // still converges to the same bytes.
    let env_dir = root.join("env");
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(["run", spec, "--out", env_dir.to_str().unwrap()])
        .env("FLIP_THREADS", "1")
        .output()
        .expect("sweep binary runs");
    assert!(out.status.success());
    assert_eq!(export(&env_dir, "--csv"), reference_csv);
}

#[test]
fn a_kill_mid_checkpoint_write_loses_only_the_torn_cell() {
    let root = scratch("torn");
    let spec = write_spec(&root);
    let dir = root.join("store");
    sweep_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    let reference_csv = export(&dir, "--csv");

    // Simulate `kill -9` during a checkpoint append: truncate one shard
    // inside its final line.
    let shards: Vec<PathBuf> = fs::read_dir(dir.join("shards"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    let victim = shards
        .iter()
        .max_by_key(|p| fs::metadata(p).unwrap().len())
        .unwrap();
    let content = fs::read(victim).unwrap();
    fs::write(victim, &content[..content.len() - 25]).unwrap();

    // The torn cell re-runs on resume; the export is unchanged.
    let stdout = sweep_ok(&["resume", dir.to_str().unwrap()]);
    assert!(stdout.contains("1 executed"), "{stdout}");
    assert_eq!(export(&dir, "--csv"), reference_csv);
}

#[test]
fn telemetry_run_is_bit_identical_and_report_renders_the_profile() {
    let root = scratch("telemetry");
    let spec = write_spec(&root);
    let spec = spec.to_str().unwrap();

    // Reference: a plain run with telemetry off.
    let plain_dir = root.join("plain");
    sweep_ok(&["run", spec, "--out", plain_dir.to_str().unwrap()]);
    let reference_csv = export(&plain_dir, "--csv");

    // Telemetry on: results must not move by a bit, and the aggregate
    // profile table streams to stderr alongside the progress lines.
    let tele_dir = root.join("tele");
    let out = sweep(&[
        "run",
        spec,
        "--out",
        tele_dir.to_str().unwrap(),
        "--telemetry",
        "--progress",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("telemetry profile"), "{stderr}");
    assert!(stderr.contains("protocol_step"), "{stderr}");
    assert!(stderr.contains("[sweep] cell"), "{stderr}");
    assert_eq!(
        export(&tele_dir, "--csv"),
        reference_csv,
        "telemetry must never change results"
    );
    // Profile shards live beside — never inside — the result shards.
    assert!(tele_dir.join("telemetry").is_dir());

    // `report --telemetry` re-renders the profile from persisted shards.
    let report = sweep_ok(&["report", tele_dir.to_str().unwrap(), "--telemetry"]);
    assert!(report.contains("4/4 cells persisted"), "{report}");
    assert!(report.contains("4 cell profiles"), "{report}");
    assert!(report.contains("protocol_step"), "{report}");

    // A store that never recorded telemetry reports that, not an error.
    let plain_report = sweep_ok(&["report", plain_dir.to_str().unwrap(), "--telemetry"]);
    assert!(
        plain_report.contains("no telemetry profiles"),
        "{plain_report}"
    );

    // The FLIP_TELEMETRY environment opt-in is equivalent to the flag.
    let env_dir = root.join("env");
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(["run", spec, "--out", env_dir.to_str().unwrap()])
        .env("FLIP_TELEMETRY", "1")
        .output()
        .expect("sweep binary runs");
    assert!(out.status.success());
    assert!(env_dir.join("telemetry").is_dir());
    assert_eq!(export(&env_dir, "--csv"), reference_csv);
}

#[test]
fn telemetry_shards_survive_interruption_and_resume() {
    let root = scratch("telemetry-resume");
    let spec = write_spec(&root);
    let spec = spec.to_str().unwrap();
    let dir = root.join("store");
    let dir_str = dir.to_str().unwrap();

    // Interrupt after 2 of 4 cells, then resume with telemetry still on.
    sweep_ok(&[
        "run",
        spec,
        "--out",
        dir_str,
        "--max-cells",
        "2",
        "--telemetry",
    ]);
    let report = sweep_ok(&["report", dir_str, "--telemetry"]);
    assert!(report.contains("2/4 cells persisted"), "{report}");
    assert!(report.contains("2 cell profiles"), "{report}");

    sweep_ok(&["resume", dir_str, "--telemetry"]);
    let report = sweep_ok(&["report", dir_str, "--telemetry"]);
    assert!(report.contains("4/4 cells persisted"), "{report}");
    assert!(report.contains("4 cell profiles"), "{report}");

    // A resume without --telemetry completes fine and keeps the profiles
    // already persisted (a no-op resume here: the grid is complete).
    let stdout = sweep_ok(&["resume", dir_str]);
    assert!(stdout.contains("0 executed"), "{stdout}");
}

#[test]
fn run_rejects_a_store_holding_a_different_spec() {
    let root = scratch("mismatch");
    let spec = write_spec(&root);
    let dir = root.join("store");
    sweep_ok(&[
        "run",
        spec.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);

    let edited = root.join("edited.json");
    fs::write(&edited, TINY_SPEC.replace("\"trials\": 3", "\"trials\": 5")).unwrap();
    let out = sweep(&[
        "run",
        edited.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fresh --out"));
}

#[test]
fn gen_list_and_generated_specs_are_runnable() {
    let listing = sweep_ok(&["list"]);
    for name in ["e01", "e01-dense", "e08", "e08-dense", "a2"] {
        assert!(listing.contains(name), "list must mention {name}");
    }
    assert!(listing.contains("majority-sampler"));

    // `gen` output parses and carries the legacy seed points.
    let generated = sweep_ok(&["gen", "e01", "--trials", "2"]);
    assert!(generated.contains("\"point_base\": 0"));
    assert!(generated.contains("broadcast"));
    let spec = sweeps::SweepSpec::from_json_text(&generated).expect("gen output parses");
    assert_eq!(spec.trials, 2);
    assert_eq!(spec.base_seed, 0xBEA7_4E5E);

    let unknown = sweep(&["gen", "e99"]);
    assert!(!unknown.status.success());

    // A flag before the name is a clean usage error, not a misparse.
    let swapped = sweep(&["gen", "--trials", "2", "e01"]);
    assert!(!swapped.status.success());
    assert!(String::from_utf8_lossy(&swapped.stderr).contains("name first"));
}

#[test]
fn zero_valued_flags_fail_loudly_instead_of_running_empty() {
    // `--threads 0`, `--max-cells 0` and `--rounds 0` must all refuse with
    // a message naming the flag — a zero here would not crash, it would
    // silently produce an empty run or an empty aggregate.
    let root = scratch("zeros");
    let spec = write_spec(&root);
    let spec = spec.to_str().unwrap();
    let dir = root.join("store");
    let dir = dir.to_str().unwrap();
    for (args, needle) in [
        (
            vec!["run", spec, "--out", dir, "--threads", "0"],
            "--threads",
        ),
        (
            vec!["run", spec, "--out", dir, "--max-cells", "0"],
            "--max-cells",
        ),
        (vec!["run", spec, "--out", dir, "--threads=0"], "--threads"),
        (vec!["resume", dir, "--max-cells=0"], "--max-cells"),
        (vec!["gen", "e01", "--rounds", "0"], "--rounds"),
        (vec!["gen", "e01", "--trials", "0"], "--trials"),
    ] {
        let out = sweep(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "{args:?} must name {needle}, got: {stderr}"
        );
    }
    // No store directory may have been created by the refused runs.
    assert!(!Path::new(dir).exists(), "refused runs must not touch disk");

    // The positive counterpart: a --rounds override lands in gen output.
    let generated = sweep_ok(&["gen", "e01", "--rounds", "777"]);
    assert!(generated.contains("\"rounds\": 777"), "{generated}");
}

#[test]
fn usage_errors_exit_nonzero_with_guidance() {
    for bad in [
        vec!["run"],
        vec!["run", "/nonexistent/spec.json", "--out", "/tmp/x"],
        vec!["export", "/nonexistent-dir", "--csv"],
        vec!["export"],
        vec!["frobnicate"],
        // Single-dash typos must fail, not pass as positionals.
        vec!["resume", "/tmp/x", "-threads", "4"],
    ] {
        let out = sweep(&bad);
        assert!(!out.status.success(), "{bad:?} must fail");
        assert!(!out.stderr.is_empty(), "{bad:?} must explain itself");
    }
    // And --help succeeds.
    let help = sweep_ok(&["--help"]);
    assert!(help.contains("sweep run"));
}

#[test]
fn unknown_sweep_names_suggest_the_nearest_builtin() {
    let root = scratch("suggest");
    let dir = root.join("store");
    let dir = dir.to_str().unwrap();

    // A near-miss spec path is almost always a typo for a builtin name.
    let run = sweep(&["run", "e0", "--out", dir]);
    assert!(!run.status.success());
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("did you mean the builtin sweep `e01`"),
        "run e0 must suggest e01, got: {stderr}"
    );
    assert!(!Path::new(dir).exists(), "refused runs must not touch disk");

    // A near-miss of the composed report points at `run report`.
    let report = sweep(&["run", "repor", "--out", dir]);
    let stderr = String::from_utf8_lossy(&report.stderr);
    assert!(
        stderr.contains("did you mean the composed report"),
        "run repor must suggest the composed report, got: {stderr}"
    );

    // `gen` gives the same courtesy.
    let gen = sweep(&["gen", "e08-dens"]);
    assert!(!gen.status.success());
    let stderr = String::from_utf8_lossy(&gen.stderr);
    assert!(
        stderr.contains("did you mean `e08-dense`"),
        "gen e08-dens must suggest e08-dense, got: {stderr}"
    );

    // A name nothing like a builtin gets the plain error, no wild guess.
    let far = sweep(&["run", "/nonexistent/spec.json", "--out", dir]);
    let stderr = String::from_utf8_lossy(&far.stderr);
    assert!(!stderr.contains("did you mean"), "no guess for {stderr}");
}

#[test]
fn list_groups_builtins_by_family_and_marks_composed_specs() {
    let listing = sweep_ok(&["list"]);
    for family in [
        "scaling (E1-E3)",
        "stage claims (E4-E7)",
        "consensus (E8)",
        "comparisons (E9-E12)",
        "ablations (A1-A3)",
        "fault injection (E13)",
    ] {
        assert!(listing.contains(family), "list must group by {family}");
    }
    assert!(listing.contains("composed specs"), "{listing}");
    assert!(listing.contains("members=13"), "{listing}");
    // The composed entry precedes the protocol listing, after the families.
    let report_at = listing.find("composed specs").unwrap();
    let protocols_at = listing.find("registered protocols").unwrap();
    assert!(report_at < protocols_at);
}

#[test]
fn composed_report_runs_resume_and_refuse_flat_export() {
    let root = scratch("composed");
    let dir = root.join("report");
    let dir = dir.to_str().unwrap();

    // `gen report` is meaningless — the composition is not one spec.
    let gen = sweep(&["gen", "report"]);
    assert!(!gen.status.success());
    assert!(String::from_utf8_lossy(&gen.stderr).contains("sweep run report"));

    // `run report` without --out must refuse before touching disk.
    let no_out = sweep(&["run", "report", "--trials", "1"]);
    assert!(!no_out.status.success());
    assert!(String::from_utf8_lossy(&no_out.stderr).contains("--out"));

    // A budgeted composed run persists a cut and reports it as such.
    let cut = sweep_ok(&[
        "run",
        "report",
        "--out",
        dir,
        "--trials",
        "1",
        "--max-cells",
        "2",
    ]);
    assert!(cut.contains("13 members"), "{cut}");
    assert!(cut.contains("2 executed"), "{cut}");
    assert!(cut.contains("incomplete"), "{cut}");
    assert!(Path::new(dir).join("report.json").is_file());

    // The composed store resumes through the generic `resume`, budget again.
    let resumed = sweep_ok(&["resume", dir, "--max-cells", "1"]);
    assert!(resumed.contains("2 already persisted"), "{resumed}");
    assert!(resumed.contains("1 executed"), "{resumed}");

    // `report` renders per-member status for a composed store.
    let status = sweep_ok(&["report", dir]);
    assert!(status.contains("member `e01`"), "{status}");
    assert!(status.contains("member `e12`"), "{status}");

    // Flat export is refused with a pointer at the member stores.
    let export = sweep(&["export", dir, "--csv"]);
    assert!(!export.status.success());
    let stderr = String::from_utf8_lossy(&export.stderr);
    assert!(stderr.contains("composed report store"), "{stderr}");
    assert!(stderr.contains("full_report --store"), "{stderr}");
}
