//! The migration contract: every registry-backed sweep reproduces its
//! legacy hand-rolled experiment **digit for digit**.
//!
//! The legacy functions (`scaling::e01_rounds_vs_n`, …) and the sweep specs
//! (`specs::e01_sweep`, …) must construct the same protocols, walk the grid
//! in the same order and derive the same `(base_seed, point, trial)` seeds —
//! so the rendered tables are equal *as strings*.  Any drift in seed
//! numbering, grid order, aggregation arithmetic or formatting fails here.

use experiments::{
    ablations, comparisons, consensus, scaling, specs, stage_claims, ExperimentConfig,
};
use flip_model::Backend;

fn tiny(trials: u32) -> ExperimentConfig {
    ExperimentConfig {
        trials,
        base_seed: 0xBEA7_4E5E,
        ..ExperimentConfig::quick()
    }
}

#[test]
fn e01_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e01_rounds_vs_n(&cfg).to_markdown();
    let migrated = specs::e01_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e01_dense_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(1).with_backend(Backend::Dense);
    let legacy = scaling::e01_dense_scaling(&cfg).to_markdown();
    let migrated = specs::e01_dense_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e02_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e02_rounds_vs_epsilon(&cfg).to_markdown();
    let migrated = specs::e02_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e03_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e03_message_complexity(&cfg).to_markdown();
    let migrated = specs::e03_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e04_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(3);
    let legacy = stage_claims::e04_phase0_seeding(&cfg).to_markdown();
    let migrated = specs::e04_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e05_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = stage_claims::e05_layer_growth(&cfg).to_markdown();
    let migrated = specs::e05_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e06_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = stage_claims::e06_bias_decay(&cfg).to_markdown();
    let migrated = specs::e06_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e07_sweeps_reproduce_both_legacy_tables_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = stage_claims::e07_stage2_boost(&cfg);
    assert_eq!(legacy.len(), 2);
    assert_eq!(
        specs::e07a_table(&cfg).to_markdown(),
        legacy[0].to_markdown()
    );
    assert_eq!(
        specs::e07b_table(&cfg).to_markdown(),
        legacy[1].to_markdown()
    );
}

#[test]
fn e08_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = consensus::e08_majority_consensus(&cfg).to_markdown();
    let migrated = specs::e08_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e08_dense_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(1);
    let legacy = consensus::e08_dense_majority(&cfg).to_markdown();
    let migrated = specs::e08_dense_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e09_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e09_async_overhead(&cfg).to_markdown();
    let migrated = specs::e09_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e10_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = comparisons::e10_baseline_comparison(&cfg).to_markdown();
    let migrated = specs::e10_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e11_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = comparisons::e11_path_deterioration(&cfg).to_markdown();
    let migrated = specs::e11_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e12_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = comparisons::e12_two_party_lower_bound(&cfg).to_markdown();
    let migrated = specs::e12_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn a1_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = ablations::a1_required_initial_bias(&cfg).to_markdown();
    let migrated = specs::a1_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn a3_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = ablations::a3_phase0_requirement(&cfg).to_markdown();
    let migrated = specs::a3_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn a2_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = ablations::a2_gamma_requirement(&cfg).to_markdown();
    let migrated = specs::a2_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn base_seed_changes_flow_through_both_paths_identically() {
    // The equivalence is not an accident of the default seed.
    let cfg = ExperimentConfig {
        trials: 2,
        base_seed: 0x1234_5678,
        ..ExperimentConfig::quick()
    };
    assert_eq!(
        specs::a2_table(&cfg).to_markdown(),
        ablations::a2_gamma_requirement(&cfg).to_markdown()
    );
    // And a different seed produces a different table (the comparison above
    // is not vacuous).
    let other = ExperimentConfig {
        base_seed: 0x8765_4321,
        ..cfg
    };
    assert_ne!(
        specs::a2_table(&other).to_markdown(),
        specs::a2_table(&cfg).to_markdown()
    );
}
