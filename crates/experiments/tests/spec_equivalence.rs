//! The migration contract: every registry-backed sweep reproduces its
//! legacy hand-rolled experiment **digit for digit**.
//!
//! The legacy functions (`scaling::e01_rounds_vs_n`, …) and the sweep specs
//! (`specs::e01_sweep`, …) must construct the same protocols, walk the grid
//! in the same order and derive the same `(base_seed, point, trial)` seeds —
//! so the rendered tables are equal *as strings*.  Any drift in seed
//! numbering, grid order, aggregation arithmetic or formatting fails here.

use experiments::{ablations, consensus, scaling, specs, ExperimentConfig};
use flip_model::Backend;

fn tiny(trials: u32) -> ExperimentConfig {
    ExperimentConfig {
        trials,
        base_seed: 0xBEA7_4E5E,
        ..ExperimentConfig::quick()
    }
}

#[test]
fn e01_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e01_rounds_vs_n(&cfg).to_markdown();
    let migrated = specs::e01_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e01_dense_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(1).with_backend(Backend::Dense);
    let legacy = scaling::e01_dense_scaling(&cfg).to_markdown();
    let migrated = specs::e01_dense_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e02_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e02_rounds_vs_epsilon(&cfg).to_markdown();
    let migrated = specs::e02_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e03_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = scaling::e03_message_complexity(&cfg).to_markdown();
    let migrated = specs::e03_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e08_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = consensus::e08_majority_consensus(&cfg).to_markdown();
    let migrated = specs::e08_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn e08_dense_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(1);
    let legacy = consensus::e08_dense_majority(&cfg).to_markdown();
    let migrated = specs::e08_dense_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn a2_sweep_reproduces_the_legacy_table_digit_for_digit() {
    let cfg = tiny(2);
    let legacy = ablations::a2_gamma_requirement(&cfg).to_markdown();
    let migrated = specs::a2_table(&cfg).to_markdown();
    assert_eq!(migrated, legacy);
}

#[test]
fn base_seed_changes_flow_through_both_paths_identically() {
    // The equivalence is not an accident of the default seed.
    let cfg = ExperimentConfig {
        trials: 2,
        base_seed: 0x1234_5678,
        ..ExperimentConfig::quick()
    };
    assert_eq!(
        specs::a2_table(&cfg).to_markdown(),
        ablations::a2_gamma_requirement(&cfg).to_markdown()
    );
    // And a different seed produces a different table (the comparison above
    // is not vacuous).
    let other = ExperimentConfig {
        base_seed: 0x8765_4321,
        ..cfg
    };
    assert_ne!(
        specs::a2_table(&other).to_markdown(),
        specs::a2_table(&cfg).to_markdown()
    );
}
