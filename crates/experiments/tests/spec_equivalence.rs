//! The migration contract: every registry-backed sweep reproduces its
//! original hand-rolled experiment **digit for digit**.
//!
//! The golden markdown under `tests/golden/` was captured from the legacy
//! runners (`scaling::e01_rounds_vs_n`, `stage_claims::e04_phase0_seeding`,
//! …) immediately before they were deleted, with the sweep specs pinned
//! equal in the same commit.  The specs (`specs::e01_sweep`, …) must keep
//! constructing the same protocols, walking the grid in the same order and
//! deriving the same `(base_seed, point, trial)` seeds — so the rendered
//! tables stay equal *as strings*.  Any drift in seed numbering, grid
//! order, aggregation arithmetic or formatting fails here.
//!
//! To re-bless after an *intentional* change, run with `BLESS_GOLDEN=1` and
//! review the diff:
//!
//! ```sh
//! BLESS_GOLDEN=1 cargo test -p experiments --test spec_equivalence
//! ```

use std::path::PathBuf;

use experiments::{specs, ExperimentConfig};
use flip_model::Backend;

fn tiny(trials: u32) -> ExperimentConfig {
    ExperimentConfig {
        trials,
        base_seed: 0xBEA7_4E5E,
        ..ExperimentConfig::quick()
    }
}

fn check(name: &str, markdown: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.md"));
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, markdown).expect("golden file is writable");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden table {}; run with BLESS_GOLDEN=1 to capture it",
            path.display()
        )
    });
    assert_eq!(markdown, expected, "sweep `{name}` drifted from its golden");
}

#[test]
fn e01_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e01", &specs::e01_table(&tiny(2)).to_markdown());
}

#[test]
fn e01_dense_sweep_reproduces_the_golden_table_digit_for_digit() {
    let cfg = tiny(1).with_backend(Backend::Dense);
    check("e01-dense", &specs::e01_dense_table(&cfg).to_markdown());
}

#[test]
fn e02_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e02", &specs::e02_table(&tiny(2)).to_markdown());
}

#[test]
fn e03_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e03", &specs::e03_table(&tiny(2)).to_markdown());
}

#[test]
fn e04_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e04", &specs::e04_table(&tiny(3)).to_markdown());
}

#[test]
fn e05_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e05", &specs::e05_table(&tiny(2)).to_markdown());
}

#[test]
fn e06_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e06", &specs::e06_table(&tiny(2)).to_markdown());
}

#[test]
fn e07_sweeps_reproduce_both_golden_tables_digit_for_digit() {
    let cfg = tiny(2);
    check("e07a", &specs::e07a_table(&cfg).to_markdown());
    check("e07b", &specs::e07b_table(&cfg).to_markdown());
}

#[test]
fn e08_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e08", &specs::e08_table(&tiny(2)).to_markdown());
}

#[test]
fn e08_dense_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e08-dense", &specs::e08_dense_table(&tiny(1)).to_markdown());
}

#[test]
fn e09_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e09", &specs::e09_table(&tiny(2)).to_markdown());
}

#[test]
fn e10_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e10", &specs::e10_table(&tiny(2)).to_markdown());
}

#[test]
fn e11_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e11", &specs::e11_table(&tiny(2)).to_markdown());
}

#[test]
fn e12_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("e12", &specs::e12_table(&tiny(2)).to_markdown());
}

#[test]
fn a1_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("a1", &specs::a1_table(&tiny(2)).to_markdown());
}

#[test]
fn a2_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("a2", &specs::a2_table(&tiny(2)).to_markdown());
}

#[test]
fn a3_sweep_reproduces_the_golden_table_digit_for_digit() {
    check("a3", &specs::a3_table(&tiny(2)).to_markdown());
}

#[test]
fn base_seed_changes_flow_through_deterministically() {
    // The pinned digits are not an accident of the default seed: a different
    // base seed reproduces itself exactly and differs from the default.
    let cfg = ExperimentConfig {
        trials: 2,
        base_seed: 0x1234_5678,
        ..ExperimentConfig::quick()
    };
    assert_eq!(
        specs::a2_table(&cfg).to_markdown(),
        specs::a2_table(&cfg).to_markdown()
    );
    let other = ExperimentConfig {
        base_seed: 0x8765_4321,
        ..cfg
    };
    assert_ne!(
        specs::a2_table(&other).to_markdown(),
        specs::a2_table(&cfg).to_markdown()
    );
}
