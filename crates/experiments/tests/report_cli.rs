//! End-to-end tests of the composed `full_report` binary: one resumable run
//! covering every experiment, byte-identical however it is interrupted.
//!
//! The contract under test: `full_report --store DIR` may be cut by a
//! drained `--max-cells` budget or killed outright (SIGKILL, no cleanup),
//! and re-running the same command completes the store and renders markdown
//! **byte-identical** to an uninterrupted in-memory run.  All runs here use
//! `--trials 1` to keep the grid cheap; identity is about bytes, not scale.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;

const CONFIG: [&str; 4] = ["--trials", "1", "--threads", "2"];

fn full_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_full_report"))
        .args(CONFIG)
        .args(args)
        // Byte-identity references must not depend on an ambient telemetry
        // opt-in from the harness environment.
        .env_remove("FLIP_TELEMETRY")
        .output()
        .expect("full_report binary runs")
}

fn full_report_ok(args: &[&str]) -> String {
    let out = full_report(args);
    assert!(
        out.status.success(),
        "full_report {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("report-cli-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The uninterrupted in-memory report — computed once, shared by every test.
fn reference() -> &'static str {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let markdown = full_report_ok(&[]);
        assert!(
            markdown.starts_with("# Breathe before Speaking"),
            "report markdown lost its title:\n{markdown}"
        );
        markdown
    })
}

#[test]
fn a_store_backed_run_exports_the_in_memory_markdown() {
    let root = scratch("store");
    let store = root.join("store");
    let export = root.join("report.md");
    full_report_ok(&[
        "--store",
        store.to_str().unwrap(),
        "--export",
        export.to_str().unwrap(),
    ]);
    assert!(store.join("report.json").is_file(), "composed manifest");
    assert!(store.join("members").is_dir(), "member sub-stores");
    assert_eq!(fs::read_to_string(&export).unwrap(), reference());
}

#[test]
fn a_cut_run_resumes_to_the_identical_report() {
    let root = scratch("cut");
    let store = root.join("store");
    let store = store.to_str().unwrap();
    let export = root.join("report.md");

    // The cut: two cells of budget, nowhere near the full grid.
    let cut = full_report_ok(&["--store", store, "--max-cells", "2"]);
    assert!(cut.contains("incomplete"), "cut run reports status: {cut}");

    // Exporting from an incomplete store is refused, loudly.
    let refused = full_report(&[
        "--store",
        store,
        "--max-cells",
        "2",
        "--export",
        export.to_str().unwrap(),
    ]);
    assert!(!refused.status.success(), "incomplete export must fail");
    assert!(!export.exists(), "no partial export file");

    // Resume with the same command, uncapped: byte-identical markdown.
    full_report_ok(&["--store", store, "--export", export.to_str().unwrap()]);
    assert_eq!(fs::read_to_string(&export).unwrap(), reference());
}

#[test]
fn a_killed_run_resumes_to_the_identical_report() {
    let root = scratch("kill");
    let store = root.join("store");
    let store = store.to_str().unwrap();
    let export = root.join("report.md");

    // Run with live progress and SIGKILL the process after its first
    // checkpointed cell — no cleanup, no atexit, exactly a crash.
    let mut child = Command::new(env!("CARGO_BIN_EXE_full_report"))
        .args(CONFIG)
        .args(["--store", store, "--export", export.to_str().unwrap()])
        .arg("--progress")
        .env_remove("FLIP_TELEMETRY")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("full_report binary spawns");
    let progress = BufReader::new(child.stderr.take().unwrap());
    let mut saw_cell = false;
    for line in progress.lines() {
        let line = line.unwrap_or_default();
        if line.contains("[sweep] cell") {
            saw_cell = true;
            let _ = child.kill();
            break;
        }
    }
    let _ = child.wait();
    assert!(saw_cell, "progress stream showed at least one cell");

    // Resume with the same command: the store skips every persisted cell
    // (dropping any torn shard line) and the export matches the reference.
    full_report_ok(&["--store", store, "--export", export.to_str().unwrap()]);
    assert_eq!(fs::read_to_string(&export).unwrap(), reference());
}

#[test]
fn a_cut_without_a_store_is_refused() {
    let out = full_report(&["--max-cells", "2"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--max-cells needs --store"), "{stderr}");
}
