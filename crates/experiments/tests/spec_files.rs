//! Freshness guard for the checked-in spec files under `specs/`.
//!
//! The files are generated with `sweep gen <name>` (quick mode); if a grid,
//! seed point or trial preset changes in code, this test fails until the
//! files are regenerated — so the specs in the repository always describe
//! what the binaries actually run.

use experiments::{specs, ExperimentConfig};
use std::path::Path;

fn specs_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

#[test]
fn checked_in_specs_match_their_generators() {
    let cfg = ExperimentConfig::quick();
    for name in specs::BUILTIN_SWEEPS {
        let path = specs_dir().join(format!("{name}.json"));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
        let generated = specs::builtin(name, &cfg)
            .expect("builtin names resolve")
            .to_pretty_json()
            + "\n";
        assert_eq!(
            on_disk, generated,
            "specs/{name}.json is stale; regenerate with `cargo run -p experiments --bin sweep \
             -- gen {name} > specs/{name}.json`"
        );
    }
}

#[test]
fn checked_in_specs_parse_and_expand() {
    for name in specs::BUILTIN_SWEEPS {
        let path = specs_dir().join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path).expect("spec file readable");
        let spec = sweeps::SweepSpec::from_json_text(&text)
            .unwrap_or_else(|e| panic!("specs/{name}.json: {e}"));
        assert_eq!(spec.name, name);
        assert!(spec.grid_len() >= 1);
    }
}
