//! E10–E12: comparison against the baselines of §1.2/§1.6, the per-hop
//! deterioration curve, and the two-party `Θ(1/ε²)` lower bound of §1.4.

use analysis::chernoff::majority_correct_probability;
use analysis::estimators::{mean, SuccessRate};
use analysis::tables::fmt_float;
use analysis::theory;
use analysis::Table;
use baselines::{
    chain_correct_probability, simulate_chain, ForwardingProtocol, NoisyVoterProtocol,
    ThreeStateProtocol, TwoChoicesProtocol, WaitForSourceProtocol,
};
use breathe::{BroadcastProtocol, Params};
use flip_model::Opinion;

use crate::ExperimentConfig;

/// **E10 (§1.2, §1.6)** — final accuracy of breathe-before-speaking versus the
/// baselines, all solving the broadcast problem (one informed source) with the
/// same round budget.
///
/// The two-choices and three-state dynamics require every agent to start with
/// an opinion; they are seeded with uniformly random opinions plus the correct
/// source, which matches the information actually available at the start of a
/// broadcast and demonstrates why a spreading stage is necessary.
#[must_use]
pub fn e10_baseline_comparison(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(600, 2_000);
    let epsilons = [0.1, 0.2];
    let mut table = Table::new(
        "E10: protocol comparison on the broadcast problem",
        &[
            "epsilon",
            "protocol",
            "rounds",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    let mut point = 1_000;
    for &epsilon in &epsilons {
        let params = Params::practical(n, epsilon).expect("valid parameters");
        let budget = params.total_rounds();
        let correct = Opinion::One;
        let runner = cfg.runner();

        // Breathe before speaking (ours).
        let breathe_protocol = BroadcastProtocol::new(params.clone(), correct);
        let outcomes = runner.run(|trial| {
            breathe_protocol
                .run_with_seed(cfg.seed_for(point, trial))
                .expect("simulation construction cannot fail")
        });
        point += 1;
        push_summary(
            &mut table,
            epsilon,
            "breathe (this paper)",
            budget,
            outcomes.iter().map(|o| (o.fraction_correct, o.all_correct)),
        );

        // Immediate forwarding.
        let forwarding = ForwardingProtocol::new(n, epsilon, budget).expect("valid");
        let outcomes = runner.run(|trial| {
            forwarding
                .run_with_seed(correct, cfg.seed_for(point, trial))
                .expect("simulation construction cannot fail")
        });
        point += 1;
        push_summary(
            &mut table,
            epsilon,
            "immediate forwarding",
            budget,
            outcomes.iter().map(|o| (o.fraction_correct, o.all_correct)),
        );

        // Wait for the source.
        let wait = WaitForSourceProtocol::new(n, epsilon, budget).expect("valid");
        let outcomes = runner.run(|trial| {
            wait.run_with_seed(correct, cfg.seed_for(point, trial))
                .expect("simulation construction cannot fail")
        });
        point += 1;
        push_summary(
            &mut table,
            epsilon,
            "wait for source",
            budget,
            outcomes.iter().map(|o| (o.fraction_correct, o.all_correct)),
        );

        // Two-choices dynamics seeded with random opinions + the source.
        let two_choices = TwoChoicesProtocol::new(n, epsilon, budget).expect("valid");
        let outcomes = runner.run(|trial| {
            two_choices
                .run_with_seed(correct, n / 2 + 1, cfg.seed_for(point, trial))
                .expect("simulation construction cannot fail")
        });
        point += 1;
        push_summary(
            &mut table,
            epsilon,
            "two-choices majority [22]",
            budget,
            outcomes.iter().map(|o| (o.fraction_correct, o.all_correct)),
        );

        // Three-state approximate majority (needs a 3-symbol alphabet).
        let three_state = ThreeStateProtocol::new(n, epsilon, budget).expect("valid");
        let outcomes = runner.run(|trial| {
            three_state
                .run_with_seed(correct, 1, 0, cfg.seed_for(point, trial))
                .expect("simulation construction cannot fail")
        });
        point += 1;
        push_summary(
            &mut table,
            epsilon,
            "three-state majority [6]",
            budget,
            outcomes.iter().map(|o| (o.fraction_correct, o.all_correct)),
        );

        // Noisy voter model with a zealot.
        let voter = NoisyVoterProtocol::new(n, epsilon, budget).expect("valid");
        let outcomes = runner.run(|trial| {
            voter
                .run_with_seed(correct, cfg.seed_for(point, trial))
                .expect("simulation construction cannot fail")
        });
        point += 1;
        push_summary(
            &mut table,
            epsilon,
            "noisy voter with zealot [49]",
            budget,
            outcomes.iter().map(|o| (o.fraction_correct, o.all_correct)),
        );
    }
    table
}

fn push_summary<I: Iterator<Item = (f64, bool)>>(
    table: &mut Table,
    epsilon: f64,
    name: &str,
    rounds: u64,
    outcomes: I,
) {
    let mut success = SuccessRate::new();
    let mut fractions = Vec::new();
    for (fraction, all_correct) in outcomes {
        success.record(all_correct);
        fractions.push(fraction);
    }
    table.push_row(&[
        fmt_float(epsilon),
        name.to_string(),
        rounds.to_string(),
        fmt_float(mean(&fractions)),
        fmt_float(success.estimate()),
    ]);
}

/// **E11 (§1.6)** — reliability of a relayed bit versus chain length:
/// measured versus the closed form `1/2 + (2ε)^c / 2`.
#[must_use]
pub fn e11_path_deterioration(cfg: &ExperimentConfig) -> Table {
    let trials = cfg.pick(20_000u32, 100_000u32);
    let mut table = Table::new(
        "E11: per-hop reliability decay (section 1.6)",
        &[
            "epsilon",
            "hops",
            "measured Pr[correct]",
            "closed form 1/2 + (2eps)^c / 2",
        ],
    );
    for &epsilon in &[0.1, 0.3] {
        for &hops in &[1u32, 2, 3, 5, 8, 12] {
            let measured =
                simulate_chain(epsilon, hops, trials, cfg.seed_for(1_100, u64::from(hops)))
                    .expect("valid chain parameters");
            table.push_row(&[
                fmt_float(epsilon),
                hops.to_string(),
                fmt_float(measured),
                fmt_float(chain_correct_probability(epsilon, hops)),
            ]);
        }
    }
    table
}

/// **E12 (§1.4)** — the two-party lower bound: samples over a binary symmetric
/// channel needed for a 99%-confident majority decision, versus `Θ(1/ε²)`.
#[must_use]
pub fn e12_two_party_lower_bound(cfg: &ExperimentConfig) -> Table {
    let confidence = 0.99;
    let mut table = Table::new(
        "E12: two-party channel uses for one reliable bit (section 1.4)",
        &[
            "epsilon",
            "samples needed (exact majority decoder)",
            "samples * eps^2",
            "Shannon-style prediction ln(1/0.01)/(2 eps^2)",
        ],
    );
    let epsilons: &[f64] = if cfg.quick {
        &[0.1, 0.2, 0.3, 0.4]
    } else {
        &[0.05, 0.1, 0.15, 0.2, 0.3, 0.4]
    };
    for &epsilon in epsilons {
        let needed = samples_for_confidence(epsilon, confidence);
        table.push_row(&[
            fmt_float(epsilon),
            needed.to_string(),
            fmt_float(needed as f64 * epsilon * epsilon),
            fmt_float(theory::two_party_samples(epsilon, 1.0 - confidence)),
        ]);
    }
    table
}

/// Smallest odd sample count for which the majority decoder over a BSC with
/// margin `ε` is correct with probability at least `confidence`.
#[must_use]
pub fn samples_for_confidence(epsilon: f64, confidence: f64) -> u64 {
    let p = 0.5 + epsilon;
    let mut samples = 1u64;
    while majority_correct_probability(samples, p) < confidence {
        samples += 2;
        if samples > 1_000_000 {
            break;
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_for_confidence_scales_roughly_as_inverse_epsilon_squared() {
        let coarse = samples_for_confidence(0.4, 0.99);
        let fine = samples_for_confidence(0.1, 0.99);
        let ratio = fine as f64 / coarse as f64;
        assert!(ratio > 6.0 && ratio < 40.0, "ratio = {ratio}");
        assert!(samples_for_confidence(0.3, 0.999) > samples_for_confidence(0.3, 0.9));
    }

    #[test]
    fn e11_measured_matches_closed_form() {
        let cfg = ExperimentConfig {
            trials: 1,
            base_seed: 1,
            ..ExperimentConfig::quick()
        };
        let table = e11_path_deterioration(&cfg);
        for row in table.rows() {
            let measured: f64 = row[2].parse().unwrap();
            let exact: f64 = row[3].parse().unwrap();
            assert!((measured - exact).abs() < 0.02, "row mismatch: {row:?}");
        }
    }

    #[test]
    fn e12_table_is_monotone_in_epsilon() {
        let cfg = ExperimentConfig::quick();
        let table = e12_two_party_lower_bound(&cfg);
        let needed: Vec<f64> = table.rows().iter().map(|r| r[1].parse().unwrap()).collect();
        for w in needed.windows(2) {
            assert!(
                w[0] >= w[1],
                "more noise must need more samples: {needed:?}"
            );
        }
    }
}
