//! Shared parameter grids for the scaling experiments E1–E3, E1-D and E9.
//!
//! The experiment loops themselves live in the sweep registry
//! (`sweeps::registry`); the sweep specs in [`crate::specs`] consume these
//! grids to build their axes, so quick/full scaling has one definition per
//! experiment.

use crate::ExperimentConfig;

/// The population sizes swept by E1/E3.
#[must_use]
pub fn population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![250, 500, 1_000, 2_000]
    } else {
        vec![250, 500, 1_000, 2_000, 4_000, 8_000, 16_000]
    }
}

/// The noise margins swept by E2/E3.
#[must_use]
pub fn epsilon_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.15, 0.2, 0.3, 0.4]
    } else {
        vec![0.1, 0.15, 0.2, 0.25, 0.3, 0.4]
    }
}

/// The population sizes swept by E3 (outer axis).
#[must_use]
pub fn e03_population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![500, 1_000, 2_000]
    } else {
        vec![500, 1_000, 2_000, 4_000, 8_000]
    }
}

/// The noise margins swept by E3 (inner axis).
pub const E03_EPSILONS: [f64; 2] = [0.2, 0.3];

/// The population sizes swept by the dense-engine scaling experiment E1-D.
///
/// These sizes are far beyond what the per-agent engine can sweep in
/// reasonable time; the dense engine's per-round cost is independent of `n`,
/// so the grid tops out at four million agents even in quick mode's superset.
#[must_use]
pub fn dense_population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![100_000, 1_000_000]
    } else {
        vec![100_000, 1_000_000, 4_000_000]
    }
}

/// The population sizes E9 sweeps over its local-clock variants.
#[must_use]
pub fn e09_population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![250, 500, 1_000]
    } else {
        vec![500, 1_000, 2_000, 4_000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_larger_in_full_mode() {
        assert!(
            population_grid(&ExperimentConfig::full()).len()
                > population_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            epsilon_grid(&ExperimentConfig::full()).len()
                >= epsilon_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            e03_population_grid(&ExperimentConfig::full()).len()
                > e03_population_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            e09_population_grid(&ExperimentConfig::full()).len()
                > e09_population_grid(&ExperimentConfig::quick()).len()
        );
    }

    #[test]
    fn dense_grid_reaches_one_million() {
        assert!(dense_population_grid(&ExperimentConfig::quick()).contains(&1_000_000));
        assert!(
            dense_population_grid(&ExperimentConfig::full()).len()
                > dense_population_grid(&ExperimentConfig::quick()).len()
        );
    }
}
