//! E1–E3 and E9: round and message complexity scaling (Theorem 2.17) and the
//! local-clock overhead (Theorem 3.1), plus the dense-engine variant E1-D
//! that pushes the population sweep to `n = 10⁶⁺`.

use analysis::estimators::{mean, SuccessRate};
use analysis::fitting::fit_linear;
use analysis::tables::fmt_float;
use analysis::Table;
use breathe::{AsyncBroadcastProtocol, AsyncVariant, BroadcastProtocol, Params};
use flip_model::{
    Backend, BinarySymmetricChannel, DenseSimulation, HybridSimulation, Opinion, RumorAgent,
    RumorProtocol, Simulation, SimulationConfig, StratifiedPopulation,
};

use crate::ExperimentConfig;

/// The population sizes swept by E1/E3.
#[must_use]
pub fn population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![250, 500, 1_000, 2_000]
    } else {
        vec![250, 500, 1_000, 2_000, 4_000, 8_000, 16_000]
    }
}

/// The noise margins swept by E2/E3.
#[must_use]
pub fn epsilon_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.15, 0.2, 0.3, 0.4]
    } else {
        vec![0.1, 0.15, 0.2, 0.25, 0.3, 0.4]
    }
}

/// Runs the broadcast protocol `cfg.trials` times and summarises success.
fn broadcast_point(
    cfg: &ExperimentConfig,
    point: u64,
    n: usize,
    epsilon: f64,
) -> (SuccessRate, f64, f64, u64, u64) {
    let params = Params::practical(n, epsilon).expect("grid parameters are valid");
    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let runner = cfg.runner();
    let outcomes = runner.run(|trial| {
        protocol
            .run_with_seed(cfg.seed_for(point, trial))
            .expect("simulation construction cannot fail for valid parameters")
    });
    let mut success = SuccessRate::new();
    let mut fractions = Vec::new();
    let mut messages = Vec::new();
    for outcome in &outcomes {
        success.record(outcome.all_correct);
        fractions.push(outcome.fraction_correct);
        messages.push(outcome.messages_sent as f64);
    }
    let rounds = outcomes.first().map_or(0, |o| o.total_rounds);
    (
        success,
        mean(&fractions),
        mean(&messages),
        rounds,
        outcomes.first().map_or(0, |o| o.stage1_rounds),
    )
}

/// **E1 (Theorem 2.17)** — rounds and success probability versus `n` at fixed `ε`.
///
/// The protocol's round count is fixed by the schedule, so the table reports
/// the measured rounds, the normalised ratio `rounds / (ln n / ε²)` (which the
/// theorem predicts to be bounded by a constant) and the success statistics.
/// The last row reports the slope of a linear fit of rounds against `ln n`.
#[must_use]
pub fn e01_rounds_vs_n(cfg: &ExperimentConfig) -> Table {
    let epsilon = 0.2;
    let mut table = Table::new(
        "E1: broadcast rounds vs n (epsilon = 0.2, Theorem 2.17)",
        &[
            "n",
            "rounds",
            "rounds / (ln n / eps^2)",
            "mean fraction correct",
            "all-correct rate",
            "wilson 95% low",
        ],
    );
    let mut ln_ns = Vec::new();
    let mut rounds_list = Vec::new();
    for (idx, n) in population_grid(cfg).into_iter().enumerate() {
        let (success, frac, _msgs, rounds, _s1) = broadcast_point(cfg, idx as u64, n, epsilon);
        let scale = (n as f64).ln() / (epsilon * epsilon);
        ln_ns.push((n as f64).ln());
        rounds_list.push(rounds as f64);
        table.push_row(&[
            n.to_string(),
            rounds.to_string(),
            fmt_float(rounds as f64 / scale),
            fmt_float(frac),
            fmt_float(success.estimate()),
            fmt_float(success.wilson_interval(1.96).0),
        ]);
    }
    if let Some(fit) = fit_linear(&ln_ns, &rounds_list) {
        table.push_row(&[
            "fit: rounds ~ a*ln n + b".to_string(),
            format!("a = {}", fmt_float(fit.slope)),
            format!("b = {}", fmt_float(fit.intercept)),
            format!("R^2 = {}", fmt_float(fit.r_squared)),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// **E2 (Theorem 2.17)** — rounds versus `ε` at fixed `n`.
///
/// The theorem predicts `rounds · ε²` to stay within a constant factor across
/// the sweep.
#[must_use]
pub fn e02_rounds_vs_epsilon(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(1_000, 2_000);
    let mut table = Table::new(
        "E2: broadcast rounds vs epsilon (Theorem 2.17)",
        &[
            "epsilon",
            "rounds",
            "rounds * eps^2",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (idx, epsilon) in epsilon_grid(cfg).into_iter().enumerate() {
        let (success, frac, _msgs, rounds, _s1) =
            broadcast_point(cfg, 100 + idx as u64, n, epsilon);
        table.push_row(&[
            fmt_float(epsilon),
            rounds.to_string(),
            fmt_float(rounds as f64 * epsilon * epsilon),
            fmt_float(frac),
            fmt_float(success.estimate()),
        ]);
    }
    table
}

/// The population sizes swept by E3 (outer axis).
#[must_use]
pub fn e03_population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![500, 1_000, 2_000]
    } else {
        vec![500, 1_000, 2_000, 4_000, 8_000]
    }
}

/// The noise margins swept by E3 (inner axis).
pub const E03_EPSILONS: [f64; 2] = [0.2, 0.3];

/// **E3 (Theorem 2.17)** — total messages versus the `n·ln n/ε²` prediction.
#[must_use]
pub fn e03_message_complexity(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E3: message complexity (Theorem 2.17)",
        &[
            "n",
            "epsilon",
            "mean messages",
            "messages / (n ln n / eps^2)",
            "all-correct rate",
        ],
    );
    let mut point = 200;
    for n in e03_population_grid(cfg) {
        for &epsilon in &E03_EPSILONS {
            let (success, _frac, msgs, _rounds, _s1) = broadcast_point(cfg, point, n, epsilon);
            point += 1;
            let scale = n as f64 * (n as f64).ln() / (epsilon * epsilon);
            table.push_row(&[
                n.to_string(),
                fmt_float(epsilon),
                fmt_float(msgs),
                fmt_float(msgs / scale),
                fmt_float(success.estimate()),
            ]);
        }
    }
    table
}

/// The population sizes swept by the dense-engine scaling experiment E1-D.
///
/// These sizes are far beyond what the per-agent engine can sweep in
/// reasonable time; the dense engine's per-round cost is independent of `n`,
/// so the grid tops out at four million agents even in quick mode's superset.
#[must_use]
pub fn dense_population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![100_000, 1_000_000]
    } else {
        vec![100_000, 1_000_000, 4_000_000]
    }
}

/// One E1-D trial: rounds until full activation (capped), the fraction of
/// agents holding the source opinion at that point, and total messages.
/// Wall-clock timing deliberately stays out of the table — experiment output
/// must be byte-identical per seed; the `dense_engine` criterion bench is
/// where the engine's speed is measured.
struct DenseScalingPoint {
    rounds: u64,
    fraction_correct: f64,
    messages_sent: u64,
}

/// Rounds cap for an E1-D run; full activation takes `O(log n)` rounds, so
/// 500 leaves an order of magnitude of slack at `n = 10⁷`.
const DENSE_SCALING_MAX_ROUNDS: u64 = 500;

fn dense_scaling_trial(
    backend: Backend,
    n: usize,
    informed: u64,
    epsilon: f64,
    seed: u64,
) -> DenseScalingPoint {
    let channel = BinarySymmetricChannel::from_epsilon(epsilon).expect("grid epsilon is valid");
    let config = SimulationConfig::new(n)
        .with_seed(seed)
        .with_reference(Opinion::One);
    match backend {
        Backend::Dense => {
            let population = RumorProtocol::population(n as u64, 0, informed);
            let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config)
                .expect("grid parameters are valid");
            let rounds = sim.run_until(DENSE_SCALING_MAX_ROUNDS, |s| s.census().active() == n);
            DenseScalingPoint {
                rounds,
                fraction_correct: sim.census().fraction_correct(Opinion::One),
                messages_sent: sim.metrics().messages_sent,
            }
        }
        Backend::Agents => {
            let agents = RumorAgent::population(n, 0, informed as usize);
            let mut sim =
                Simulation::new(agents, channel, config).expect("grid parameters are valid");
            let rounds = sim.run_until(DENSE_SCALING_MAX_ROUNDS, |s| s.census().active() == n);
            DenseScalingPoint {
                rounds,
                fraction_correct: sim.census().fraction_correct(Opinion::One),
                messages_sent: sim.metrics().messages_sent,
            }
        }
        Backend::Hybrid(k) => {
            let k = (k as usize).min(n - 1).max(1);
            let tracked_ones = informed.min(k as u64);
            let tracked = RumorAgent::population(k, 0, tracked_ones as usize);
            let bulk = StratifiedPopulation::single(RumorProtocol::population(
                (n - k) as u64,
                0,
                informed - tracked_ones,
            ));
            let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config)
                .expect("grid parameters are valid");
            let rounds = sim.run_until(DENSE_SCALING_MAX_ROUNDS, |s| s.census().active() == n);
            DenseScalingPoint {
                rounds,
                fraction_correct: sim.census().fraction_correct(Opinion::One),
                messages_sent: sim.metrics().messages_sent,
            }
        }
    }
}

/// **E1-D** — dense-engine rumor spreading at `n = 10⁵`–`10⁶⁺`.
///
/// Sweeps [`dense_population_grid`] with 1000 informed agents and `ε = 0.2`
/// noise over `cfg.trials` trials per size, reporting mean rounds to full
/// activation (which Theorem 2.17's Stage I analysis predicts to grow as
/// `Θ(log n)`), the mean fraction of agents left holding the source opinion
/// and mean message totals.  Called with [`Backend::Agents`] (reachable via
/// the library API; the `e01` binary routes `--backend agents` to the
/// classic protocol sweep [`e01_rounds_vs_n`] instead), the per-agent
/// reference engine runs the same sweep capped at `n = 10⁵` — larger sizes
/// are impractical there, which is the point of the dense engine.
#[must_use]
pub fn e01_dense_scaling(cfg: &ExperimentConfig) -> Table {
    let epsilon = 0.2;
    let mut table = Table::new(
        &format!(
            "E1-D: rumor spreading at large n (backend = {}, epsilon = 0.2)",
            cfg.backend
        ),
        &[
            "n",
            "mean rounds to full activation",
            "rounds / ln n",
            "mean fraction holding source bit",
            "mean messages sent",
        ],
    );
    for (idx, n) in dense_population_grid(cfg).into_iter().enumerate() {
        if cfg.backend == Backend::Agents && n > 100_000 {
            continue;
        }
        let backend = cfg.backend;
        let runner = cfg.runner();
        let trials = runner.run(|trial| {
            dense_scaling_trial(
                backend,
                n,
                1_000,
                epsilon,
                cfg.seed_for(1_300 + idx as u64, trial),
            )
        });
        let rounds = mean(&trials.iter().map(|t| t.rounds as f64).collect::<Vec<_>>());
        let fraction = mean(
            &trials
                .iter()
                .map(|t| t.fraction_correct)
                .collect::<Vec<_>>(),
        );
        let messages = mean(
            &trials
                .iter()
                .map(|t| t.messages_sent as f64)
                .collect::<Vec<_>>(),
        );
        table.push_row(&[
            n.to_string(),
            fmt_float(rounds),
            fmt_float(rounds / (n as f64).ln()),
            fmt_float(fraction),
            fmt_float(messages),
        ]);
    }
    table
}

/// The population sizes E9 sweeps over its local-clock variants.
#[must_use]
pub fn e09_population_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![250, 500, 1_000]
    } else {
        vec![500, 1_000, 2_000, 4_000]
    }
}

/// **E9 (Theorem 3.1)** — the local-clock variants: correctness preserved and
/// additive overhead versus `ln² n`.
#[must_use]
pub fn e09_async_overhead(cfg: &ExperimentConfig) -> Table {
    let epsilon = 0.3;
    let ns = e09_population_grid(cfg);
    let mut table = Table::new(
        "E9: removing the global clock (Theorem 3.1)",
        &[
            "n",
            "variant",
            "sync rounds",
            "total rounds",
            "overhead rounds",
            "ln^2 n",
            "all-correct rate",
        ],
    );
    let mut point = 900;
    for &n in &ns {
        let params = Params::practical(n, epsilon).expect("valid parameters");
        let d = 2 * (n as f64).log2().ceil() as u64;
        let variants = [
            (
                "bounded offsets",
                AsyncVariant::BoundedOffsets { max_offset: d },
            ),
            ("resynchronised", AsyncVariant::Resynchronised),
        ];
        for (name, variant) in variants {
            let protocol = AsyncBroadcastProtocol::new(params.clone(), Opinion::One, variant);
            let runner = cfg.runner();
            let outcomes = runner.run(|trial| {
                protocol
                    .run_with_seed(cfg.seed_for(point, trial))
                    .expect("simulation construction cannot fail")
            });
            point += 1;
            let mut success = SuccessRate::new();
            for o in &outcomes {
                success.record(o.all_correct);
            }
            let first = &outcomes[0];
            let ln_n = (n as f64).ln();
            table.push_row(&[
                n.to_string(),
                name.to_string(),
                first.synchronous_rounds.to_string(),
                first.total_rounds.to_string(),
                first.overhead_rounds().to_string(),
                fmt_float(ln_n * ln_n),
                fmt_float(success.estimate()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            trials: 2,
            base_seed: 7,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn grids_are_larger_in_full_mode() {
        assert!(
            population_grid(&ExperimentConfig::full()).len()
                > population_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            epsilon_grid(&ExperimentConfig::full()).len()
                >= epsilon_grid(&ExperimentConfig::quick()).len()
        );
    }

    #[test]
    fn e02_table_has_one_row_per_epsilon() {
        let cfg = tiny_config();
        let table = e02_rounds_vs_epsilon(&cfg);
        assert_eq!(table.len(), epsilon_grid(&cfg).len());
        // The normalised column should be within an order of magnitude across rows.
        let normalised: Vec<f64> = table
            .rows()
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .collect();
        let max = normalised.iter().cloned().fold(f64::MIN, f64::max);
        let min = normalised.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 12.0,
            "normalised rounds vary too much: {normalised:?}"
        );
    }

    #[test]
    fn dense_grid_reaches_one_million() {
        assert!(dense_population_grid(&tiny_config()).contains(&1_000_000));
        assert!(
            dense_population_grid(&ExperimentConfig::full()).len()
                > dense_population_grid(&ExperimentConfig::quick()).len()
        );
    }

    #[test]
    fn e01_dense_covers_the_grid_with_the_dense_backend() {
        let cfg = tiny_config().with_backend(Backend::Dense);
        let table = e01_dense_scaling(&cfg);
        assert_eq!(table.len(), dense_population_grid(&cfg).len());
        for row in table.rows() {
            let rounds: f64 = row[1].parse().unwrap();
            assert!(rounds > 0.0 && rounds < super::DENSE_SCALING_MAX_ROUNDS as f64);
            let fraction: f64 = row[3].parse().unwrap();
            assert!((0.0..=1.0).contains(&fraction));
        }
    }

    #[test]
    fn e01_dense_caps_the_agents_backend_sweep() {
        let cfg = tiny_config();
        assert_eq!(cfg.backend, Backend::Agents);
        let table = e01_dense_scaling(&cfg);
        // Only the 10^5 grid point is practical per-agent.
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows()[0][0], "100000");
    }

    #[test]
    fn broadcast_point_reports_success_on_easy_instances() {
        let cfg = tiny_config();
        let (success, frac, msgs, rounds, stage1) = broadcast_point(&cfg, 0, 300, 0.3);
        assert_eq!(success.trials(), 2);
        assert!(frac > 0.9);
        assert!(msgs > 0.0);
        assert!(rounds > stage1);
    }
}
