//! Experiment binary `e07`: Stage II boost (Lemmas 2.11 and 2.14).
//!
//! Usage: `cargo run --release -p experiments --bin e07 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e07a`/`e07b` sweep pair
//! (`experiments::specs`); the same sweeps are available with persistence
//! and resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e07", false, |cfg| {
        experiments::specs::backend_tables("e07", cfg)
    });
}
