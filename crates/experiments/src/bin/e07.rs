//! Experiment binary `e07`: Stage II boost (Lemmas 2.11 and 2.14).
//!
//! Usage: `cargo run --release -p experiments --bin e07 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e07", true, |cfg| {
        experiments::stage_claims::e07_stage2_boost(cfg)
    });
}
