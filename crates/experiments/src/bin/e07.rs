//! Experiment binary `e07`: Stage II boost (Lemmas 2.11 and 2.14).
//!
//! Usage: `cargo run --release -p experiments --bin e07 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e07");
    for table in experiments::stage_claims::e07_stage2_boost(&cfg) {
        println!("{}", table.to_markdown());
    }
}
