//! `full_report` — every experiment (E1–E12) as **one composed, resumable
//! sweep**, rendered as a single markdown document.
//!
//! ```text
//! full_report [--full] [--trials N] [--threads N] [--seed N]
//!                                     # in-memory run, markdown to stdout
//! full_report --store DIR [--max-cells N] [--export FILE] [--progress] [...]
//!                                     # persistent run: checkpoint each cell,
//!                                     #   resume by re-running, render when
//!                                     #   complete
//! ```
//!
//! Both modes run the same composed [`sweeps::ReportSpec`] (built by
//! `specs::report_spec`) through the same orchestrator and renderers, so a
//! store-backed run — killed at any point and resumed with the same flags —
//! produces markdown **byte-identical** to an uninterrupted in-memory run.
//! `--max-cells` caps newly executed cells across the whole composition (the
//! deterministic kill stand-in); an incomplete run prints its status and
//! resumes from the first missing cell on the next invocation.  `--export`
//! writes the rendered markdown to a file instead of stdout and refuses
//! while the store is incomplete.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::report::{Report, REPORT_PREAMBLE, REPORT_TITLE};
use experiments::{cli, specs};
use sweeps::{ProtocolRegistry, ReportOutcome, ReportRunner, ReportSpec, ReportStore};

const USAGE: &str = "usage: full_report [--full] [--trials N] [--threads N] [--seed N]
                   [--store DIR] [--max-cells N] [--export FILE] [--progress]
(--max-cells needs --store: a cut run without a checkpoint store is lost work)";

struct ReportFlags {
    store: Option<PathBuf>,
    export: Option<PathBuf>,
    max_cells: Option<usize>,
    progress: bool,
}

/// Splits the report-only flags from the shared experiment-config flags.
fn split_args<I: Iterator<Item = String>>(
    mut iter: I,
) -> Result<(ReportFlags, Vec<String>), String> {
    let mut flags = ReportFlags {
        store: None,
        export: None,
        max_cells: None,
        progress: false,
    };
    let mut cfg_args = Vec::new();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(value) => Ok(value),
                None => iter
                    .next()
                    .ok_or_else(|| format!("{name} requires a value\n{USAGE}")),
            }
        };
        match flag {
            "--store" => flags.store = Some(PathBuf::from(value("--store")?)),
            "--export" => flags.export = Some(PathBuf::from(value("--export")?)),
            "--max-cells" => {
                let raw = value("--max-cells")?;
                flags.max_cells = Some(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(format!(
                            "invalid --max-cells value `{raw}`: expected an integer >= 1"
                        ))
                    }
                });
            }
            "--progress" => flags.progress = true,
            _ => cfg_args.push(arg.clone()),
        }
    }
    if flags.max_cells.is_some() && flags.store.is_none() {
        return Err(format!("--max-cells needs --store\n{USAGE}"));
    }
    Ok((flags, cfg_args))
}

/// Renders a completed composed run into the report markdown — the same
/// title, preamble and per-member renderers as the in-memory
/// [`experiments::report::full_report`], so both paths emit identical bytes.
fn render(spec: &ReportSpec, outcome: &ReportOutcome) -> String {
    let mut report = Report::new(REPORT_TITLE).with_preamble(REPORT_PREAMBLE);
    for (member, result) in spec.members.iter().zip(&outcome.members) {
        let grid = member.expand().expect("a member that ran also expands");
        let pairs: specs::CellPairs = grid.into_iter().zip(result.outcome.cells.clone()).collect();
        report.push(specs::render(&result.name, &pairs));
    }
    report.to_markdown()
}

fn main() -> ExitCode {
    let (flags, cfg_args) = match split_args(std::env::args().skip(1)) {
        Ok(split) => split,
        Err(message) => {
            eprintln!("full_report: {message}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = experiments::config_from_args(cfg_args);
    experiments::require_agents_backend(&cfg, "full_report");
    cli::require_no_rounds_override(&cfg, "full_report");

    let spec = specs::report_spec(&cfg);
    let run = || -> Result<(), sweeps::SweepError> {
        let store = flags
            .store
            .as_deref()
            .map(|dir| ReportStore::create(dir, &spec))
            .transpose()?;
        let mut runner = ReportRunner::new().with_progress(flags.progress);
        if let Some(threads) = cfg.threads {
            runner = runner.with_threads(threads);
        }
        if let Some(max_cells) = flags.max_cells {
            runner = runner.with_max_cells(max_cells);
        }
        let outcome = runner.run(&spec, &ProtocolRegistry::builtin(), store.as_ref())?;
        if !outcome.completed {
            let dir = flags
                .store
                .as_deref()
                .expect("in-memory runs always complete");
            println!(
                "report `{}` ({}): incomplete ({}/{} cells); resume by re-running \
                 with --store {}",
                spec.name,
                spec.hash_hex(),
                outcome.skipped + outcome.executed,
                outcome.total,
                dir.display(),
            );
            if flags.export.is_some() {
                return Err(sweeps::SweepError::Incomplete {
                    done: outcome.skipped + outcome.executed,
                    total: outcome.total,
                });
            }
            return Ok(());
        }
        let markdown = render(&spec, &outcome);
        match &flags.export {
            Some(path) => std::fs::write(path, markdown)?,
            None => print!("{markdown}"),
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("full_report: {err}");
            ExitCode::FAILURE
        }
    }
}
