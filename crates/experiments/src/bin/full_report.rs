//! Runs every experiment (E1-E12) and prints the combined markdown report.
//!
//! Usage: `cargo run --release -p experiments --bin full_report [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "full_report");
    println!("{}", experiments::report::full_report(&cfg).to_markdown());
}
