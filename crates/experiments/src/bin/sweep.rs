//! `sweep` — the command-line face of the declarative sweep subsystem.
//!
//! ```text
//! sweep list                          # builtin specs (grouped by family),
//!                                     #   composed specs, registry protocols
//! sweep gen e01 [--full] [--trials N] [--seed N]
//!                                     # print a builtin spec as JSON
//! sweep run spec.json --out DIR [--threads N] [--max-cells N]
//!                    [--telemetry] [--progress]
//!                                     # execute, checkpointing each cell
//! sweep run report --out DIR [--full] [--trials N] [--seed N] [...]
//!                                     # the composed full report: E1-E12 as
//!                                     #   one resumable run, shared budget
//! sweep resume DIR [--threads N] [--telemetry] [--progress]
//!                                     # finish a killed/interrupted sweep or
//!                                     #   composed report (auto-detected)
//! sweep export DIR --csv|--json [--out FILE] [--partial]
//!                                     # deterministic, grid-ordered export
//! sweep report DIR [--telemetry]      # completion status + phase profile
//! ```
//!
//! A sweep directory holds a manifest (the spec plus its hash) and JSONL
//! shards of completed cells; `run` on an existing directory, like `resume`,
//! skips persisted cells.  Because every cell is a deterministic function of
//! its hash-addressed spec, an interrupted-then-resumed sweep exports
//! byte-identical output to an uninterrupted one.  A composed report store
//! (`report.json` plus `members/<name>/` sub-stores) extends the same
//! contract across sweeps: one shared `--max-cells` budget drains member by
//! member, and `resume` continues from the first missing cell of the first
//! incomplete member.
//!
//! `--telemetry` (or a non-empty, non-`0` `FLIP_TELEMETRY` environment
//! variable) additionally records per-cell phase profiles — engine phase
//! timers, event counters, per-lane busy time — into JSONL shards under
//! `DIR/telemetry/`, kill-safe alongside the result shards, and prints the
//! sweep-wide aggregate table to stderr.  Telemetry reads the monotonic
//! clock only, never the RNG stream: results are bit-identical with it on
//! or off.  `--progress` streams per-cell completion lines (cells/s,
//! trials/s, ETA) to stderr.  `sweep report DIR --telemetry` re-renders the
//! profile table from the persisted shards of any past run.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use experiments::{specs, ExperimentConfig};
use sweeps::{
    export_csv, export_json, is_report_store, ordered_cells, ProtocolRegistry, ReportRunner,
    ReportSpec, ReportStore, SweepError, SweepRunner, SweepSpec, SweepStore,
};
use telemetry::Recorder;

const USAGE: &str = "usage:
  sweep list
  sweep gen <name> [--full] [--trials N] [--seed N] [--rounds N] [--faults D]
  sweep run <spec.json> --out <dir> [--threads N] [--max-cells N] [--telemetry] [--progress]
  sweep run report --out <dir> [--full] [--trials N] [--seed N] [--threads N] [--max-cells N] [--telemetry] [--progress]
  sweep resume <dir> [--threads N] [--max-cells N] [--telemetry] [--progress]
  sweep export <dir> --csv|--json [--out FILE] [--partial]
  sweep report <dir> [--telemetry]
(--trials, --threads, --max-cells and --rounds all require values >= 1:
 a zero would silently produce empty runs or empty aggregates;
 --telemetry is also honoured via the FLIP_TELEMETRY environment variable)";

/// Environment opt-in for `--telemetry`: any non-empty value except `0`.
const TELEMETRY_ENV: &str = "FLIP_TELEMETRY";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(SweepError::Spec(format!(
            "unknown subcommand `{other}`\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("sweep: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), SweepError> {
    println!("builtin sweeps (sweep gen <name>), by experiment family:");
    let cfg = ExperimentConfig::quick();
    for (family, names) in specs::SWEEP_FAMILIES {
        println!("  {family}:");
        for name in names {
            let spec = specs::builtin(name, &cfg).expect("family names resolve");
            println!(
                "    {name:<10} protocol={} backend={} cells={}",
                spec.protocol,
                spec.backend,
                spec.grid_len()
            );
        }
    }
    let report = specs::report_spec(&cfg);
    println!("composed specs (sweep run report --out <dir>):");
    println!(
        "    {:<10} members={} cells={} — E1-E12 as one resumable run",
        specs::REPORT_SPEC_NAME,
        report.members.len(),
        report.total_cells()?,
    );
    println!("registered protocols:");
    for (id, backends) in ProtocolRegistry::builtin().list() {
        let names: Vec<&str> = backends.iter().map(|b| b.as_str()).collect();
        println!("  {id:<20} backends: {}", names.join(", "));
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), SweepError> {
    // The sweep name must come first; everything after it (flags and their
    // values) goes to the shared experiment-config parser.  Requiring the
    // name up front keeps `gen --trials 2 e01` from misreading `2` as the
    // name and `e01` as a flag value.
    let Some((name, cfg_args)) = args.split_first() else {
        return Err(SweepError::Spec(format!("gen needs a name\n{USAGE}")));
    };
    if name.starts_with('-') {
        return Err(SweepError::Spec(format!(
            "gen takes the sweep name first, then flags (got `{name}`)\n{USAGE}"
        )));
    }
    if name == specs::REPORT_SPEC_NAME {
        return Err(SweepError::Spec(
            "the composed report is not a single spec; run it with: sweep run report --out <dir>"
                .into(),
        ));
    }
    let cfg = experiments::config_from_args(cfg_args.to_vec());
    let mut spec = specs::builtin(name, &cfg).ok_or_else(|| {
        let suggestion = specs::nearest_builtin(name)
            .map(|near| format!(" did you mean `{near}`?"))
            .unwrap_or_default();
        SweepError::Spec(format!(
            "unknown builtin sweep `{name}`;{suggestion} available: {}",
            specs::BUILTIN_SWEEPS.join(", ")
        ))
    })?;
    if let Some(rounds) = cfg.rounds {
        // Zero was rejected at parse time, so this can only tighten or
        // loosen a real cap.
        spec.rounds = rounds;
    }
    println!("{}", spec.to_pretty_json());
    Ok(())
}

/// Shared flag parsing for `run` / `resume` / `export`.
struct Flags {
    positional: Vec<String>,
    out: Option<PathBuf>,
    threads: Option<usize>,
    max_cells: Option<usize>,
    csv: bool,
    json: bool,
    partial: bool,
    telemetry: bool,
    progress: bool,
}

impl Flags {
    /// Whether this invocation records telemetry: the `--telemetry` flag or
    /// the `FLIP_TELEMETRY` environment opt-in.
    fn telemetry_requested(&self) -> bool {
        self.telemetry || std::env::var(TELEMETRY_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, SweepError> {
    let mut flags = Flags {
        positional: Vec::new(),
        out: None,
        threads: None,
        max_cells: None,
        csv: false,
        json: false,
        partial: false,
        telemetry: false,
        progress: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, SweepError> {
            inline.clone().map_or_else(
                || {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| SweepError::Spec(format!("{name} requires a value")))
                },
                Ok,
            )
        };
        match flag {
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--threads" => {
                flags.threads = Some(parse_positive(&value("--threads")?, "--threads")?);
            }
            "--max-cells" => {
                flags.max_cells = Some(parse_positive(&value("--max-cells")?, "--max-cells")?);
            }
            "--csv" => flags.csv = true,
            "--json" => flags.json = true,
            "--partial" => flags.partial = true,
            "--telemetry" => flags.telemetry = true,
            "--progress" => flags.progress = true,
            // Single-dash typos (`-threads`) must not pass as positionals.
            other if other.starts_with('-') => {
                return Err(SweepError::Spec(format!("unknown flag `{other}`\n{USAGE}")));
            }
            _ => flags.positional.push(arg.clone()),
        }
    }
    Ok(flags)
}

fn parse_positive(raw: &str, flag: &str) -> Result<usize, SweepError> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(SweepError::Spec(format!(
            "invalid {flag} value `{raw}`: expected an integer >= 1"
        ))),
    }
}

fn build_runner(flags: &Flags) -> SweepRunner {
    let mut runner = SweepRunner::new()
        .with_telemetry(flags.telemetry_requested())
        .with_progress(flags.progress);
    if let Some(threads) = flags.threads {
        runner = runner.with_threads(threads);
    }
    if let Some(max_cells) = flags.max_cells {
        runner = runner.with_max_cells(max_cells);
    }
    runner
}

fn execute(spec: &SweepSpec, store: &SweepStore, flags: &Flags) -> Result<(), SweepError> {
    let outcome = build_runner(flags).run(spec, &ProtocolRegistry::builtin(), Some(store))?;
    if let Some(recorder) = &outcome.telemetry {
        if !recorder.is_empty() {
            // stderr, like the progress stream: stdout stays reserved for
            // the run summary and exports.
            eprintln!(
                "telemetry profile (aggregate over {} executed cells):",
                outcome.executed
            );
            eprint!("{}", recorder.render());
        }
    }
    println!(
        "sweep `{}` ({}): {} cells total, {} executed, {} already persisted",
        spec.name,
        spec.hash_hex(),
        outcome.total,
        outcome.executed,
        outcome.skipped,
    );
    if outcome.completed {
        println!(
            "complete; export with: sweep export {} --csv",
            store.dir().display()
        );
    } else {
        println!(
            "incomplete ({}/{} cells); continue with: sweep resume {}",
            outcome.skipped + outcome.executed,
            outcome.total,
            store.dir().display()
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), SweepError> {
    // The composed report is a builtin composition, not a spec file on disk.
    if args.first().is_some_and(|a| a == specs::REPORT_SPEC_NAME) {
        return cmd_run_report(&args[1..]);
    }
    let flags = parse_flags(args)?;
    let [spec_path] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "run needs exactly one spec file\n{USAGE}"
        )));
    };
    let text = std::fs::read_to_string(spec_path).map_err(|e| {
        // An unreadable path that is nearly a builtin name is almost always
        // a typo for one, not a missing file — say so.
        let suggestion = match specs::nearest_builtin(spec_path) {
            Some(near) if near == specs::REPORT_SPEC_NAME => {
                "; did you mean the composed report? run it with: sweep run report --out <dir>"
                    .to_string()
            }
            Some(near) => format!(
                "; did you mean the builtin sweep `{near}`? generate it with: \
                 sweep gen {near} > {near}.json"
            ),
            None => String::new(),
        };
        SweepError::Spec(format!("cannot read {spec_path}: {e}{suggestion}"))
    })?;
    let spec = SweepSpec::from_json_text(&text)?;
    let out = flags
        .out
        .clone()
        .ok_or_else(|| SweepError::Spec("run needs --out <dir>".into()))?;
    let store = SweepStore::create(&out, &spec)?;
    execute(&spec, &store, &flags)
}

/// `sweep run report`: the composed full report as one resumable run.
///
/// The config flags (`--full`, `--trials`, `--seed`) select the member
/// grids exactly as they do for `full_report` and `sweep gen`; the sweep
/// flags (`--out`, `--threads`, `--max-cells`, `--telemetry`, `--progress`)
/// mean what they mean for a single sweep, with `--max-cells` budgeting the
/// whole composition.
fn cmd_run_report(args: &[String]) -> Result<(), SweepError> {
    let (cfg_args, sweep_args) = split_config_flags(args);
    let flags = parse_flags(&sweep_args)?;
    if let Some(stray) = flags.positional.first() {
        return Err(SweepError::Spec(format!(
            "run report takes flags only (got `{stray}`)\n{USAGE}"
        )));
    }
    let out = flags
        .out
        .clone()
        .ok_or_else(|| SweepError::Spec("run report needs --out <dir>".into()))?;
    let cfg = experiments::config_from_args(cfg_args);
    let spec = specs::report_spec(&cfg);
    let store = ReportStore::create(&out, &spec)?;
    execute_report(&spec, &store, &flags)
}

/// Splits `sweep run report` arguments into experiment-config flags (fed to
/// the shared parser) and sweep flags (fed to [`parse_flags`]).
fn split_config_flags(args: &[String]) -> (Vec<String>, Vec<String>) {
    let mut cfg_args = Vec::new();
    let mut sweep_args = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.split_once('=').map_or(arg.as_str(), |(flag, _)| flag) {
            "--full" => cfg_args.push(arg.clone()),
            "--trials" | "--seed" => {
                cfg_args.push(arg.clone());
                if !arg.contains('=') {
                    if let Some(value) = iter.next() {
                        cfg_args.push(value.clone());
                    }
                }
            }
            _ => sweep_args.push(arg.clone()),
        }
    }
    (cfg_args, sweep_args)
}

fn execute_report(spec: &ReportSpec, store: &ReportStore, flags: &Flags) -> Result<(), SweepError> {
    let mut runner = ReportRunner::new()
        .with_telemetry(flags.telemetry_requested())
        .with_progress(flags.progress);
    if let Some(threads) = flags.threads {
        runner = runner.with_threads(threads);
    }
    if let Some(max_cells) = flags.max_cells {
        runner = runner.with_max_cells(max_cells);
    }
    let outcome = runner.run(spec, &ProtocolRegistry::builtin(), Some(store))?;
    println!(
        "report `{}` ({}): {} members, {} cells total, {} executed, {} already persisted",
        spec.name,
        spec.hash_hex(),
        spec.members.len(),
        outcome.total,
        outcome.executed,
        outcome.skipped,
    );
    if outcome.completed {
        println!(
            "complete; render with: full_report --store {} --export report.md \
             (same config flags)",
            store.dir().display()
        );
    } else {
        println!(
            "incomplete ({}/{} cells); continue with: sweep resume {}",
            outcome.skipped + outcome.executed,
            outcome.total,
            store.dir().display()
        );
    }
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "resume needs exactly one store directory\n{USAGE}"
        )));
    };
    let dir = Path::new(dir);
    if is_report_store(dir) {
        let (store, spec) = ReportStore::open(dir)?;
        return execute_report(&spec, &store, &flags);
    }
    let (store, spec) = SweepStore::open(dir)?;
    execute(&spec, &store, &flags)
}

fn cmd_export(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "export needs exactly one store directory\n{USAGE}"
        )));
    };
    if flags.csv == flags.json {
        return Err(SweepError::Spec(
            "export needs exactly one of --csv or --json".into(),
        ));
    }
    if is_report_store(Path::new(dir)) {
        return Err(SweepError::Spec(format!(
            "{dir} is a composed report store; export its members individually \
             (sweep export {dir}/members/<name> --csv) or render the markdown report \
             with: full_report --store {dir} --export report.md"
        )));
    }
    let (store, spec) = SweepStore::open(Path::new(dir))?;
    let records = store.load_cells()?;
    let (pairs, missing) = ordered_cells(&spec, &records)?;
    if missing > 0 && !flags.partial {
        return Err(SweepError::Incomplete {
            done: pairs.len(),
            total: pairs.len() + missing,
        });
    }
    let document = if flags.csv {
        export_csv(&pairs)
    } else {
        export_json(&spec, &pairs)
    };
    match &flags.out {
        Some(path) => std::fs::write(path, document)?,
        None => print!("{document}"),
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "report needs exactly one store directory\n{USAGE}"
        )));
    };
    if is_report_store(Path::new(dir)) {
        return cmd_report_composed(Path::new(dir), &flags);
    }
    let (store, spec) = SweepStore::open(Path::new(dir))?;
    let records = store.load_cells()?;
    println!(
        "sweep `{}` ({}): {}/{} cells persisted",
        spec.name,
        spec.hash_hex(),
        records.len(),
        spec.grid_len(),
    );
    if !flags.telemetry_requested() {
        return Ok(());
    }
    let profiles = store.load_telemetry()?;
    if profiles.is_empty() {
        println!(
            "no telemetry profiles recorded; capture them with: sweep run <spec.json> --out {dir} \
             --telemetry"
        );
        return Ok(());
    }
    // `Recorder::merge` is commutative, so the merged table equals the
    // sweep-wide aggregate a live `--telemetry` run prints.
    let mut merged = Recorder::default();
    let mut trials = 0u64;
    let mut cell_ns = 0u64;
    for cell in profiles.values() {
        merged.merge(&cell.recorder);
        trials += cell.trials;
        cell_ns += cell.elapsed_ns;
    }
    println!(
        "telemetry: {} cell profiles, {} trials, {:.2}s total cell time",
        profiles.len(),
        trials,
        cell_ns as f64 / 1.0e9,
    );
    if merged.is_empty() {
        // Counts-only backends (dense strata) have no per-message engine
        // work to time; the shards still carry trial counts and wall time.
        println!("profiles contain no engine phases (counts-only backend)");
    } else {
        print!("{}", merged.render());
    }
    Ok(())
}

/// `sweep report` on a composed report store: per-member completion status
/// plus, with `--telemetry`, the profile aggregate merged across members.
fn cmd_report_composed(dir: &Path, flags: &Flags) -> Result<(), SweepError> {
    let (store, spec) = ReportStore::open(dir)?;
    let mut member_lines = Vec::with_capacity(spec.members.len());
    let mut persisted = 0usize;
    let mut total = 0usize;
    let mut merged = Recorder::default();
    let mut profiles = 0usize;
    let mut trials = 0u64;
    let mut cell_ns = 0u64;
    for member in &spec.members {
        let sub = store.member_store(member)?;
        let records = sub.load_cells()?;
        let cells = member.grid_len();
        member_lines.push(format!(
            "  member `{}`: {}/{} cells persisted",
            member.name,
            records.len(),
            cells
        ));
        persisted += records.len().min(cells);
        total += cells;
        if flags.telemetry_requested() {
            for profile in sub.load_telemetry()?.values() {
                merged.merge(&profile.recorder);
                profiles += 1;
                trials += profile.trials;
                cell_ns += profile.elapsed_ns;
            }
        }
    }
    println!(
        "report `{}` ({}): {persisted}/{total} cells persisted",
        spec.name,
        store.report_hash(),
    );
    for line in member_lines {
        println!("{line}");
    }
    if !flags.telemetry_requested() {
        return Ok(());
    }
    if profiles == 0 {
        println!(
            "no telemetry profiles recorded; capture them with: sweep run report --out {} \
             --telemetry",
            dir.display()
        );
        return Ok(());
    }
    println!(
        "telemetry: {profiles} cell profiles, {trials} trials, {:.2}s total cell time",
        cell_ns as f64 / 1.0e9,
    );
    if merged.is_empty() {
        println!("profiles contain no engine phases (counts-only backend)");
    } else {
        print!("{}", merged.render());
    }
    Ok(())
}
