//! `sweep` — the command-line face of the declarative sweep subsystem.
//!
//! ```text
//! sweep list                          # builtin specs and registry protocols
//! sweep gen e01 [--full] [--trials N] [--seed N]
//!                                     # print a builtin spec as JSON
//! sweep run spec.json --out DIR [--threads N] [--max-cells N]
//!                    [--telemetry] [--progress]
//!                                     # execute, checkpointing each cell
//! sweep resume DIR [--threads N] [--telemetry] [--progress]
//!                                     # finish a killed/interrupted sweep
//! sweep export DIR --csv|--json [--out FILE] [--partial]
//!                                     # deterministic, grid-ordered export
//! sweep report DIR [--telemetry]      # completion status + phase profile
//! ```
//!
//! A sweep directory holds a manifest (the spec plus its hash) and JSONL
//! shards of completed cells; `run` on an existing directory, like `resume`,
//! skips persisted cells.  Because every cell is a deterministic function of
//! its hash-addressed spec, an interrupted-then-resumed sweep exports
//! byte-identical output to an uninterrupted one.
//!
//! `--telemetry` (or a non-empty, non-`0` `FLIP_TELEMETRY` environment
//! variable) additionally records per-cell phase profiles — engine phase
//! timers, event counters, per-lane busy time — into JSONL shards under
//! `DIR/telemetry/`, kill-safe alongside the result shards, and prints the
//! sweep-wide aggregate table to stderr.  Telemetry reads the monotonic
//! clock only, never the RNG stream: results are bit-identical with it on
//! or off.  `--progress` streams per-cell completion lines (cells/s,
//! trials/s, ETA) to stderr.  `sweep report DIR --telemetry` re-renders the
//! profile table from the persisted shards of any past run.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use experiments::{specs, ExperimentConfig};
use sweeps::{
    export_csv, export_json, ordered_cells, ProtocolRegistry, SweepError, SweepRunner, SweepSpec,
    SweepStore,
};
use telemetry::Recorder;

const USAGE: &str = "usage:
  sweep list
  sweep gen <name> [--full] [--trials N] [--seed N] [--rounds N] [--faults D]
  sweep run <spec.json> --out <dir> [--threads N] [--max-cells N] [--telemetry] [--progress]
  sweep resume <dir> [--threads N] [--max-cells N] [--telemetry] [--progress]
  sweep export <dir> --csv|--json [--out FILE] [--partial]
  sweep report <dir> [--telemetry]
(--trials, --threads, --max-cells and --rounds all require values >= 1:
 a zero would silently produce empty runs or empty aggregates;
 --telemetry is also honoured via the FLIP_TELEMETRY environment variable)";

/// Environment opt-in for `--telemetry`: any non-empty value except `0`.
const TELEMETRY_ENV: &str = "FLIP_TELEMETRY";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(SweepError::Spec(format!(
            "unknown subcommand `{other}`\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("sweep: {err}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), SweepError> {
    println!("builtin sweeps (sweep gen <name>):");
    let cfg = ExperimentConfig::quick();
    for name in specs::BUILTIN_SWEEPS {
        let spec = specs::builtin(name, &cfg).expect("builtin names resolve");
        println!(
            "  {name:<10} protocol={} backend={} cells={}",
            spec.protocol,
            spec.backend,
            spec.grid_len()
        );
    }
    println!("registered protocols:");
    for (id, backends) in ProtocolRegistry::builtin().list() {
        let names: Vec<&str> = backends.iter().map(|b| b.as_str()).collect();
        println!("  {id:<20} backends: {}", names.join(", "));
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), SweepError> {
    // The sweep name must come first; everything after it (flags and their
    // values) goes to the shared experiment-config parser.  Requiring the
    // name up front keeps `gen --trials 2 e01` from misreading `2` as the
    // name and `e01` as a flag value.
    let Some((name, cfg_args)) = args.split_first() else {
        return Err(SweepError::Spec(format!("gen needs a name\n{USAGE}")));
    };
    if name.starts_with('-') {
        return Err(SweepError::Spec(format!(
            "gen takes the sweep name first, then flags (got `{name}`)\n{USAGE}"
        )));
    }
    let cfg = experiments::config_from_args(cfg_args.to_vec());
    let mut spec = specs::builtin(name, &cfg).ok_or_else(|| {
        SweepError::Spec(format!(
            "unknown builtin sweep `{name}`; available: {}",
            specs::BUILTIN_SWEEPS.join(", ")
        ))
    })?;
    if let Some(rounds) = cfg.rounds {
        // Zero was rejected at parse time, so this can only tighten or
        // loosen a real cap.
        spec.rounds = rounds;
    }
    println!("{}", spec.to_pretty_json());
    Ok(())
}

/// Shared flag parsing for `run` / `resume` / `export`.
struct Flags {
    positional: Vec<String>,
    out: Option<PathBuf>,
    threads: Option<usize>,
    max_cells: Option<usize>,
    csv: bool,
    json: bool,
    partial: bool,
    telemetry: bool,
    progress: bool,
}

impl Flags {
    /// Whether this invocation records telemetry: the `--telemetry` flag or
    /// the `FLIP_TELEMETRY` environment opt-in.
    fn telemetry_requested(&self) -> bool {
        self.telemetry || std::env::var(TELEMETRY_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, SweepError> {
    let mut flags = Flags {
        positional: Vec::new(),
        out: None,
        threads: None,
        max_cells: None,
        csv: false,
        json: false,
        partial: false,
        telemetry: false,
        progress: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, SweepError> {
            inline.clone().map_or_else(
                || {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| SweepError::Spec(format!("{name} requires a value")))
                },
                Ok,
            )
        };
        match flag {
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--threads" => {
                flags.threads = Some(parse_positive(&value("--threads")?, "--threads")?);
            }
            "--max-cells" => {
                flags.max_cells = Some(parse_positive(&value("--max-cells")?, "--max-cells")?);
            }
            "--csv" => flags.csv = true,
            "--json" => flags.json = true,
            "--partial" => flags.partial = true,
            "--telemetry" => flags.telemetry = true,
            "--progress" => flags.progress = true,
            // Single-dash typos (`-threads`) must not pass as positionals.
            other if other.starts_with('-') => {
                return Err(SweepError::Spec(format!("unknown flag `{other}`\n{USAGE}")));
            }
            _ => flags.positional.push(arg.clone()),
        }
    }
    Ok(flags)
}

fn parse_positive(raw: &str, flag: &str) -> Result<usize, SweepError> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(SweepError::Spec(format!(
            "invalid {flag} value `{raw}`: expected an integer >= 1"
        ))),
    }
}

fn build_runner(flags: &Flags) -> SweepRunner {
    let mut runner = SweepRunner::new()
        .with_telemetry(flags.telemetry_requested())
        .with_progress(flags.progress);
    if let Some(threads) = flags.threads {
        runner = runner.with_threads(threads);
    }
    if let Some(max_cells) = flags.max_cells {
        runner = runner.with_max_cells(max_cells);
    }
    runner
}

fn execute(spec: &SweepSpec, store: &SweepStore, flags: &Flags) -> Result<(), SweepError> {
    let outcome = build_runner(flags).run(spec, &ProtocolRegistry::builtin(), Some(store))?;
    if let Some(recorder) = &outcome.telemetry {
        if !recorder.is_empty() {
            // stderr, like the progress stream: stdout stays reserved for
            // the run summary and exports.
            eprintln!(
                "telemetry profile (aggregate over {} executed cells):",
                outcome.executed
            );
            eprint!("{}", recorder.render());
        }
    }
    println!(
        "sweep `{}` ({}): {} cells total, {} executed, {} already persisted",
        spec.name,
        spec.hash_hex(),
        outcome.total,
        outcome.executed,
        outcome.skipped,
    );
    if outcome.completed {
        println!(
            "complete; export with: sweep export {} --csv",
            store.dir().display()
        );
    } else {
        println!(
            "incomplete ({}/{} cells); continue with: sweep resume {}",
            outcome.skipped + outcome.executed,
            outcome.total,
            store.dir().display()
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [spec_path] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "run needs exactly one spec file\n{USAGE}"
        )));
    };
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| SweepError::Spec(format!("cannot read {spec_path}: {e}")))?;
    let spec = SweepSpec::from_json_text(&text)?;
    let out = flags
        .out
        .clone()
        .ok_or_else(|| SweepError::Spec("run needs --out <dir>".into()))?;
    let store = SweepStore::create(&out, &spec)?;
    execute(&spec, &store, &flags)
}

fn cmd_resume(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "resume needs exactly one store directory\n{USAGE}"
        )));
    };
    let (store, spec) = SweepStore::open(Path::new(dir))?;
    execute(&spec, &store, &flags)
}

fn cmd_export(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "export needs exactly one store directory\n{USAGE}"
        )));
    };
    if flags.csv == flags.json {
        return Err(SweepError::Spec(
            "export needs exactly one of --csv or --json".into(),
        ));
    }
    let (store, spec) = SweepStore::open(Path::new(dir))?;
    let records = store.load_cells()?;
    let (pairs, missing) = ordered_cells(&spec, &records)?;
    if missing > 0 && !flags.partial {
        return Err(SweepError::Incomplete {
            done: pairs.len(),
            total: pairs.len() + missing,
        });
    }
    let document = if flags.csv {
        export_csv(&pairs)
    } else {
        export_json(&spec, &pairs)
    };
    match &flags.out {
        Some(path) => std::fs::write(path, document)?,
        None => print!("{document}"),
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), SweepError> {
    let flags = parse_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err(SweepError::Spec(format!(
            "report needs exactly one store directory\n{USAGE}"
        )));
    };
    let (store, spec) = SweepStore::open(Path::new(dir))?;
    let records = store.load_cells()?;
    println!(
        "sweep `{}` ({}): {}/{} cells persisted",
        spec.name,
        spec.hash_hex(),
        records.len(),
        spec.grid_len(),
    );
    if !flags.telemetry_requested() {
        return Ok(());
    }
    let profiles = store.load_telemetry()?;
    if profiles.is_empty() {
        println!(
            "no telemetry profiles recorded; capture them with: sweep run <spec.json> --out {dir} \
             --telemetry"
        );
        return Ok(());
    }
    // `Recorder::merge` is commutative, so the merged table equals the
    // sweep-wide aggregate a live `--telemetry` run prints.
    let mut merged = Recorder::default();
    let mut trials = 0u64;
    let mut cell_ns = 0u64;
    for cell in profiles.values() {
        merged.merge(&cell.recorder);
        trials += cell.trials;
        cell_ns += cell.elapsed_ns;
    }
    println!(
        "telemetry: {} cell profiles, {} trials, {:.2}s total cell time",
        profiles.len(),
        trials,
        cell_ns as f64 / 1.0e9,
    );
    if merged.is_empty() {
        // Counts-only backends (dense strata) have no per-message engine
        // work to time; the shards still carry trial counts and wall time.
        println!("profiles contain no engine phases (counts-only backend)");
    } else {
        print!("{}", merged.render());
    }
    Ok(())
}
