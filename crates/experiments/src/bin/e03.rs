//! Experiment binary `e03`: message complexity (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e03 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e03", true, |cfg| {
        vec![experiments::scaling::e03_message_complexity(cfg)]
    });
}
