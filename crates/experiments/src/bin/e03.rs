//! Experiment binary `e03`: message complexity (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e03 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e03");
    println!(
        "{}",
        experiments::scaling::e03_message_complexity(&cfg).to_markdown()
    );
}
