//! Experiment binary `e03`: message complexity (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e03 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed sweep `e03`
//! (`experiments::specs`): the broadcast protocol over the
//! `n × ε` message-complexity grid, digit-for-digit identical to the legacy
//! `scaling::e03_message_complexity` loop (`tests/spec_equivalence.rs` pins
//! this).  The same sweep is available with persistence and resume via the
//! `sweep` binary.

fn main() {
    experiments::cli::run_tables("e03", true, |cfg| {
        experiments::specs::backend_tables("e03", cfg)
    });
}
