//! Experiment binary `ablations`: design-choice ablations A1-A3.
//!
//! Usage: `cargo run --release -p experiments --bin ablations [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "ablations");
    for table in experiments::ablations::all(&cfg) {
        println!("{}", table.to_markdown());
    }
}
