//! Experiment binary `ablations`: design-choice ablations A1-A3.
//!
//! Usage: `cargo run --release -p experiments --bin ablations [-- --full]
//! [--trials N] [--threads N]`
//!
//! A2 (the Stage II sample-count sweep) runs through the registry-backed
//! `a2` sweep spec (`experiments::specs`); A1 and A3 remain direct loops.

fn main() {
    experiments::cli::run_tables("ablations", true, |cfg| {
        vec![
            experiments::ablations::a1_required_initial_bias(cfg),
            experiments::specs::a2_table(cfg),
            experiments::ablations::a3_phase0_requirement(cfg),
        ]
    });
}
