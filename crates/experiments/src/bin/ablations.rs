//! Experiment binary `ablations`: design-choice ablations A1-A3.
//!
//! Usage: `cargo run --release -p experiments --bin ablations [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `a1`/`a2`/`a3` sweeps
//! (`experiments::specs`); the same sweeps are available with persistence
//! and resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("ablations", false, |cfg| {
        experiments::specs::backend_tables("ablations", cfg)
    });
}
