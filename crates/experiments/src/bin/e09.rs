//! Experiment binary `e09`: removing the global clock (Theorem 3.1).
//!
//! Usage: `cargo run --release -p experiments --bin e09 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e09` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e09", false, |cfg| {
        experiments::specs::backend_tables("e09", cfg)
    });
}
