//! Experiment binary `e09`: removing the global clock (Theorem 3.1).
//!
//! Usage: `cargo run --release -p experiments --bin e09 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e09");
    println!(
        "{}",
        experiments::scaling::e09_async_overhead(&cfg).to_markdown()
    );
}
