//! Experiment binary `e09`: removing the global clock (Theorem 3.1).
//!
//! Usage: `cargo run --release -p experiments --bin e09 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e09", true, |cfg| {
        vec![experiments::scaling::e09_async_overhead(cfg)]
    });
}
