//! Experiment binary `e11`: per-hop reliability decay (section 1.6).
//!
//! Usage: `cargo run --release -p experiments --bin e11 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e11` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e11", false, |cfg| {
        experiments::specs::backend_tables("e11", cfg)
    });
}
