//! Experiment binary `e11`: per-hop reliability decay (section 1.6).
//!
//! Usage: `cargo run --release -p experiments --bin e11 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e11", true, |cfg| {
        vec![experiments::comparisons::e11_path_deterioration(cfg)]
    });
}
