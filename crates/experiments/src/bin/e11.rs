//! Experiment binary `e11`: per-hop reliability decay (section 1.6).
//!
//! Usage: `cargo run --release -p experiments --bin e11 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e11");
    println!(
        "{}",
        experiments::comparisons::e11_path_deterioration(&cfg).to_markdown()
    );
}
