//! Experiment binary `e12`: two-party lower bound (section 1.4).
//!
//! Usage: `cargo run --release -p experiments --bin e12 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e12", true, |cfg| {
        vec![experiments::comparisons::e12_two_party_lower_bound(cfg)]
    });
}
