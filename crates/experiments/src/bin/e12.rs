//! Experiment binary `e12`: two-party lower bound (section 1.4).
//!
//! Usage: `cargo run --release -p experiments --bin e12 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e12` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e12", false, |cfg| {
        experiments::specs::backend_tables("e12", cfg)
    });
}
