//! Experiment binary `e12`: two-party lower bound (section 1.4).
//!
//! Usage: `cargo run --release -p experiments --bin e12 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e12");
    println!(
        "{}",
        experiments::comparisons::e12_two_party_lower_bound(&cfg).to_markdown()
    );
}
