//! Experiment binary `e05`: Stage I layer growth (Claim 2.4).
//!
//! Usage: `cargo run --release -p experiments --bin e05 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e05", true, |cfg| {
        vec![experiments::stage_claims::e05_layer_growth(cfg)]
    });
}
