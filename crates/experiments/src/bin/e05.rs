//! Experiment binary `e05`: Stage I layer growth (Claim 2.4).
//!
//! Usage: `cargo run --release -p experiments --bin e05 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e05");
    println!(
        "{}",
        experiments::stage_claims::e05_layer_growth(&cfg).to_markdown()
    );
}
