//! Experiment binary `e05`: Stage I layer growth (Claim 2.4).
//!
//! Usage: `cargo run --release -p experiments --bin e05 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e05` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e05", false, |cfg| {
        experiments::specs::backend_tables("e05", cfg)
    });
}
