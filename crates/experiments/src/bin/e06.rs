//! Experiment binary `e06`: per-level bias decay (Claim 2.8, Lemma 2.3).
//!
//! Usage: `cargo run --release -p experiments --bin e06 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e06` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e06", false, |cfg| {
        experiments::specs::backend_tables("e06", cfg)
    });
}
