//! Experiment binary `e06`: per-level bias decay (Claim 2.8, Lemma 2.3).
//!
//! Usage: `cargo run --release -p experiments --bin e06 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e06");
    println!(
        "{}",
        experiments::stage_claims::e06_bias_decay(&cfg).to_markdown()
    );
}
