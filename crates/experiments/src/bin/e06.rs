//! Experiment binary `e06`: per-level bias decay (Claim 2.8, Lemma 2.3).
//!
//! Usage: `cargo run --release -p experiments --bin e06 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e06", true, |cfg| {
        vec![experiments::stage_claims::e06_bias_decay(cfg)]
    });
}
