//! Experiment binary `e08`: noisy majority-consensus (Corollary 2.18).
//!
//! Usage: `cargo run --release -p experiments --bin e08 [-- --full]
//! [--backend agents|dense] [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed sweeps `e08` / `e08-dense`
//! (`experiments::specs`): with `--backend dense` it measures the Stage II
//! majority boost on populations of 10⁵–10⁶⁺ agents; the default per-agent
//! backend runs the full protocol sweep E8.  Backend dispatch lives in
//! `specs::backend_tables`, not here — a backend without an E8 variant
//! (e.g. `hybrid:k`) fails loudly naming `--backend`.  The same sweeps are
//! available with persistence and resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e08", false, |cfg| {
        experiments::specs::backend_tables("e08", cfg)
    });
}
