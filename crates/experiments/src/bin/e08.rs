//! Experiment binary `e08`: noisy majority-consensus (Corollary 2.18).
//!
//! Usage: `cargo run --release -p experiments --bin e08 [-- --full]
//! [--backend dense|agents] [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed sweeps `e08` / `e08-dense`
//! (`experiments::specs`): with `--backend dense` it measures the Stage II
//! majority boost on populations of 10⁵–10⁶⁺ agents; the default per-agent
//! backend runs the full protocol sweep E8.  The same sweeps are available
//! with persistence and resume via the `sweep` binary.

use flip_model::Backend;

fn main() {
    experiments::cli::run_tables("e08", false, |cfg| match cfg.backend {
        Backend::Dense => vec![experiments::specs::e08_dense_table(cfg)],
        Backend::Agents => vec![experiments::specs::e08_table(cfg)],
    });
}
