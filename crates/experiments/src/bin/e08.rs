//! Experiment binary `e08`: noisy majority-consensus (Corollary 2.18).
//!
//! Usage: `cargo run --release -p experiments --bin e08 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    println!(
        "{}",
        experiments::consensus::e08_majority_consensus(&cfg).to_markdown()
    );
}
