//! Experiment binary `e08`: noisy majority-consensus (Corollary 2.18).
//!
//! Usage: `cargo run --release -p experiments --bin e08 [-- --full] [--backend dense|agents]`
//!
//! With `--backend dense` the binary runs the dense-engine variant E8-D,
//! which measures the Stage II majority boost on populations of 10⁵–10⁶⁺
//! agents; the default per-agent backend runs the full protocol sweep E8.

use flip_model::Backend;

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    match cfg.backend {
        Backend::Dense => println!(
            "{}",
            experiments::consensus::e08_dense_majority(&cfg).to_markdown()
        ),
        Backend::Agents => println!(
            "{}",
            experiments::consensus::e08_majority_consensus(&cfg).to_markdown()
        ),
    }
}
