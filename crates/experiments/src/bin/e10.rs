//! Experiment binary `e10`: baseline comparison (sections 1.2 and 1.6).
//!
//! Usage: `cargo run --release -p experiments --bin e10 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e10");
    println!(
        "{}",
        experiments::comparisons::e10_baseline_comparison(&cfg).to_markdown()
    );
}
