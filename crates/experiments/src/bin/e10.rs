//! Experiment binary `e10`: baseline comparison (sections 1.2 and 1.6).
//!
//! Usage: `cargo run --release -p experiments --bin e10 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e10", true, |cfg| {
        vec![experiments::comparisons::e10_baseline_comparison(cfg)]
    });
}
