//! Experiment binary `e10`: baseline comparison (sections 1.2 and 1.6).
//!
//! Usage: `cargo run --release -p experiments --bin e10 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e10` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e10", false, |cfg| {
        experiments::specs::backend_tables("e10", cfg)
    });
}
