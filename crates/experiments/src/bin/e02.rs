//! Experiment binary `e02`: broadcast rounds vs epsilon (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e02 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e02");
    println!(
        "{}",
        experiments::scaling::e02_rounds_vs_epsilon(&cfg).to_markdown()
    );
}
