//! Experiment binary `e02`: broadcast rounds vs epsilon (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e02 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e02", true, |cfg| {
        vec![experiments::scaling::e02_rounds_vs_epsilon(cfg)]
    });
}
