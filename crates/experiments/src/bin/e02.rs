//! Experiment binary `e02`: broadcast rounds vs epsilon (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e02 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed sweep `e02`
//! (`experiments::specs`), digit-identical to the legacy
//! `scaling::e02_rounds_vs_epsilon` loop.  Backend dispatch lives in
//! `specs::backend_tables`; the same sweep is available with persistence
//! and resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e02", false, |cfg| {
        experiments::specs::backend_tables("e02", cfg)
    });
}
