//! Experiment binary `e13`: Stage I/II majority vs Ben-Or under injected
//! faults (the BFT-comparison family).
//!
//! Usage: `cargo run --release -p experiments --bin e13 [-- --full]
//! [--faults byz:F|equiv:F|flip:F|crash:F@R] [--allow-supermajority-faults]
//! [--trials N] [--threads N]`
//!
//! Runs the phase-tally Stage II majority boost and gossip Ben-Or on
//! identically seeded populations across `ε × f/n`, scoring honest agents
//! only.  `--faults` swaps the injected fault *kind* for the whole grid;
//! the `fault_fraction` axis sweeps the fraction (0 = honest baseline).
//! A thin wrapper over the registry-backed sweep `e13`
//! (`experiments::specs`); the same sweep is available with persistence
//! and resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e13", false, |cfg| {
        experiments::specs::backend_tables("e13", cfg)
    });
}
