//! Experiment binary `e01`: broadcast rounds vs n (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e01 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    println!(
        "{}",
        experiments::scaling::e01_rounds_vs_n(&cfg).to_markdown()
    );
}
