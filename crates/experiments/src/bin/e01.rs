//! Experiment binary `e01`: broadcast rounds vs n (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e01 [-- --full]
//! [--backend agents|dense|hybrid:k] [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed sweeps `e01` / `e01-dense` /
//! `e01-hybrid` (`experiments::specs`): `--backend dense` runs the
//! dense-engine scaling variant E1-D at populations of 10⁵–10⁶⁺ agents,
//! `--backend hybrid:k` runs the same grid with `k` tracked agents against
//! the dense bulk, and the default per-agent backend runs the protocol-level
//! sweep E1.  Backend dispatch lives in `specs::backend_tables`, not here.
//! The same sweeps are available with persistence and resume via the `sweep`
//! binary.

fn main() {
    experiments::cli::run_tables("e01", false, |cfg| {
        experiments::specs::backend_tables("e01", cfg)
    });
}
