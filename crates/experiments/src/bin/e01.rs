//! Experiment binary `e01`: broadcast rounds vs n (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e01 [-- --full]
//! [--backend dense|agents] [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed sweeps `e01` / `e01-dense`
//! (`experiments::specs`): with `--backend dense` it runs the dense-engine
//! scaling variant E1-D at populations of 10⁵–10⁶⁺ agents; the default
//! per-agent backend runs the protocol-level sweep E1.  The same sweeps are
//! available with persistence and resume via the `sweep` binary.

use flip_model::Backend;

fn main() {
    experiments::cli::run_tables("e01", false, |cfg| match cfg.backend {
        Backend::Dense => vec![experiments::specs::e01_dense_table(cfg)],
        Backend::Agents => vec![experiments::specs::e01_table(cfg)],
    });
}
