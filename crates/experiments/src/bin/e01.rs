//! Experiment binary `e01`: broadcast rounds vs n (Theorem 2.17).
//!
//! Usage: `cargo run --release -p experiments --bin e01 [-- --full] [--backend dense|agents]`
//!
//! With `--backend dense` the binary runs the dense-engine scaling variant
//! E1-D, which sweeps populations of 10⁵–10⁶⁺ agents; the default per-agent
//! backend runs the protocol-level sweep E1.

use flip_model::Backend;

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    match cfg.backend {
        Backend::Dense => println!(
            "{}",
            experiments::scaling::e01_dense_scaling(&cfg).to_markdown()
        ),
        Backend::Agents => println!(
            "{}",
            experiments::scaling::e01_rounds_vs_n(&cfg).to_markdown()
        ),
    }
}
