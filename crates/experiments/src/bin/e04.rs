//! Experiment binary `e04`: phase-0 activation and bias (Claim 2.2).
//!
//! Usage: `cargo run --release -p experiments --bin e04 [-- --full]
//! [--trials N] [--threads N]`

fn main() {
    experiments::cli::run_tables("e04", true, |cfg| {
        vec![experiments::stage_claims::e04_phase0_seeding(cfg)]
    });
}
