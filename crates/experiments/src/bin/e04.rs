//! Experiment binary `e04`: phase-0 activation and bias (Claim 2.2).
//!
//! Usage: `cargo run --release -p experiments --bin e04 [-- --full]`

fn main() {
    let cfg = experiments::config_from_args(std::env::args().skip(1));
    experiments::require_agents_backend(&cfg, "e04");
    println!(
        "{}",
        experiments::stage_claims::e04_phase0_seeding(&cfg).to_markdown()
    );
}
