//! Experiment binary `e04`: phase-0 activation and bias (Claim 2.2).
//!
//! Usage: `cargo run --release -p experiments --bin e04 [-- --full]
//! [--trials N] [--threads N]`
//!
//! A thin wrapper over the registry-backed `e04` sweep
//! (`experiments::specs`); the same sweep is available with persistence and
//! resume via the `sweep` binary.

fn main() {
    experiments::cli::run_tables("e04", false, |cfg| {
        experiments::specs::backend_tables("e04", cfg)
    });
}
