//! The experiment harness of the *Breathe before Speaking* reproduction.
//!
//! The paper is theoretical, so its "evaluation" is the collection of
//! quantitative claims (theorems, lemmas, claims) plus the informal
//! comparisons of §1.4 and §1.6.  Each becomes an experiment `E1`–`E12`
//! (see `DESIGN.md` for the index); this crate provides:
//!
//! * [`cli`] — the shared command-line convention of every experiment
//!   binary (`--full`, `--backend`, `--trials`, `--threads`, `--seed`),
//! * [`specs`] — every experiment family (E1–E13 and the ablations A1–A3)
//!   expressed as a declarative [`sweeps::SweepSpec`] over the sweep
//!   registry, plus renderers that rebuild each results table from
//!   streaming sweep aggregates (pinned digit-for-digit against the
//!   original hand-rolled runners in `tests/spec_equivalence.rs`),
//! * [`scaling`] and [`consensus`] — the shared quick/full parameter grids
//!   those specs sweep,
//! * [`report`] — assembling the tables into a markdown report.
//!
//! Multi-trial fan-out lives in [`sweeps::TrialRunner`] (re-exported here as
//! [`TrialRunner`]); grid-level orchestration, persistence and resume live in
//! the [`sweeps`] crate driven by the `sweep` binary.
//!
//! Every experiment function takes an [`ExperimentConfig`] and returns one or
//! more [`analysis::Table`]s, so the same code path serves the `e01`…`e12`
//! binaries, the integration tests and the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod consensus;
pub mod report;
pub mod scaling;
pub mod specs;

pub use report::Report;
pub use sweeps::{runner, TrialRunner};

use flip_model::{Backend, FaultSpec};

/// Controls how heavy an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Number of independent trials per configuration point.
    pub trials: u32,
    /// Base seed; trial `t` of configuration point `c` uses a seed derived
    /// deterministically from `(base_seed, c, t)`.
    pub base_seed: u64,
    /// Quick mode shrinks population sizes and trial counts so that the whole
    /// suite finishes in minutes; full mode uses the sizes quoted in
    /// `EXPERIMENTS.md`.
    pub quick: bool,
    /// Which simulation engine to use where an experiment supports both: the
    /// exact per-agent engine, or the dense counts-based engine that reaches
    /// `n = 10⁶⁺` (selected on the command line with `--backend dense`).
    pub backend: Backend,
    /// Worker-thread override (`--threads`); `None` defers to
    /// [`sweeps::default_threads`] (the `FLIP_THREADS` environment variable,
    /// or the machine width).
    pub threads: Option<usize>,
    /// Round-cap override (`--rounds`) for surfaces that expose one — the
    /// `sweep gen` builtin-spec generator applies it to the generated
    /// spec's `rounds` field.  `None` keeps each sweep's own cap.  Zero is
    /// rejected at parse time: a 0-round sweep silently exports empty
    /// aggregates.
    pub rounds: Option<u64>,
    /// Fault-injection directive (`--faults byz:0.1|crash:0.05@20|...`) for
    /// surfaces that support it — `sweep gen` writes it into the generated
    /// spec's `faults` field.  `None` (the default) runs fault-free and
    /// keeps every fault-free spec hash unchanged.
    pub faults: Option<FaultSpec>,
    /// Waives the `f/n < 1/3` sanity bound on `--faults`
    /// (`--allow-supermajority-faults`): no binary consensus can tolerate a
    /// Byzantine third, so asking for one is almost always a typo — but the
    /// E13 family deliberately sweeps past the bound to chart the collapse.
    pub allow_supermajority_faults: bool,
}

impl ExperimentConfig {
    /// The quick preset used by tests and the default binary invocation.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            trials: 5,
            base_seed: 0xBEA7_4E5E,
            quick: true,
            backend: Backend::Agents,
            threads: None,
            rounds: None,
            faults: None,
            allow_supermajority_faults: false,
        }
    }

    /// The full preset used to produce `EXPERIMENTS.md`.
    #[must_use]
    pub fn full() -> Self {
        Self {
            trials: 20,
            base_seed: 0xBEA7_4E5E,
            quick: false,
            backend: Backend::Agents,
            threads: None,
            rounds: None,
            faults: None,
            allow_supermajority_faults: false,
        }
    }

    /// Returns the same configuration with the given backend selected.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Chooses between two values depending on quick/full mode.
    #[must_use]
    pub fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// A deterministic seed for configuration point `point` and trial `trial`.
    ///
    /// Derived with [`flip_model::SimRng::stream_seed`], the same mixer
    /// `SimRng::fork` uses, so "one master seed, many independent streams"
    /// has a single definition: point streams fork off the base seed, trial
    /// streams fork off their point stream.
    #[must_use]
    pub fn seed_for(&self, point: u64, trial: u64) -> u64 {
        use flip_model::SimRng;
        SimRng::stream_seed(SimRng::stream_seed(self.base_seed, point), trial)
    }

    /// A [`TrialRunner`] for one configuration point, honouring the
    /// `--threads` override (and, through [`TrialRunner::new`], the
    /// `FLIP_THREADS` environment variable).
    #[must_use]
    pub fn runner(&self) -> TrialRunner {
        let runner = TrialRunner::new(u64::from(self.trials));
        match self.threads {
            Some(threads) => runner.with_threads(threads),
            None => runner,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Parses the standard command-line convention of the experiment binaries
/// (see [`cli::parse_config`] for the accepted flags).
///
/// # Panics
///
/// Panics with a usage message on unknown flags or invalid values, so a typo
/// fails a binary invocation loudly instead of silently running a default.
#[must_use]
pub fn config_from_args<I: IntoIterator<Item = String>>(args: I) -> ExperimentConfig {
    cli::parse_config(args)
}

/// Guard for binaries whose experiments exist only on the per-agent engine:
/// rejects a `--backend dense`/`hybrid:k` selection loudly instead of
/// silently running the default engine and letting the user mistake the
/// numbers for counts-engine results.  (`e01` and `e08` have non-agents
/// variants and dispatch through [`specs::backend_tables`] instead.)
///
/// # Panics
///
/// Panics when `cfg.backend` is not [`Backend::Agents`].
pub fn require_agents_backend(cfg: &ExperimentConfig, binary: &str) {
    assert!(
        cfg.backend == Backend::Agents,
        "`{binary}` runs only on the per-agent engine; drop `--backend {}` \
         (dense and hybrid variants exist for e01, dense for e08)",
        cfg.backend
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agents_only_binaries_reject_the_dense_backend() {
        require_agents_backend(&ExperimentConfig::quick(), "e03");
        let result = std::panic::catch_unwind(|| {
            require_agents_backend(
                &ExperimentConfig::quick().with_backend(Backend::Dense),
                "e03",
            );
        });
        assert!(result.is_err(), "dense must be rejected loudly");
    }

    #[test]
    fn presets_differ_in_scale() {
        let quick = ExperimentConfig::quick();
        let full = ExperimentConfig::full();
        assert!(quick.trials < full.trials);
        assert!(quick.quick && !full.quick);
        assert_eq!(quick.pick(1, 2), 1);
        assert_eq!(full.pick(1, 2), 2);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(cfg.seed_for(1, 2), cfg.seed_for(1, 2));
        assert_ne!(cfg.seed_for(1, 2), cfg.seed_for(1, 3));
        assert_ne!(cfg.seed_for(1, 2), cfg.seed_for(2, 2));
    }

    #[test]
    fn args_select_the_preset() {
        assert_eq!(
            config_from_args(vec!["e01".to_string()]),
            ExperimentConfig::quick()
        );
        assert_eq!(
            config_from_args(vec!["--full".to_string()]),
            ExperimentConfig::full()
        );
        assert_eq!(
            config_from_args(Vec::<String>::new()),
            ExperimentConfig::quick()
        );
    }

    #[test]
    fn args_select_the_backend() {
        assert_eq!(
            config_from_args(Vec::<String>::new()).backend,
            Backend::Agents
        );
        assert_eq!(
            config_from_args(vec!["--backend".to_string(), "dense".to_string()]).backend,
            Backend::Dense
        );
        assert_eq!(
            config_from_args(vec!["--backend=dense".to_string()]).backend,
            Backend::Dense
        );
        let cfg = config_from_args(vec!["--full".to_string(), "--backend=agents".to_string()]);
        assert_eq!(cfg.backend, Backend::Agents);
        assert!(!cfg.quick);
        assert_eq!(
            ExperimentConfig::quick()
                .with_backend(Backend::Dense)
                .backend,
            Backend::Dense
        );
    }

    #[test]
    #[should_panic(expected = "invalid --backend")]
    fn unknown_backend_fails_loudly() {
        let _ = config_from_args(vec!["--backend".to_string(), "gpu".to_string()]);
    }

    #[test]
    fn runner_honours_the_threads_override() {
        let mut cfg = ExperimentConfig::quick();
        cfg.trials = 64;
        cfg.threads = Some(3);
        assert_eq!(cfg.runner().threads(), 3);
        assert_eq!(cfg.runner().trials(), 64);
        cfg.threads = None;
        assert!(cfg.runner().threads() >= 1);
    }
}
