//! Shared parameter grids for the majority-consensus experiments E8 and E8-D.
//!
//! The experiment loops themselves live in the sweep registry
//! (`sweeps::registry`); the sweep specs in [`crate::specs`] consume these
//! grids to build their axes, so quick/full scaling has one definition per
//! experiment.

use crate::ExperimentConfig;

/// The initial-set sizes swept by E8.
#[must_use]
pub fn initial_set_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![40, 100, 400]
    } else {
        vec![40, 100, 400, 1_000, 4_000]
    }
}

/// The majority-bias values swept by E8.
#[must_use]
pub fn bias_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.1, 0.25]
    } else {
        vec![0.05, 0.1, 0.25, 0.4]
    }
}

/// The population sizes swept by the dense majority experiment E8-D.
#[must_use]
pub fn dense_majority_grid(cfg: &ExperimentConfig) -> Vec<u64> {
    if cfg.quick {
        vec![100_000, 1_000_000]
    } else {
        vec![100_000, 1_000_000, 4_000_000]
    }
}

/// The whole-population initial biases swept by E8-D.
#[must_use]
pub fn dense_bias_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.01, 0.05]
    } else {
        vec![0.005, 0.01, 0.05, 0.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_scale_with_mode() {
        assert!(
            initial_set_grid(&ExperimentConfig::full()).len()
                > initial_set_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            bias_grid(&ExperimentConfig::full()).len()
                > bias_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            dense_majority_grid(&ExperimentConfig::full()).len()
                > dense_majority_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            dense_bias_grid(&ExperimentConfig::full()).len()
                > dense_bias_grid(&ExperimentConfig::quick()).len()
        );
    }
}
