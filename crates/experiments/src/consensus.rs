//! E8: noisy majority-consensus success versus initial set size and
//! majority-bias (Corollary 2.18).

use analysis::estimators::{mean, SuccessRate};
use analysis::tables::fmt_float;
use analysis::Table;
use breathe::{InitialSet, MajorityConsensusProtocol, Params};
use flip_model::Opinion;

use crate::{ExperimentConfig, TrialRunner};

/// The initial-set sizes swept by E8.
#[must_use]
pub fn initial_set_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![40, 100, 400]
    } else {
        vec![40, 100, 400, 1_000, 4_000]
    }
}

/// The majority-bias values swept by E8.
#[must_use]
pub fn bias_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.1, 0.25]
    } else {
        vec![0.05, 0.1, 0.25, 0.4]
    }
}

/// **E8 (Corollary 2.18)** — consensus on the initial majority for varying
/// `|A|` and majority-bias.
///
/// The corollary requires `|A| = Ω(log n / ε²)` and bias `Ω(√(log n / |A|))`;
/// rows below the requirement are included deliberately to show where the
/// guarantee starts to apply.
#[must_use]
pub fn e08_majority_consensus(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(1_000, 4_000);
    let epsilon = 0.3;
    let mut table = Table::new(
        "E8: noisy majority-consensus (Corollary 2.18)",
        &[
            "|A|",
            "majority-bias",
            "required bias sqrt(ln n/|A|)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    let params = Params::practical(n, epsilon).expect("valid parameters");
    let mut point = 800;
    for &size in &initial_set_grid(cfg) {
        if size > n {
            continue;
        }
        for &bias in &bias_grid(cfg) {
            let initial = InitialSet::with_bias(size, bias).expect("valid bias");
            if initial.holding_correct <= initial.holding_wrong {
                continue;
            }
            let protocol = MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial)
                .expect("valid initial set");
            let runner = TrialRunner::new(u64::from(cfg.trials));
            let outcomes = runner.run(|trial| {
                protocol
                    .run_with_seed(cfg.seed_for(point, trial))
                    .expect("simulation construction cannot fail")
            });
            point += 1;
            let mut success = SuccessRate::new();
            let mut fractions = Vec::new();
            for o in &outcomes {
                success.record(o.all_correct);
                fractions.push(o.fraction_correct);
            }
            let required = ((n as f64).ln() / size as f64).sqrt().min(0.5);
            table.push_row(&[
                size.to_string(),
                fmt_float(initial.majority_bias()),
                fmt_float(required),
                fmt_float(mean(&fractions)),
                fmt_float(success.estimate()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_scale_with_mode() {
        assert!(
            initial_set_grid(&ExperimentConfig::full()).len()
                > initial_set_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            bias_grid(&ExperimentConfig::full()).len()
                > bias_grid(&ExperimentConfig::quick()).len()
        );
    }

    #[test]
    fn e08_produces_a_row_per_grid_point_and_large_biased_sets_win() {
        let cfg = ExperimentConfig {
            trials: 2,
            base_seed: 5,
            quick: true,
        };
        let table = e08_majority_consensus(&cfg);
        assert_eq!(
            table.len(),
            initial_set_grid(&cfg).len() * bias_grid(&cfg).len()
        );
        // The easiest configuration (largest set, largest bias) should reach a
        // high fraction of correct agents.
        let last = table.rows().last().unwrap();
        let fraction: f64 = last[3].parse().unwrap();
        assert!(fraction > 0.8, "fraction = {fraction}, row = {last:?}");
    }
}
