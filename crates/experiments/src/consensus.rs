//! E8: noisy majority-consensus success versus initial set size and
//! majority-bias (Corollary 2.18), plus the dense-engine variant E8-D that
//! measures the Stage II boost on populations of `10⁵`–`10⁶` agents.

use analysis::estimators::{mean, SuccessRate};
use analysis::tables::fmt_float;
use analysis::Table;
use breathe::{InitialSet, MajorityConsensusProtocol, Params};
use flip_model::{
    BinarySymmetricChannel, DenseSimulation, MajoritySamplerProtocol, Opinion, SimulationConfig,
};

use crate::ExperimentConfig;

/// The initial-set sizes swept by E8.
#[must_use]
pub fn initial_set_grid(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.quick {
        vec![40, 100, 400]
    } else {
        vec![40, 100, 400, 1_000, 4_000]
    }
}

/// The majority-bias values swept by E8.
#[must_use]
pub fn bias_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.1, 0.25]
    } else {
        vec![0.05, 0.1, 0.25, 0.4]
    }
}

/// **E8 (Corollary 2.18)** — consensus on the initial majority for varying
/// `|A|` and majority-bias.
///
/// The corollary requires `|A| = Ω(log n / ε²)` and bias `Ω(√(log n / |A|))`;
/// rows below the requirement are included deliberately to show where the
/// guarantee starts to apply.
#[must_use]
pub fn e08_majority_consensus(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(1_000, 4_000);
    let epsilon = 0.3;
    let mut table = Table::new(
        "E8: noisy majority-consensus (Corollary 2.18)",
        &[
            "|A|",
            "majority-bias",
            "required bias sqrt(ln n/|A|)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    let params = Params::practical(n, epsilon).expect("valid parameters");
    let mut point = 800;
    for &size in &initial_set_grid(cfg) {
        if size > n {
            continue;
        }
        for &bias in &bias_grid(cfg) {
            let initial = InitialSet::with_bias(size, bias).expect("valid bias");
            if initial.holding_correct <= initial.holding_wrong {
                continue;
            }
            let protocol = MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial)
                .expect("valid initial set");
            let runner = cfg.runner();
            let outcomes = runner.run(|trial| {
                protocol
                    .run_with_seed(cfg.seed_for(point, trial))
                    .expect("simulation construction cannot fail")
            });
            point += 1;
            let mut success = SuccessRate::new();
            let mut fractions = Vec::new();
            for o in &outcomes {
                success.record(o.all_correct);
                fractions.push(o.fraction_correct);
            }
            let required = ((n as f64).ln() / size as f64).sqrt().min(0.5);
            table.push_row(&[
                size.to_string(),
                fmt_float(initial.majority_bias()),
                fmt_float(required),
                fmt_float(mean(&fractions)),
                fmt_float(success.estimate()),
            ]);
        }
    }
    table
}

/// The population sizes swept by the dense majority experiment E8-D.
#[must_use]
pub fn dense_majority_grid(cfg: &ExperimentConfig) -> Vec<u64> {
    if cfg.quick {
        vec![100_000, 1_000_000]
    } else {
        vec![100_000, 1_000_000, 4_000_000]
    }
}

/// The whole-population initial biases swept by E8-D.
#[must_use]
pub fn dense_bias_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.01, 0.05]
    } else {
        vec![0.005, 0.01, 0.05, 0.1]
    }
}

/// **E8-D (Lemma 2.11 / Corollary 2.18, dense form)** — Stage II majority
/// boosting at `n = 10⁵`–`10⁶⁺`.
///
/// Every agent starts opinionated with a small whole-population bias towards
/// the correct opinion and runs `O(log n)` phases of noisy majority sampling
/// ([`MajoritySamplerProtocol`]).  The paper predicts each phase to multiply
/// the bias by `Θ(ε·√samples)` until it saturates, so even a 1% initial edge
/// should end with nearly every agent correct.  Only the dense engine makes
/// this measurable at such `n`; there is deliberately no per-agent fallback.
#[must_use]
pub fn e08_dense_majority(cfg: &ExperimentConfig) -> Table {
    let epsilon = 0.3f64;
    // An odd Θ(1/ε²) phase length, the paper's Stage II sample scale.
    let phase_len = ((2.0 / (epsilon * epsilon)).ceil() as u64) | 1;
    let mut table = Table::new(
        &format!("E8-D: dense majority boost (epsilon = {epsilon}, phase_len = {phase_len})"),
        &[
            "n",
            "initial bias",
            "phases",
            "final fraction correct",
            "majority preserved rate",
        ],
    );
    let mut point = 1_800;
    for &n in &dense_majority_grid(cfg) {
        for &bias in &dense_bias_grid(cfg) {
            let correct = ((0.5 + bias) * n as f64).round() as u64;
            let phases = 2 * (n as f64).log2().ceil() as u64;
            let runner = cfg.runner();
            let outcomes = runner.run(|trial| {
                let sampler = MajoritySamplerProtocol::new(phase_len);
                let population = sampler.population(n - correct, correct);
                let channel = BinarySymmetricChannel::from_epsilon(epsilon).expect("valid epsilon");
                let config = SimulationConfig::new(n as usize)
                    .with_seed(cfg.seed_for(point, trial))
                    .with_reference(Opinion::One);
                let mut sim = DenseSimulation::new(sampler, channel, population, config)
                    .expect("grid parameters are valid");
                sim.run(phases * phase_len);
                sim.census().fraction_correct(Opinion::One)
            });
            point += 1;
            let mut preserved = SuccessRate::new();
            for &f in &outcomes {
                preserved.record(f > 0.5);
            }
            table.push_row(&[
                n.to_string(),
                fmt_float(bias),
                phases.to_string(),
                fmt_float(mean(&outcomes)),
                fmt_float(preserved.estimate()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_scale_with_mode() {
        assert!(
            initial_set_grid(&ExperimentConfig::full()).len()
                > initial_set_grid(&ExperimentConfig::quick()).len()
        );
        assert!(
            bias_grid(&ExperimentConfig::full()).len()
                > bias_grid(&ExperimentConfig::quick()).len()
        );
    }

    #[test]
    fn e08_dense_boosts_small_biases_at_scale() {
        let cfg = ExperimentConfig {
            trials: 1,
            base_seed: 5,
            ..ExperimentConfig::quick()
        };
        let table = e08_dense_majority(&cfg);
        assert_eq!(
            table.len(),
            dense_majority_grid(&cfg).len() * dense_bias_grid(&cfg).len()
        );
        // Even the smallest swept bias should be amplified to a solid
        // majority at every n.
        for row in table.rows() {
            let fraction: f64 = row[3].parse().unwrap();
            assert!(fraction > 0.8, "fraction = {fraction}, row = {row:?}");
        }
    }

    #[test]
    fn e08_produces_a_row_per_grid_point_and_large_biased_sets_win() {
        let cfg = ExperimentConfig {
            trials: 2,
            base_seed: 5,
            ..ExperimentConfig::quick()
        };
        let table = e08_majority_consensus(&cfg);
        assert_eq!(
            table.len(),
            initial_set_grid(&cfg).len() * bias_grid(&cfg).len()
        );
        // The easiest configuration (largest set, largest bias) should reach a
        // high fraction of correct agents.
        let last = table.rows().last().unwrap();
        let fraction: f64 = last[3].parse().unwrap();
        assert!(fraction > 0.8, "fraction = {fraction}, row = {last:?}");
    }
}
