//! Assembling experiment tables into a markdown report.

use analysis::Table;

use crate::{comparisons, consensus, scaling, stage_claims, ExperimentConfig};

/// A named collection of result tables rendered as one markdown document.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    preamble: String,
    tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_string(),
            preamble: String::new(),
            tables: Vec::new(),
        }
    }

    /// Sets free-form text shown between the title and the tables.
    #[must_use]
    pub fn with_preamble(mut self, preamble: &str) -> Self {
        self.preamble = preamble.to_string();
        self
    }

    /// Adds a table to the report.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds several tables to the report.
    pub fn extend<I: IntoIterator<Item = Table>>(&mut self, tables: I) {
        self.tables.extend(tables);
    }

    /// The tables collected so far.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Renders the whole report as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        if !self.preamble.is_empty() {
            out.push_str(&self.preamble);
            out.push_str("\n\n");
        }
        for table in &self.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        out
    }
}

/// Runs every experiment (E1–E12) and assembles the full report.
///
/// With [`ExperimentConfig::quick`] this takes a few minutes on a laptop; the
/// full preset reproduces the numbers recorded in `EXPERIMENTS.md`.
#[must_use]
pub fn full_report(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new("Breathe before Speaking — experiment report").with_preamble(
        "Measured reproductions of every quantitative claim of the paper; see DESIGN.md for the \
         experiment index and EXPERIMENTS.md for the archived paper-vs-measured discussion.",
    );
    report.push(scaling::e01_rounds_vs_n(cfg));
    report.push(scaling::e02_rounds_vs_epsilon(cfg));
    report.push(scaling::e03_message_complexity(cfg));
    report.push(stage_claims::e04_phase0_seeding(cfg));
    report.push(stage_claims::e05_layer_growth(cfg));
    report.push(stage_claims::e06_bias_decay(cfg));
    report.extend(stage_claims::e07_stage2_boost(cfg));
    report.push(consensus::e08_majority_consensus(cfg));
    report.push(scaling::e09_async_overhead(cfg));
    report.push(comparisons::e10_baseline_comparison(cfg));
    report.push(comparisons::e11_path_deterioration(cfg));
    report.push(comparisons::e12_two_party_lower_bound(cfg));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_title_preamble_and_tables() {
        let mut report = Report::new("demo").with_preamble("hello");
        let mut table = Table::new("t1", &["a"]);
        table.push_row(&["1"]);
        report.push(table);
        report.extend(vec![Table::new("t2", &["b"])]);
        assert_eq!(report.tables().len(), 2);
        let md = report.to_markdown();
        assert!(md.starts_with("# demo"));
        assert!(md.contains("hello"));
        assert!(md.contains("### t1"));
        assert!(md.contains("### t2"));
    }
}
