//! Assembling experiment tables into a markdown report.
//!
//! The report's member list, title and preamble live here so the in-memory
//! [`full_report`] and the composed, resumable `full_report` binary (which
//! runs the same members through the `sweeps` store) render byte-identical
//! markdown from the same definitions.

use analysis::Table;

use crate::{specs, ExperimentConfig};

/// The builtin sweeps assembled into the full report, in presentation order:
/// every quantitative claim of the paper, E1–E12.
pub const REPORT_MEMBERS: [&str; 13] = [
    "e01", "e02", "e03", "e04", "e05", "e06", "e07a", "e07b", "e08", "e09", "e10", "e11", "e12",
];

/// The full report's document title.
pub const REPORT_TITLE: &str = "Breathe before Speaking — experiment report";

/// The full report's preamble paragraph.
pub const REPORT_PREAMBLE: &str =
    "Measured reproductions of every quantitative claim of the paper; see DESIGN.md for the \
     experiment index and EXPERIMENTS.md for the archived paper-vs-measured discussion.";

/// A named collection of result tables rendered as one markdown document.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    preamble: String,
    tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_string(),
            preamble: String::new(),
            tables: Vec::new(),
        }
    }

    /// Sets free-form text shown between the title and the tables.
    #[must_use]
    pub fn with_preamble(mut self, preamble: &str) -> Self {
        self.preamble = preamble.to_string();
        self
    }

    /// Adds a table to the report.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds several tables to the report.
    pub fn extend<I: IntoIterator<Item = Table>>(&mut self, tables: I) {
        self.tables.extend(tables);
    }

    /// The tables collected so far.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Renders the whole report as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        if !self.preamble.is_empty() {
            out.push_str(&self.preamble);
            out.push_str("\n\n");
        }
        for table in &self.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        out
    }
}

/// Runs every experiment (E1–E12) in memory and assembles the full report.
///
/// Each member is the registry-backed builtin sweep rendered through
/// [`specs::render`] — the same path the persistent, resumable composed run
/// uses, so both produce identical markdown for the same config.  With
/// [`ExperimentConfig::quick`] this takes a few minutes on a laptop; the
/// full preset reproduces the numbers recorded in `EXPERIMENTS.md`.
#[must_use]
pub fn full_report(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(REPORT_TITLE).with_preamble(REPORT_PREAMBLE);
    for name in REPORT_MEMBERS {
        let spec = specs::builtin(name, cfg).expect("report members are builtin sweeps");
        report.push(specs::render(name, &specs::run_in_memory(&spec, cfg)));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_title_preamble_and_tables() {
        let mut report = Report::new("demo").with_preamble("hello");
        let mut table = Table::new("t1", &["a"]);
        table.push_row(&["1"]);
        report.push(table);
        report.extend(vec![Table::new("t2", &["b"])]);
        assert_eq!(report.tables().len(), 2);
        let md = report.to_markdown();
        assert!(md.starts_with("# demo"));
        assert!(md.contains("hello"));
        assert!(md.contains("### t1"));
        assert!(md.contains("### t2"));
    }

    #[test]
    fn report_members_are_all_builtin() {
        let cfg = ExperimentConfig::quick();
        for name in REPORT_MEMBERS {
            assert!(
                specs::builtin(name, &cfg).is_some(),
                "report member `{name}` is not a builtin sweep"
            );
        }
    }
}
