//! Registry-backed sweep specs for the experiment families.
//!
//! Every experiment family — the scaling sweeps E1/E1-D/E1-H/E2/E3, the
//! per-stage claims E4–E7, the consensus sweeps E8/E8-D, the async/baseline
//! comparisons E9–E12, the ablations A1–A3 and the fault-injection family
//! E13 — is expressed here as a declarative [`SweepSpec`]
//! instead of a hand-rolled loop.  The binaries are thin wrappers: build
//! the spec, run it through the [`sweeps`] orchestrator, render the legacy
//! table from the streamed aggregates.
//!
//! **The migration contract:** for every migrated experiment, the sweep uses
//! the same protocol constructions, the same grid order and the same
//! `(base_seed, point, trial)` seed derivation as the legacy loop — so the
//! rendered table is digit-for-digit identical to the legacy function's
//! (`tests/spec_equivalence.rs` pins this).  The same specs serialized to
//! `specs/*.json` drive the standalone `sweep` binary, which adds
//! persistence, resume and CSV/JSON export on top.

use std::collections::BTreeMap;

use analysis::estimators::SuccessRate;
use analysis::fitting::fit_linear;
use analysis::stirling::{exact_majority_boost, lemma_2_11_lower_bound};
use analysis::tables::fmt_float;
use analysis::theory;
use analysis::Table;
use baselines::chain_correct_probability;
use breathe::{InitialSet, Multipliers, Params, Schedule};
use flip_model::{Backend, DEFAULT_HYBRID_TRACKED};
use sweeps::{
    Axis, CellRecord, MetricAggregate, ProtocolRegistry, ReportSpec, ScenarioSpec, SweepRunner,
    SweepSpec,
};

use crate::{consensus, scaling, ExperimentConfig};

/// A sweep result in grid order: each cell's resolved spec with its record.
pub type CellPairs = Vec<(ScenarioSpec, CellRecord)>;

/// The names accepted by [`builtin`] (and the `sweep gen`/`sweep list`
/// subcommands), in presentation order.
pub const BUILTIN_SWEEPS: [&str; 20] = [
    "e01",
    "e01-dense",
    "e01-hybrid",
    "e02",
    "e03",
    "e04",
    "e05",
    "e06",
    "e07a",
    "e07b",
    "e08",
    "e08-dense",
    "e09",
    "e10",
    "e11",
    "e12",
    "a1",
    "a2",
    "a3",
    "e13",
];

/// The builtin sweeps grouped by experiment family, in presentation order —
/// the structure behind `sweep list`.  Together the groups cover
/// [`BUILTIN_SWEEPS`] exactly (pinned by a test below).
pub const SWEEP_FAMILIES: [(&str, &[&str]); 6] = [
    (
        "scaling (E1-E3)",
        &["e01", "e01-dense", "e01-hybrid", "e02", "e03"],
    ),
    (
        "stage claims (E4-E7)",
        &["e04", "e05", "e06", "e07a", "e07b"],
    ),
    ("consensus (E8)", &["e08", "e08-dense"]),
    ("comparisons (E9-E12)", &["e09", "e10", "e11", "e12"]),
    ("ablations (A1-A3)", &["a1", "a2", "a3"]),
    ("fault injection (E13)", &["e13"]),
];

/// The name of the composed full-report spec accepted by `sweep run` and
/// built by [`report_spec`].
pub const REPORT_SPEC_NAME: &str = "report";

/// The composed full report: every member of
/// [`crate::report::REPORT_MEMBERS`] (E1–E12) as one [`ReportSpec`], run and
/// resumed as a single unit by the `full_report` binary and
/// `sweep run report`.
///
/// # Panics
///
/// Panics if a report member is not a builtin sweep — a bug
/// (`report::tests` pins the membership).
#[must_use]
pub fn report_spec(cfg: &ExperimentConfig) -> ReportSpec {
    let members = crate::report::REPORT_MEMBERS
        .iter()
        .map(|name| builtin(name, cfg).expect("report members are builtin sweeps"))
        .collect();
    ReportSpec::new(REPORT_SPEC_NAME, members).expect("builtin member names are valid and unique")
}

/// Builds the named builtin sweep for the given configuration; `None` for
/// unknown names.
#[must_use]
pub fn builtin(name: &str, cfg: &ExperimentConfig) -> Option<SweepSpec> {
    match name {
        "e01" => Some(e01_sweep(cfg)),
        "e01-dense" => Some(e01_dense_sweep(cfg)),
        "e01-hybrid" => Some(e01_hybrid_sweep(cfg)),
        "e02" => Some(e02_sweep(cfg)),
        "e03" => Some(e03_sweep(cfg)),
        "e04" => Some(e04_sweep(cfg)),
        "e05" => Some(e05_sweep(cfg)),
        "e06" => Some(e06_sweep(cfg)),
        "e07a" => Some(e07a_sweep(cfg)),
        "e07b" => Some(e07b_sweep(cfg)),
        "e08" => Some(e08_sweep(cfg)),
        "e08-dense" => Some(e08_dense_sweep(cfg)),
        "e09" => Some(e09_sweep(cfg)),
        "e10" => Some(e10_sweep(cfg)),
        "e11" => Some(e11_sweep(cfg)),
        "e12" => Some(e12_sweep(cfg)),
        "a1" => Some(a1_sweep(cfg)),
        "a2" => Some(a2_sweep(cfg)),
        "a3" => Some(a3_sweep(cfg)),
        "e13" => Some(e13_sweep(cfg)),
        _ => None,
    }
}

/// The closest builtin name (including the composed [`REPORT_SPEC_NAME`])
/// within a small edit distance of `name` — the "did you mean" suggestion
/// behind the `sweep` CLI's unknown-spec errors.  `None` when nothing is
/// plausibly close, so a garbled path never draws a misleading suggestion.
#[must_use]
pub fn nearest_builtin(name: &str) -> Option<&'static str> {
    let candidates = BUILTIN_SWEEPS.iter().copied().chain([REPORT_SPEC_NAME]);
    candidates
        .map(|candidate| (edit_distance(name, candidate), candidate))
        .filter(|(distance, candidate)| {
            // A prefix of a builtin is always a plausible typo (`e0`, `rep`);
            // otherwise the edit distance must be small relative to the
            // name's length, so `nonexistent.json` suggests nothing.
            (!name.is_empty() && candidate.starts_with(name))
                || *distance <= 2.min(name.len().saturating_sub(1))
        })
        .min_by_key(|(distance, _)| *distance)
        .map(|(_, candidate)| candidate)
}

/// Levenshtein distance, small-string implementation (two rolling rows).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            current[j + 1] = substitute.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// The builtin sweeps that run experiment family `binary` on `backend`'s
/// engine family (most binaries render one table, `e07` renders its a/b
/// pair and `ablations` all three), or `None` when no variant exists there.
///
/// Keyed on [`Backend::as_str`] (the family name), not on enum variants, so
/// adding a backend to [`Backend::ALL`] does not force edits here — a family
/// without a variant simply stays unlisted.
#[must_use]
pub fn variant_for(binary: &str, backend: Backend) -> Option<&'static [&'static str]> {
    let variants: &[(&str, &'static [&'static str])] = match binary {
        "e01" => &[
            ("agents", &["e01"]),
            ("dense", &["e01-dense"]),
            ("hybrid", &["e01-hybrid"]),
        ],
        "e02" => &[("agents", &["e02"])],
        "e03" => &[("agents", &["e03"])],
        "e04" => &[("agents", &["e04"])],
        "e05" => &[("agents", &["e05"])],
        "e06" => &[("agents", &["e06"])],
        "e07" => &[("agents", &["e07a", "e07b"])],
        "e08" => &[("agents", &["e08"]), ("dense", &["e08-dense"])],
        "e09" => &[("agents", &["e09"])],
        "e10" => &[("agents", &["e10"])],
        "e11" => &[("agents", &["e11"])],
        "e12" => &[("agents", &["e12"])],
        "ablations" => &[("agents", &["a1", "a2", "a3"])],
        "e13" => &[("agents", &["e13"])],
        _ => return None,
    };
    variants
        .iter()
        .find(|(family, _)| *family == backend.as_str())
        .map(|(_, names)| *names)
}

/// Renders the named builtin sweep's table from its aggregates.
///
/// # Panics
///
/// Panics on a name with no renderer — a bug in the caller's dispatch.
#[must_use]
pub fn render(name: &str, cells: &CellPairs) -> Table {
    match name {
        "e01" => render_e01(cells),
        "e01-dense" | "e01-hybrid" => render_e01_dense(cells),
        "e02" => render_e02(cells),
        "e03" => render_e03(cells),
        "e04" => render_e04(cells),
        "e05" => render_e05(cells),
        "e06" => render_e06(cells),
        "e07a" => render_e07a(cells),
        "e07b" => render_e07b(cells),
        "e08" => render_e08(cells),
        "e08-dense" => render_e08_dense(cells),
        "e09" => render_e09(cells),
        "e10" => render_e10(cells),
        "e11" => render_e11(cells),
        "e12" => render_e12(cells),
        "a1" => render_a1(cells),
        "a2" => render_a2(cells),
        "a3" => render_a3(cells),
        "e13" => render_e13(cells),
        other => panic!("no renderer for sweep `{other}`"),
    }
}

/// The single backend dispatch point for the experiment binaries: resolves
/// `cfg.backend` to the family's sweep variant, runs it through the registry
/// and renders its table.  This replaces the per-binary
/// `match cfg.backend {...}` blocks, so binaries stay untouched when a
/// backend family gains or loses a variant.
///
/// The sweep keeps `cfg.backend` verbatim (`--backend hybrid:64` runs with
/// 64 tracked agents, not the builtin spec's default).
///
/// # Panics
///
/// Panics, naming `--backend`, when the family has no variant on the
/// configured backend.
#[must_use]
pub fn backend_tables(binary: &str, cfg: &ExperimentConfig) -> Vec<Table> {
    let names = variant_for(binary, cfg.backend).unwrap_or_else(|| {
        let supported: Vec<&str> = Backend::ALL
            .iter()
            .filter(|b| variant_for(binary, **b).is_some())
            .map(|b| b.as_str())
            .collect();
        panic!(
            "`{binary}` has no --backend {} variant; supported: {}",
            cfg.backend,
            supported.join(", ")
        )
    });
    names
        .iter()
        .map(|name| {
            let mut spec = builtin(name, cfg).expect("variant_for only names builtin sweeps");
            spec.backend = cfg.backend;
            render(name, &run_in_memory(&spec, cfg))
        })
        .collect()
}

/// Runs a spec in memory (no store) with the builtin registry, honouring the
/// configuration's `--threads` override, and pairs each cell spec with its
/// record in grid order.
///
/// # Panics
///
/// Panics when the sweep fails — for builtin specs that means a bug, and the
/// experiment binaries have no useful way to continue.
#[must_use]
pub fn run_in_memory(spec: &SweepSpec, cfg: &ExperimentConfig) -> CellPairs {
    let mut runner = SweepRunner::new();
    if let Some(threads) = cfg.threads {
        runner = runner.with_threads(threads);
    }
    let outcome = runner
        .run(spec, &ProtocolRegistry::builtin(), None)
        .unwrap_or_else(|e| panic!("sweep `{}` failed: {e}", spec.name));
    assert!(
        outcome.completed,
        "in-memory sweeps always run the full grid"
    );
    let grid = spec.expand().expect("a spec that ran also expands");
    grid.into_iter().zip(outcome.cells).collect()
}

fn params_map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

/// A metric aggregate or a loud failure naming what is missing.
fn metric<'a>(record: &'a CellRecord, name: &str) -> &'a MetricAggregate {
    record
        .metrics
        .get(name)
        .unwrap_or_else(|| panic!("cell {} has no `{name}` metric", record.point))
}

/// Success-rate estimator from a 0/1 metric (the sum counts the successes).
fn success_rate(record: &CellRecord, name: &str) -> SuccessRate {
    let agg = metric(record, name);
    SuccessRate::from_counts(agg.moments.sum as u64, agg.moments.count)
}

/// An integer-valued metric that is constant across a cell's trials (round
/// counts fixed by the protocol schedule).
fn constant_u64(record: &CellRecord, name: &str) -> u64 {
    let agg = metric(record, name);
    agg.moments.min as u64
}

/// The `--faults` directive as a sweep-spec string: empty when the
/// configuration carries no directive, so fault-free specs (and their
/// hashes) are byte-identical to the pre-fault era.
fn faults_directive(cfg: &ExperimentConfig) -> String {
    cfg.faults.map(|f| f.to_string()).unwrap_or_default()
}

/// The protocol [`Params`] a cell resolves to — the renderer-side mirror of
/// the registry's construction, so renderers can quote schedule-derived
/// quantities (`beta_s`, `gamma`, round budgets) the metrics do not carry.
fn spec_params(spec: &ScenarioSpec) -> Params {
    let practical = Multipliers::practical();
    let multipliers = Multipliers {
        s_mult: spec.param_or("s_mult", practical.s_mult),
        beta_mult: spec.param_or("beta_mult", practical.beta_mult),
        f_mult: spec.param_or("f_mult", practical.f_mult),
        gamma_mult: spec.param_or("gamma_mult", practical.gamma_mult),
        extra_boost_phases: spec.param_or("extra_boost_phases", practical.extra_boost_phases as f64)
            as usize,
        final_mult: spec.param_or("final_mult", practical.final_mult),
    };
    Params::with_multipliers(
        usize::try_from(spec.n()).expect("n fits in usize"),
        spec.epsilon(),
        multipliers,
    )
    .expect("grid parameters are valid")
}

// ---------------------------------------------------------------------------
// E1: broadcast rounds vs n (Theorem 2.17)
// ---------------------------------------------------------------------------

/// The migrated E1 sweep: `broadcast` over [`scaling::population_grid`] at
/// `ε = 0.2`, seed points `0, 1, …` — the legacy loop's numbering.
#[must_use]
pub fn e01_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e01".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 0,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.2)]),
        axes: vec![Axis {
            key: "n".into(),
            values: scaling::population_grid(cfg)
                .into_iter()
                .map(|n| n as f64)
                .collect(),
        }],
    }
}

/// Runs the migrated E1 sweep and renders the legacy table (digit-identical
/// to the retired `scaling::e01_rounds_vs_n`).
#[must_use]
pub fn e01_table(cfg: &ExperimentConfig) -> Table {
    render_e01(&run_in_memory(&e01_sweep(cfg), cfg))
}

/// Renders E1 from sweep aggregates (also used on persisted stores).
#[must_use]
pub fn render_e01(cells: &CellPairs) -> Table {
    let epsilon = 0.2;
    let mut table = Table::new(
        "E1: broadcast rounds vs n (epsilon = 0.2, Theorem 2.17)",
        &[
            "n",
            "rounds",
            "rounds / (ln n / eps^2)",
            "mean fraction correct",
            "all-correct rate",
            "wilson 95% low",
        ],
    );
    let mut ln_ns = Vec::new();
    let mut rounds_list = Vec::new();
    for (spec, record) in cells {
        let n = spec.n();
        let rounds = constant_u64(record, "total_rounds");
        let success = success_rate(record, "all_correct");
        let scale = (n as f64).ln() / (epsilon * epsilon);
        ln_ns.push((n as f64).ln());
        rounds_list.push(rounds as f64);
        table.push_row(&[
            n.to_string(),
            rounds.to_string(),
            fmt_float(rounds as f64 / scale),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success.estimate()),
            fmt_float(success.wilson_interval(1.96).0),
        ]);
    }
    if let Some(fit) = fit_linear(&ln_ns, &rounds_list) {
        table.push_row(&[
            "fit: rounds ~ a*ln n + b".to_string(),
            format!("a = {}", fmt_float(fit.slope)),
            format!("b = {}", fmt_float(fit.intercept)),
            format!("R^2 = {}", fmt_float(fit.r_squared)),
            String::new(),
            String::new(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E1-D: dense-engine rumor spreading at large n
// ---------------------------------------------------------------------------

/// The migrated E1-D sweep: dense `rumor` over
/// [`scaling::dense_population_grid`], 1000 informed agents, `ε = 0.2`,
/// capped at 500 rounds, seed points `1300, 1301, …`.
#[must_use]
pub fn e01_dense_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e01-dense".into(),
        protocol: "rumor".into(),
        backend: Backend::Dense,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 1_300,
        rounds: 500,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.2), ("informed", 1_000.0)]),
        axes: vec![Axis {
            key: "n".into(),
            values: scaling::dense_population_grid(cfg)
                .into_iter()
                .map(|n| n as f64)
                .collect(),
        }],
    }
}

/// The E1-H sweep: the same grid as [`e01_dense_sweep`] on the hybrid
/// backend — `DEFAULT_HYBRID_TRACKED` agents simulated exactly against the
/// dense bulk.  Seed points `2600, 2601, …` keep it disjoint from every
/// other sweep's numbering.
#[must_use]
pub fn e01_hybrid_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e01-hybrid".into(),
        backend: Backend::Hybrid(DEFAULT_HYBRID_TRACKED),
        point_base: 2_600,
        ..e01_dense_sweep(cfg)
    }
}

/// Runs the migrated E1-D sweep and renders the legacy table
/// (digit-identical to the retired `scaling::e01_dense_scaling` on the dense backend).
#[must_use]
pub fn e01_dense_table(cfg: &ExperimentConfig) -> Table {
    render_e01_dense(&run_in_memory(&e01_dense_sweep(cfg), cfg))
}

/// Renders E1-D from sweep aggregates.  The title reports the backend the
/// cells actually ran on (`dense` or `hybrid:k`).
#[must_use]
pub fn render_e01_dense(cells: &CellPairs) -> Table {
    let backend = cells.first().map_or_else(
        || Backend::Dense.to_string(),
        |(s, _)| s.backend.to_string(),
    );
    let mut table = Table::new(
        &format!("E1-D: rumor spreading at large n (backend = {backend}, epsilon = 0.2)"),
        &[
            "n",
            "mean rounds to full activation",
            "rounds / ln n",
            "mean fraction holding source bit",
            "mean messages sent",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let rounds = metric(record, "rounds").moments.mean();
        table.push_row(&[
            n.to_string(),
            fmt_float(rounds),
            fmt_float(rounds / (n as f64).ln()),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(metric(record, "messages_sent").moments.mean()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E2: broadcast rounds vs epsilon (Theorem 2.17)
// ---------------------------------------------------------------------------

/// The migrated E2 sweep: `broadcast` over [`scaling::epsilon_grid`] at
/// `n = pick(1000, 2000)`, seed points `100, 101, …` — the legacy loop's
/// numbering.
#[must_use]
pub fn e02_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(1_000, 2_000);
    SweepSpec {
        name: "e02".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 100,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64)]),
        axes: vec![Axis {
            key: "epsilon".into(),
            values: scaling::epsilon_grid(cfg),
        }],
    }
}

/// Runs the migrated E2 sweep and renders the legacy table (digit-identical
/// to the retired `scaling::e02_rounds_vs_epsilon`).
#[must_use]
pub fn e02_table(cfg: &ExperimentConfig) -> Table {
    render_e02(&run_in_memory(&e02_sweep(cfg), cfg))
}

/// Renders E2 from sweep aggregates.
#[must_use]
pub fn render_e02(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E2: broadcast rounds vs epsilon (Theorem 2.17)",
        &[
            "epsilon",
            "rounds",
            "rounds * eps^2",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let rounds = constant_u64(record, "total_rounds");
        table.push_row(&[
            fmt_float(epsilon),
            rounds.to_string(),
            fmt_float(rounds as f64 * epsilon * epsilon),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E3: message complexity (Theorem 2.17)
// ---------------------------------------------------------------------------

/// The migrated E3 sweep: `broadcast` over
/// [`scaling::e03_population_grid`] × [`scaling::E03_EPSILONS`] (row-major,
/// `n` outer — the legacy nesting), seed points `200, 201, …`.
#[must_use]
pub fn e03_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e03".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 200,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: BTreeMap::new(),
        axes: vec![
            Axis {
                key: "n".into(),
                values: scaling::e03_population_grid(cfg)
                    .into_iter()
                    .map(|n| n as f64)
                    .collect(),
            },
            Axis {
                key: "epsilon".into(),
                values: scaling::E03_EPSILONS.to_vec(),
            },
        ],
    }
}

/// Runs the migrated E3 sweep and renders the legacy table (digit-identical
/// to the retired `scaling::e03_message_complexity`).
#[must_use]
pub fn e03_table(cfg: &ExperimentConfig) -> Table {
    render_e03(&run_in_memory(&e03_sweep(cfg), cfg))
}

/// Renders E3 from sweep aggregates.
#[must_use]
pub fn render_e03(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E3: message complexity (Theorem 2.17)",
        &[
            "n",
            "epsilon",
            "mean messages",
            "messages / (n ln n / eps^2)",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let epsilon = spec.epsilon();
        let msgs = metric(record, "messages_sent").moments.mean();
        let scale = n as f64 * (n as f64).ln() / (epsilon * epsilon);
        table.push_row(&[
            n.to_string(),
            fmt_float(epsilon),
            fmt_float(msgs),
            fmt_float(msgs / scale),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E4: phase-0 activation and bias (Claim 2.2)
// ---------------------------------------------------------------------------

/// The channel crossover levels E4 sweeps (the legacy loop's literal list).
pub const E04_EPSILONS: [f64; 3] = [0.15, 0.2, 0.3];

/// The migrated E4 sweep: `broadcast-detailed` over [`E04_EPSILONS`] at
/// `n = pick(1000, 4000)`, seed points `400, 401, …`.
#[must_use]
pub fn e04_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(1_000, 4_000);
    SweepSpec {
        name: "e04".into(),
        protocol: "broadcast-detailed".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 400,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64)]),
        axes: vec![Axis {
            key: "epsilon".into(),
            values: E04_EPSILONS.to_vec(),
        }],
    }
}

/// Runs the migrated E4 sweep and renders the legacy table (digit-identical
/// to the retired `stage_claims::e04_phase0_seeding`).
#[must_use]
pub fn e04_table(cfg: &ExperimentConfig) -> Table {
    render_e04(&run_in_memory(&e04_sweep(cfg), cfg))
}

/// Renders E4 from sweep aggregates.
#[must_use]
pub fn render_e04(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E4: phase-0 activation and bias (Claim 2.2)",
        &[
            "epsilon",
            "beta_s",
            "mean X0",
            "bound [beta_s/3, beta_s]",
            "mean bias eps_0",
            "claimed bias >= eps/2",
            "claim holds (rate)",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let params = spec_params(spec);
        let (lo, hi, min_bias) = theory::claim_2_2_bounds(params.beta_s(), epsilon);
        table.push_row(&[
            fmt_float(epsilon),
            params.beta_s().to_string(),
            fmt_float(metric(record, "x0").moments.mean()),
            format!("[{}, {}]", fmt_float(lo), fmt_float(hi)),
            fmt_float(metric(record, "bias0").moments.mean()),
            fmt_float(min_bias),
            fmt_float(success_rate(record, "claim22_holds").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E5/E6: Stage I layer growth and bias decay under layered parameters
// ---------------------------------------------------------------------------

/// The layered-multiplier defaults E5 and E6 run under: shrunken `s` and `β`
/// (structure intact) so that several intermediate Stage I phases exist at
/// laptop scale — the retired `stage_claims::layered_params`, as spec params.
fn layered_defaults(n: usize, epsilon: f64) -> BTreeMap<String, f64> {
    params_map(&[
        ("n", n as f64),
        ("epsilon", epsilon),
        ("s_mult", 0.6),
        ("beta_mult", 1.2),
        ("f_mult", 2.0),
        ("gamma_mult", 6.0),
        ("extra_boost_phases", 3.0),
        ("final_mult", 3.0),
    ])
}

/// The migrated E5 sweep: a single `broadcast-detailed` cell at
/// `n = pick(8000, 20000)`, `ε = 0.45`, layered multipliers, seed point 500.
#[must_use]
pub fn e05_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e05".into(),
        protocol: "broadcast-detailed".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 500,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: layered_defaults(cfg.pick(8_000, 20_000), 0.45),
        axes: vec![],
    }
}

/// Runs the migrated E5 sweep and renders the legacy table (digit-identical
/// to the retired `stage_claims::e05_layer_growth`).
#[must_use]
pub fn e05_table(cfg: &ExperimentConfig) -> Table {
    render_e05(&run_in_memory(&e05_sweep(cfg), cfg))
}

/// Renders E5 from sweep aggregates: one row per intermediate Stage I level
/// (walked by metric presence — the registry records `level_cum_{i}` for
/// every level but the last), then the all-activated summary row.
#[must_use]
pub fn render_e05(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E5: Stage I layer growth (Claim 2.4)",
        &[
            "level i",
            "mean X_i (cumulative activated)",
            "lower bound (beta+1)^i X0 / 16",
            "upper bound (beta+1)^i X0",
            "within bounds (rate)",
        ],
    );
    for (spec, record) in cells {
        let params = spec_params(spec);
        let beta = params.beta();
        // The legacy display bounds: the trial-mean X0 (source included),
        // rounded, pushed through Claim 2.4.
        let x0_display = metric(record, "x0p1").moments.mean().round() as u64;
        let mut level = 0usize;
        while let Some(cum) = record.metrics.get(&format!("level_cum_{level}")) {
            let (lo, hi) = theory::claim_2_4_bounds(beta, x0_display, level as u32);
            table.push_row(&[
                level.to_string(),
                fmt_float(cum.moments.mean()),
                fmt_float(lo),
                fmt_float(hi),
                fmt_float(success_rate(record, &format!("claim24_holds_{level}")).estimate()),
            ]);
            level += 1;
        }
        // Final row: everyone activated at the end of Stage I (Corollary 2.6).
        table.push_row(&[
            "end of Stage I".to_string(),
            format!("all {} agents activated", params.n()),
            String::new(),
            String::new(),
            fmt_float(success_rate(record, "all_active").estimate()),
        ]);
    }
    table
}

/// The migrated E6 sweep: a single `broadcast-detailed` cell at
/// `n = pick(4000, 10000)`, `ε = 0.45`, layered multipliers, seed point 600.
#[must_use]
pub fn e06_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e06".into(),
        protocol: "broadcast-detailed".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 600,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: layered_defaults(cfg.pick(4_000, 10_000), 0.45),
        axes: vec![],
    }
}

/// Runs the migrated E6 sweep and renders the legacy table (digit-identical
/// to the retired `stage_claims::e06_bias_decay`).
#[must_use]
pub fn e06_table(cfg: &ExperimentConfig) -> Table {
    render_e06(&run_in_memory(&e06_sweep(cfg), cfg))
}

/// Renders E6 from sweep aggregates.  A level whose bias metric is absent
/// (no trial ever activated it) is skipped — the legacy loop's
/// `biases.is_empty()` continue; the per-level statistics aggregate only
/// the trials that activated the level, exactly as the legacy per-trial skip
/// did.
#[must_use]
pub fn render_e06(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E6: per-level bias decay (Claim 2.8) and end-of-Stage-I bias (Lemma 2.3)",
        &[
            "level i",
            "mean bias eps_i",
            "claimed lower bound eps^{i+1}/2",
            "bound holds (rate)",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let levels = constant_u64(record, "levels") as usize;
        for level in 0..levels {
            let Some(bias) = record.metrics.get(&format!("level_bias_{level}")) else {
                continue;
            };
            table.push_row(&[
                level.to_string(),
                fmt_float(bias.moments.mean()),
                fmt_float(theory::claim_2_8_bias_lower_bound(epsilon, level as u32)),
                fmt_float(success_rate(record, &format!("claim28_holds_{level}")).estimate()),
            ]);
        }
        // End-of-Stage-I population bias vs the Lemma 2.3 scale.
        let n = usize::try_from(spec.n()).expect("n fits in usize");
        table.push_row(&[
            "end of Stage I".to_string(),
            fmt_float(metric(record, "stage1_bias").moments.mean()),
            format!(
                "scale sqrt(ln n / n) = {}",
                fmt_float(theory::stage1_final_bias(n, 1.0))
            ),
            fmt_float(metric(record, "stage1_bias_positive").moments.mean()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E7a/E7b: the Stage II boost (Lemmas 2.11 and 2.14)
// ---------------------------------------------------------------------------

/// The population biases E7a sweeps (the legacy loop's literal list).
pub const E07_DELTAS: [f64; 6] = [0.005, 0.01, 0.02, 0.05, 0.1, 0.25];

/// The migrated E7a sweep: `mc-boost` over [`E07_DELTAS`] at
/// `n = pick(1000, 2000)`, `ε = 0.2`, seed points `700, 701, …`.  One cell
/// trial runs the whole `mc_trials`-sample Monte-Carlo estimate (the legacy
/// loop's single pass), so `trials` is 1.
#[must_use]
pub fn e07a_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e07a".into(),
        protocol: "mc-boost".into(),
        backend: Backend::Agents,
        trials: 1,
        base_seed: cfg.base_seed,
        point_base: 700,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[
            ("n", cfg.pick(1_000, 2_000) as f64),
            ("epsilon", 0.2),
            ("mc_trials", f64::from(cfg.pick(4_000u32, 20_000u32))),
        ]),
        axes: vec![Axis {
            key: "delta".into(),
            values: E07_DELTAS.to_vec(),
        }],
    }
}

/// Runs the migrated E7a sweep and renders the legacy table (digit-identical
/// to the first table of the retired `stage_claims::e07_stage2_boost`).
#[must_use]
pub fn e07a_table(cfg: &ExperimentConfig) -> Table {
    render_e07a(&run_in_memory(&e07a_sweep(cfg), cfg))
}

/// Renders E7a from sweep aggregates.
#[must_use]
pub fn render_e07a(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E7a: majority-of-noisy-samples boost (Lemma 2.11)",
        &[
            "population bias delta",
            "gamma (samples)",
            "measured Pr[majority correct]",
            "exact (binomial)",
            "paper bound min{1/2+4d, 1/2+1/100}",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let delta = spec.param_or("delta", 0.0);
        let gamma = spec_params(spec).gamma();
        table.push_row(&[
            fmt_float(delta),
            gamma.to_string(),
            fmt_float(metric(record, "measured").moments.mean()),
            fmt_float(exact_majority_boost(gamma, epsilon, delta)),
            fmt_float(lemma_2_11_lower_bound(delta)),
        ]);
    }
    table
}

/// The migrated E7b sweep: a single `broadcast-detailed` cell at
/// `n = pick(1000, 2000)`, `ε = 0.2`, seed point 710.
#[must_use]
pub fn e07b_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e07b".into(),
        protocol: "broadcast-detailed".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 710,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", cfg.pick(1_000, 2_000) as f64), ("epsilon", 0.2)]),
        axes: vec![],
    }
}

/// Runs the migrated E7b sweep and renders the legacy table (digit-identical
/// to the second table of the retired `stage_claims::e07_stage2_boost`).
#[must_use]
pub fn e07b_table(cfg: &ExperimentConfig) -> Table {
    render_e07b(&run_in_memory(&e07b_sweep(cfg), cfg))
}

/// Renders E7b from sweep aggregates: the bias trajectory from the last
/// spreading phase through every boosting phase, with the per-phase growth
/// factor chained off the displayed means.
#[must_use]
pub fn render_e07b(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E7b: bias trajectory over Stage II phases (Lemma 2.14)",
        &[
            "boosting phase",
            "mean fraction correct",
            "mean bias",
            "growth factor vs previous phase",
        ],
    );
    for (spec, record) in cells {
        let params = spec_params(spec);
        let spreading_count = Schedule::broadcast(&params).spreading_phase_count();
        let mut phases = 0usize;
        while record.metrics.contains_key(&format!("phase_frac_{phases}")) {
            phases += 1;
        }
        let mut previous_bias: Option<f64> = None;
        for phase in (spreading_count - 1)..phases {
            let frac = metric(record, &format!("phase_frac_{phase}"))
                .moments
                .mean();
            let bias = frac - 0.5;
            let label = if phase == spreading_count - 1 {
                "end of Stage I".to_string()
            } else {
                format!("{}", phase - spreading_count + 1)
            };
            let growth = previous_bias
                .filter(|p| *p > 0.0)
                .map(|p| fmt_float(bias / p))
                .unwrap_or_default();
            table.push_row(&[label, fmt_float(frac), fmt_float(bias), growth]);
            previous_bias = Some(bias);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E8: noisy majority-consensus (Corollary 2.18)
// ---------------------------------------------------------------------------

/// The migrated E8 sweep: `majority-consensus` over
/// [`consensus::initial_set_grid`] × [`consensus::bias_grid`] at
/// `n = pick(1000, 4000)`, `ε = 0.3`, seed points `800, 801, …`.
///
/// # Panics
///
/// Panics if a grid combination would have been skipped by the legacy loop
/// (set larger than `n`, or a bias that rounds to a tie) — the declarative
/// grid is a plain cross product, so a skip would silently shift every
/// later seed point off the legacy numbering.
#[must_use]
pub fn e08_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(1_000, 4_000);
    let sizes = consensus::initial_set_grid(cfg);
    let biases = consensus::bias_grid(cfg);
    for &size in &sizes {
        assert!(size <= n, "E8 grid set size {size} exceeds n = {n}");
        for &bias in &biases {
            let initial = InitialSet::with_bias(size, bias).expect("valid bias");
            assert!(
                initial.holding_correct > initial.holding_wrong,
                "E8 grid point (|A| = {size}, bias = {bias}) rounds to a tie"
            );
        }
    }
    SweepSpec {
        name: "e08".into(),
        protocol: "majority-consensus".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 800,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64), ("epsilon", 0.3)]),
        axes: vec![
            Axis {
                key: "initial_size".into(),
                values: sizes.into_iter().map(|s| s as f64).collect(),
            },
            Axis {
                key: "initial_bias".into(),
                values: biases,
            },
        ],
    }
}

/// Runs the migrated E8 sweep and renders the legacy table (digit-identical
/// to the retired `consensus::e08_majority_consensus`).
#[must_use]
pub fn e08_table(cfg: &ExperimentConfig) -> Table {
    render_e08(&run_in_memory(&e08_sweep(cfg), cfg))
}

/// Renders E8 from sweep aggregates.
#[must_use]
pub fn render_e08(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E8: noisy majority-consensus (Corollary 2.18)",
        &[
            "|A|",
            "majority-bias",
            "required bias sqrt(ln n/|A|)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let size = spec.param_or("initial_size", 0.0) as usize;
        let bias = spec.param_or("initial_bias", 0.0);
        let initial = InitialSet::with_bias(size, bias).expect("grid bias is valid");
        let required = ((n as f64).ln() / size as f64).sqrt().min(0.5);
        table.push_row(&[
            size.to_string(),
            fmt_float(initial.majority_bias()),
            fmt_float(required),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E8-D: dense majority boost
// ---------------------------------------------------------------------------

/// The migrated E8-D sweep: dense `majority-sampler` over
/// [`consensus::dense_majority_grid`] × [`consensus::dense_bias_grid`] at
/// `ε = 0.3`, seed points `1800, 1801, …`.
#[must_use]
pub fn e08_dense_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e08-dense".into(),
        protocol: "majority-sampler".into(),
        backend: Backend::Dense,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 1_800,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.3)]),
        axes: vec![
            Axis {
                key: "n".into(),
                values: consensus::dense_majority_grid(cfg)
                    .into_iter()
                    .map(|n| n as f64)
                    .collect(),
            },
            Axis {
                key: "initial_bias".into(),
                values: consensus::dense_bias_grid(cfg),
            },
        ],
    }
}

/// Runs the migrated E8-D sweep and renders the legacy table
/// (digit-identical to the retired `consensus::e08_dense_majority`).
#[must_use]
pub fn e08_dense_table(cfg: &ExperimentConfig) -> Table {
    render_e08_dense(&run_in_memory(&e08_dense_sweep(cfg), cfg))
}

/// Renders E8-D from sweep aggregates.
#[must_use]
pub fn render_e08_dense(cells: &CellPairs) -> Table {
    let epsilon = 0.3f64;
    let phase_len = ((2.0 / (epsilon * epsilon)).ceil() as u64) | 1;
    let mut table = Table::new(
        &format!("E8-D: dense majority boost (epsilon = {epsilon}, phase_len = {phase_len})"),
        &[
            "n",
            "initial bias",
            "phases",
            "final fraction correct",
            "majority preserved rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let phases = 2 * (n as f64).log2().ceil() as u64;
        table.push_row(&[
            n.to_string(),
            fmt_float(spec.param_or("initial_bias", 0.0)),
            phases.to_string(),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "majority_preserved").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E9: removing the global clock (Theorem 3.1)
// ---------------------------------------------------------------------------

/// The migrated E9 sweep: `async-broadcast` over
/// [`scaling::e09_population_grid`] × the two async variants (`0` = bounded
/// offsets, `1` = resynchronised) at `ε = 0.3`, seed points `900, 901, …` —
/// the legacy `point += 1` walk with `n` outer.
#[must_use]
pub fn e09_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e09".into(),
        protocol: "async-broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 900,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.3)]),
        axes: vec![
            Axis {
                key: "n".into(),
                values: scaling::e09_population_grid(cfg)
                    .into_iter()
                    .map(|n| n as f64)
                    .collect(),
            },
            Axis {
                key: "variant".into(),
                values: vec![0.0, 1.0],
            },
        ],
    }
}

/// Runs the migrated E9 sweep and renders the legacy table (digit-identical
/// to the retired `scaling::e09_async_overhead`).
#[must_use]
pub fn e09_table(cfg: &ExperimentConfig) -> Table {
    render_e09(&run_in_memory(&e09_sweep(cfg), cfg))
}

/// Renders E9 from sweep aggregates.  The round counts quote trial 0 (the
/// legacy display choice); the registry records them on trial 0 alone.
#[must_use]
pub fn render_e09(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E9: removing the global clock (Theorem 3.1)",
        &[
            "n",
            "variant",
            "sync rounds",
            "total rounds",
            "overhead rounds",
            "ln^2 n",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let name = if spec.param_or("variant", 0.0) == 0.0 {
            "bounded offsets"
        } else {
            "resynchronised"
        };
        let ln_n = (n as f64).ln();
        table.push_row(&[
            n.to_string(),
            name.to_string(),
            constant_u64(record, "sync_rounds").to_string(),
            constant_u64(record, "total_rounds").to_string(),
            constant_u64(record, "overhead_rounds").to_string(),
            fmt_float(ln_n * ln_n),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E10: protocol comparison on the broadcast problem
// ---------------------------------------------------------------------------

/// The channel crossover levels E10 sweeps (the legacy loop's literal list).
pub const E10_EPSILONS: [f64; 2] = [0.1, 0.2];

/// The baseline display names, indexed by the `baseline` axis value — the
/// legacy loop's protocol order.
pub const E10_BASELINE_NAMES: [&str; 6] = [
    "breathe (this paper)",
    "immediate forwarding",
    "wait for source",
    "two-choices majority [22]",
    "three-state majority [6]",
    "noisy voter with zealot [49]",
];

/// The migrated E10 sweep: `baseline-compare` over [`E10_EPSILONS`] × the
/// six baselines at `n = pick(600, 2000)`, seed points `1000, 1001, …` —
/// the legacy `point += 1` walk with `ε` outer.
#[must_use]
pub fn e10_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e10".into(),
        protocol: "baseline-compare".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 1_000,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", cfg.pick(600, 2_000) as f64)]),
        axes: vec![
            Axis {
                key: "epsilon".into(),
                values: E10_EPSILONS.to_vec(),
            },
            Axis {
                key: "baseline".into(),
                values: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            },
        ],
    }
}

/// Runs the migrated E10 sweep and renders the legacy table (digit-identical
/// to the retired `comparisons::e10_baseline_comparison`).
#[must_use]
pub fn e10_table(cfg: &ExperimentConfig) -> Table {
    render_e10(&run_in_memory(&e10_sweep(cfg), cfg))
}

/// Renders E10 from sweep aggregates.
#[must_use]
pub fn render_e10(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E10: protocol comparison on the broadcast problem",
        &[
            "epsilon",
            "protocol",
            "rounds",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let idx = spec.param_or("baseline", 0.0) as usize;
        let budget = spec_params(spec).total_rounds();
        table.push_row(&[
            fmt_float(spec.epsilon()),
            E10_BASELINE_NAMES[idx].to_string(),
            budget.to_string(),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E11: per-hop reliability decay (§1.6)
// ---------------------------------------------------------------------------

/// The channel crossover levels E11 sweeps (the legacy loop's literal list).
pub const E11_EPSILONS: [f64; 2] = [0.1, 0.3];

/// The chain lengths E11 sweeps (the legacy loop's literal list).
pub const E11_HOPS: [f64; 6] = [1.0, 2.0, 3.0, 5.0, 8.0, 12.0];

/// The migrated E11 sweep: `chain-relay` over [`E11_EPSILONS`] ×
/// [`E11_HOPS`], seed points `1100, 1101, …`.  One cell trial runs the whole
/// `samples`-draw chain estimate (the legacy loop's single call), so
/// `trials` is 1; the runner derives its seed from `hops` alone, matching
/// the legacy ε-independent seeding.
#[must_use]
pub fn e11_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e11".into(),
        protocol: "chain-relay".into(),
        backend: Backend::Agents,
        trials: 1,
        base_seed: cfg.base_seed,
        point_base: 1_100,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[
            ("n", 1.0),
            ("samples", f64::from(cfg.pick(20_000u32, 100_000u32))),
        ]),
        axes: vec![
            Axis {
                key: "epsilon".into(),
                values: E11_EPSILONS.to_vec(),
            },
            Axis {
                key: "hops".into(),
                values: E11_HOPS.to_vec(),
            },
        ],
    }
}

/// Runs the migrated E11 sweep and renders the legacy table (digit-identical
/// to the retired `comparisons::e11_path_deterioration`).
#[must_use]
pub fn e11_table(cfg: &ExperimentConfig) -> Table {
    render_e11(&run_in_memory(&e11_sweep(cfg), cfg))
}

/// Renders E11 from sweep aggregates.
#[must_use]
pub fn render_e11(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E11: per-hop reliability decay (section 1.6)",
        &[
            "epsilon",
            "hops",
            "measured Pr[correct]",
            "closed form 1/2 + (2eps)^c / 2",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let hops = spec.param_or("hops", 0.0) as u32;
        table.push_row(&[
            fmt_float(epsilon),
            hops.to_string(),
            fmt_float(metric(record, "measured").moments.mean()),
            fmt_float(chain_correct_probability(epsilon, hops)),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E12: the two-party Θ(1/ε²) lower bound (§1.4)
// ---------------------------------------------------------------------------

/// The channel crossover levels E12 sweeps — the legacy mode-dependent grid.
#[must_use]
pub fn e12_epsilon_grid(cfg: &ExperimentConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.1, 0.2, 0.3, 0.4]
    } else {
        vec![0.05, 0.1, 0.15, 0.2, 0.3, 0.4]
    }
}

/// The migrated E12 sweep: `two-party-samples` over [`e12_epsilon_grid`] at
/// 99% confidence, seed points `1200, 1201, …`.  The search is deterministic
/// (no RNG), so `trials` is 1.
#[must_use]
pub fn e12_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e12".into(),
        protocol: "two-party-samples".into(),
        backend: Backend::Agents,
        trials: 1,
        base_seed: cfg.base_seed,
        point_base: 1_200,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", 1.0), ("confidence", 0.99)]),
        axes: vec![Axis {
            key: "epsilon".into(),
            values: e12_epsilon_grid(cfg),
        }],
    }
}

/// Runs the migrated E12 sweep and renders the legacy table (digit-identical
/// to the retired `comparisons::e12_two_party_lower_bound`).
#[must_use]
pub fn e12_table(cfg: &ExperimentConfig) -> Table {
    render_e12(&run_in_memory(&e12_sweep(cfg), cfg))
}

/// Renders E12 from sweep aggregates.
#[must_use]
pub fn render_e12(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E12: two-party channel uses for one reliable bit (section 1.4)",
        &[
            "epsilon",
            "samples needed (exact majority decoder)",
            "samples * eps^2",
            "Shannon-style prediction ln(1/0.01)/(2 eps^2)",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let confidence = spec.param_or("confidence", 0.99);
        let needed = constant_u64(record, "samples");
        table.push_row(&[
            fmt_float(epsilon),
            needed.to_string(),
            fmt_float(needed as f64 * epsilon * epsilon),
            fmt_float(theory::two_party_samples(epsilon, 1.0 - confidence)),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// A1: required initial bias ablation
// ---------------------------------------------------------------------------

/// The initial biases A1 sweeps (the legacy loop's literal list).
pub const A1_BIASES: [f64; 5] = [0.002, 0.01, 0.03, 0.08, 0.2];

/// The migrated A1 sweep: `majority-consensus` with the whole population as
/// the initial set (the registry's `initial_size` default) over [`A1_BIASES`]
/// at `n = pick(1000, 2000)`, `ε = 0.25`, seed points `2000, 2001, …`.
#[must_use]
pub fn a1_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "a1".into(),
        protocol: "majority-consensus".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 2_000,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", cfg.pick(1_000, 2_000) as f64), ("epsilon", 0.25)]),
        axes: vec![Axis {
            key: "initial_bias".into(),
            values: A1_BIASES.to_vec(),
        }],
    }
}

/// Runs the migrated A1 sweep and renders the legacy table (digit-identical
/// to the retired `ablations::a1_required_initial_bias`).
#[must_use]
pub fn a1_table(cfg: &ExperimentConfig) -> Table {
    render_a1(&run_in_memory(&a1_sweep(cfg), cfg))
}

/// Renders A1 from sweep aggregates.
#[must_use]
pub fn render_a1(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "A1: consensus vs the bias handed to the boosting stage",
        &[
            "initial bias",
            "threshold sqrt(ln n / n)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let threshold = ((n as f64).ln() / n as f64).sqrt();
        table.push_row(&[
            fmt_float(spec.param_or("initial_bias", 0.0)),
            fmt_float(threshold),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// A2: Stage II sample-count ablation
// ---------------------------------------------------------------------------

/// The γ multipliers A2 sweeps (the legacy loop's literal list).
pub const A2_GAMMA_MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 6.0];

/// The migrated A2 sweep: `broadcast` with a swept `gamma_mult` at
/// `n = pick(600, 1500)`, `ε = 0.2`, seed points `2100, 2101, …`.
#[must_use]
pub fn a2_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(600, 1_500);
    SweepSpec {
        name: "a2".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 2_100,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64), ("epsilon", 0.2)]),
        axes: vec![Axis {
            key: "gamma_mult".into(),
            values: A2_GAMMA_MULTIPLIERS.to_vec(),
        }],
    }
}

/// Runs the migrated A2 sweep and renders the legacy table (digit-identical
/// to the retired `ablations::a2_gamma_requirement`).
#[must_use]
pub fn a2_table(cfg: &ExperimentConfig) -> Table {
    render_a2(&run_in_memory(&a2_sweep(cfg), cfg))
}

/// Renders A2 from sweep aggregates.
#[must_use]
pub fn render_a2(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "A2: consensus vs the Stage II sample multiplier (gamma = mult / eps^2)",
        &[
            "gamma multiplier",
            "gamma (samples per phase)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let gamma_mult = spec.param_or("gamma_mult", 1.0);
        let multipliers = Multipliers {
            gamma_mult,
            ..Multipliers::practical()
        };
        let params = Params::with_multipliers(
            usize::try_from(spec.n()).expect("n fits in usize"),
            spec.epsilon(),
            multipliers,
        )
        .expect("grid parameters are valid");
        table.push_row(&[
            fmt_float(gamma_mult),
            params.gamma().to_string(),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// A3: phase-0 length ablation
// ---------------------------------------------------------------------------

/// The `s` multipliers A3 sweeps (the legacy loop's literal list).
pub const A3_S_MULTIPLIERS: [f64; 4] = [0.05, 0.2, 0.5, 1.5];

/// The migrated A3 sweep: `broadcast` with a swept `s_mult` at
/// `n = pick(600, 1500)`, `ε = 0.2`, seed points `2200, 2201, …`.
#[must_use]
pub fn a3_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "a3".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 2_200,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", cfg.pick(600, 1_500) as f64), ("epsilon", 0.2)]),
        axes: vec![Axis {
            key: "s_mult".into(),
            values: A3_S_MULTIPLIERS.to_vec(),
        }],
    }
}

/// Runs the migrated A3 sweep and renders the legacy table (digit-identical
/// to the retired `ablations::a3_phase0_requirement`).
#[must_use]
pub fn a3_table(cfg: &ExperimentConfig) -> Table {
    render_a3(&run_in_memory(&a3_sweep(cfg), cfg))
}

/// Renders A3 from sweep aggregates.
#[must_use]
pub fn render_a3(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "A3: Stage I output bias vs the phase-0 length multiplier (beta_s = mult * ln n / eps^2)",
        &[
            "s multiplier",
            "beta_s (rounds)",
            "mean bias after Stage I",
            "mean fraction correct at the end",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let s_mult = spec.param_or("s_mult", 1.0);
        table.push_row(&[
            fmt_float(s_mult),
            spec_params(spec).beta_s().to_string(),
            fmt_float(metric(record, "stage1_bias").moments.mean()),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E13: Stage I/II majority vs Ben-Or under injected faults
// ---------------------------------------------------------------------------

/// The `f/n` fault fractions E13 sweeps; `0` is the honest baseline, `0.3`
/// sits just under the classical `f/n < 1/3` Byzantine bound.
pub const E13_FAULT_FRACTIONS: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

/// The channel crossover levels E13 sweeps (outer axis).
pub const E13_EPSILONS: [f64; 2] = [0.15, 0.3];

/// The E13 sweep: `bft-compare` (the phase-tally Stage II majority boost
/// against gossip Ben-Or on identically seeded populations) over
/// [`E13_EPSILONS`] × [`E13_FAULT_FRACTIONS`] at `n = pick(300, 1000)`,
/// seed points `3000, 3001, …`.
///
/// The spec's `faults` directive defaults to `byz:0.1`; each cell's
/// `fault_fraction` axis value overrides the *fraction* (with `0` running
/// the honest baseline), so `--faults equiv:0.1` swaps the fault *kind*
/// across the whole grid without touching the axes.
#[must_use]
pub fn e13_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(300, 1_000);
    let faults = cfg
        .faults
        .map_or_else(|| "byz:0.1".to_string(), |f| f.to_string());
    SweepSpec {
        name: "e13".into(),
        protocol: "bft-compare".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 3_000,
        rounds: 120,
        faults,
        defaults: params_map(&[("n", n as f64), ("initial_bias", 0.1), ("phase_len", 15.0)]),
        axes: vec![
            Axis {
                key: "epsilon".into(),
                values: E13_EPSILONS.to_vec(),
            },
            Axis {
                key: "fault_fraction".into(),
                values: E13_FAULT_FRACTIONS.to_vec(),
            },
        ],
    }
}

/// Runs the E13 sweep and renders its table.
#[must_use]
pub fn e13_table(cfg: &ExperimentConfig) -> Table {
    render_e13(&run_in_memory(&e13_sweep(cfg), cfg))
}

/// Renders E13 from sweep aggregates.  All statistics are over the honest
/// agents only — faulty agents have no opinion worth scoring.
#[must_use]
pub fn render_e13(cells: &CellPairs) -> Table {
    let directive = cells
        .first()
        .map_or_else(String::new, |(s, _)| s.faults.clone());
    let mut table = Table::new(
        &format!("E13: Stage II majority vs Ben-Or under injected faults (base = {directive})"),
        &[
            "epsilon",
            "f/n",
            "majority mean fraction correct",
            "majority all-correct rate",
            "ben-or mean fraction correct",
            "ben-or decided fraction",
            "ben-or mean rounds",
        ],
    );
    for (spec, record) in cells {
        table.push_row(&[
            fmt_float(spec.epsilon()),
            fmt_float(spec.param_or("fault_fraction", 0.0)),
            fmt_float(metric(record, "majority_fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "majority_all_correct").estimate()),
            fmt_float(metric(record, "benor_fraction_correct").moments.mean()),
            fmt_float(metric(record, "benor_decided_fraction").moments.mean()),
            fmt_float(metric(record, "benor_rounds").moments.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            trials: 2,
            base_seed: 7,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn builtin_names_resolve_and_unknown_ones_do_not() {
        let cfg = tiny();
        for name in BUILTIN_SWEEPS {
            let spec = builtin(name, &cfg).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(spec.name, name);
            assert!(spec.expand().is_ok(), "{name} must expand");
        }
        assert!(builtin("e99", &cfg).is_none());
    }

    #[test]
    fn e01_sweep_matches_the_legacy_grid_and_seeds() {
        let cfg = tiny();
        let cells = e01_sweep(&cfg).expand().unwrap();
        let grid = scaling::population_grid(&cfg);
        assert_eq!(cells.len(), grid.len());
        for (idx, (cell, n)) in cells.iter().zip(grid).enumerate() {
            assert_eq!(cell.n(), n as u64);
            assert_eq!(cell.point, idx as u64);
            // The legacy harness derivation, exactly.
            assert_eq!(cell.seed_for_trial(1), cfg.seed_for(idx as u64, 1));
        }
    }

    #[test]
    fn e08_sweep_enumerates_the_cross_product_in_legacy_order() {
        let cfg = tiny();
        let cells = e08_sweep(&cfg).expand().unwrap();
        let sizes = consensus::initial_set_grid(&cfg);
        let biases = consensus::bias_grid(&cfg);
        assert_eq!(cells.len(), sizes.len() * biases.len());
        // Row-major: sizes outer, biases inner — the legacy nesting.
        assert_eq!(cells[0].param_or("initial_size", 0.0), sizes[0] as f64);
        assert_eq!(cells[1].param_or("initial_size", 0.0), sizes[0] as f64);
        assert_eq!(cells[1].param_or("initial_bias", 0.0), biases[1]);
        assert_eq!(cells[0].point, 800);
    }

    #[test]
    fn full_mode_e08_grid_has_no_skipped_combinations() {
        // The legacy loop skipped over-large sets and tie-rounding biases
        // (shifting seed points); the declarative grid asserts instead.
        let _ = e08_sweep(&ExperimentConfig::full());
    }

    #[test]
    fn dense_sweeps_target_the_dense_backend() {
        let cfg = tiny();
        assert_eq!(e01_dense_sweep(&cfg).backend, Backend::Dense);
        assert_eq!(e08_dense_sweep(&cfg).backend, Backend::Dense);
        assert_eq!(e01_dense_sweep(&cfg).point_base, 1_300);
        assert_eq!(e08_dense_sweep(&cfg).point_base, 1_800);
    }

    #[test]
    fn hybrid_sweep_mirrors_the_dense_grid_on_its_own_seed_points() {
        let cfg = tiny();
        let hybrid = e01_hybrid_sweep(&cfg);
        let dense = e01_dense_sweep(&cfg);
        assert_eq!(hybrid.backend, Backend::Hybrid(DEFAULT_HYBRID_TRACKED));
        assert_eq!(hybrid.point_base, 2_600);
        assert_eq!(hybrid.axes[0].values, dense.axes[0].values);
        assert_eq!(hybrid.defaults, dense.defaults);
    }

    #[test]
    fn facade_resolves_every_backend_family_it_supports() {
        assert_eq!(variant_for("e01", Backend::Agents), Some(&["e01"][..]));
        assert_eq!(variant_for("e01", Backend::Dense), Some(&["e01-dense"][..]));
        assert_eq!(
            variant_for("e01", Backend::Hybrid(7)),
            Some(&["e01-hybrid"][..])
        );
        assert_eq!(variant_for("e02", Backend::Agents), Some(&["e02"][..]));
        assert_eq!(variant_for("e02", Backend::Dense), None);
        assert_eq!(variant_for("e03", Backend::Agents), Some(&["e03"][..]));
        assert_eq!(variant_for("e03", Backend::Dense), None);
        assert_eq!(
            variant_for("e07", Backend::Agents),
            Some(&["e07a", "e07b"][..])
        );
        assert_eq!(variant_for("e07", Backend::Dense), None);
        assert_eq!(variant_for("e08", Backend::Agents), Some(&["e08"][..]));
        assert_eq!(variant_for("e08", Backend::Dense), Some(&["e08-dense"][..]));
        assert_eq!(variant_for("e08", Backend::Hybrid(7)), None);
        assert_eq!(
            variant_for("ablations", Backend::Agents),
            Some(&["a1", "a2", "a3"][..])
        );
        assert_eq!(variant_for("e13", Backend::Agents), Some(&["e13"][..]));
        assert_eq!(variant_for("e13", Backend::Dense), None);
        assert_eq!(variant_for("e99", Backend::Agents), None);
    }

    #[test]
    fn e03_sweep_crosses_n_with_epsilon_in_legacy_order() {
        let cfg = tiny();
        let spec = e03_sweep(&cfg);
        assert_eq!(spec.point_base, 200);
        let cells = spec.expand().unwrap();
        let ns = scaling::e03_population_grid(&cfg);
        assert_eq!(cells.len(), ns.len() * scaling::E03_EPSILONS.len());
        // Row-major: n outer, epsilon inner — the legacy `point += 1` walk.
        assert_eq!(cells[0].n(), ns[0] as u64);
        assert_eq!(cells[0].epsilon(), scaling::E03_EPSILONS[0]);
        assert_eq!(cells[1].n(), ns[0] as u64);
        assert_eq!(cells[1].epsilon(), scaling::E03_EPSILONS[1]);
        for (idx, cell) in cells.iter().enumerate() {
            assert_eq!(cell.point, 200 + idx as u64);
            // The legacy harness derivation, exactly.
            assert_eq!(cell.seed_for_trial(1), cfg.seed_for(200 + idx as u64, 1));
        }
    }

    #[test]
    fn e02_sweep_matches_the_legacy_grid_and_seeds() {
        let cfg = tiny();
        let cells = e02_sweep(&cfg).expand().unwrap();
        let grid = scaling::epsilon_grid(&cfg);
        assert_eq!(cells.len(), grid.len());
        for (idx, (cell, epsilon)) in cells.iter().zip(grid).enumerate() {
            assert_eq!(cell.epsilon(), epsilon);
            assert_eq!(cell.n(), 1_000);
            // The legacy loop's `100 + idx` point numbering, exactly.
            assert_eq!(cell.point, 100 + idx as u64);
            assert_eq!(cell.seed_for_trial(1), cfg.seed_for(100 + idx as u64, 1));
        }
    }

    #[test]
    fn fault_free_sweeps_carry_no_faults_directive() {
        // An unset `--faults` must leave every builtin spec's directive
        // empty so pre-fault spec hashes (and stores keyed on them) stay
        // valid byte-for-byte.  E13 is the exception: faults are its point.
        let cfg = tiny();
        for name in BUILTIN_SWEEPS {
            let spec = builtin(name, &cfg).unwrap();
            if name == "e13" {
                assert_eq!(spec.faults, "byz:0.1");
            } else {
                assert!(spec.faults.is_empty(), "{name} must default fault-free");
            }
        }
    }

    #[test]
    fn faults_flag_threads_into_builtin_sweeps() {
        let cfg = ExperimentConfig {
            faults: Some("crash:0.05@20".parse().unwrap()),
            ..tiny()
        };
        assert_eq!(e01_sweep(&cfg).faults, "crash:0.05@20");
        // E13 keeps the axis but swaps the base kind.
        assert_eq!(e13_sweep(&cfg).faults, "crash:0.05@20");
    }

    #[test]
    fn e13_sweep_crosses_epsilon_with_fault_fractions() {
        let cfg = tiny();
        let spec = e13_sweep(&cfg);
        assert_eq!(spec.point_base, 3_000);
        assert_eq!(spec.rounds, 120);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), E13_EPSILONS.len() * E13_FAULT_FRACTIONS.len());
        // Row-major: epsilon outer, fault fraction inner.
        assert_eq!(cells[0].epsilon(), E13_EPSILONS[0]);
        assert_eq!(cells[0].param_or("fault_fraction", -1.0), 0.0);
        assert_eq!(cells[1].param_or("fault_fraction", -1.0), 0.05);
        let last = cells.last().unwrap();
        assert_eq!(last.epsilon(), E13_EPSILONS[1]);
        assert_eq!(last.param_or("fault_fraction", -1.0), 0.3);
        for cell in &cells {
            assert_eq!(cell.faults, "byz:0.1");
        }
    }

    #[test]
    fn facade_rejects_a_backend_without_a_variant_naming_the_flag() {
        let cfg = ExperimentConfig {
            backend: Backend::Hybrid(4),
            ..tiny()
        };
        let result = std::panic::catch_unwind(|| backend_tables("e08", &cfg));
        let message = match result {
            Ok(_) => panic!("e08 on hybrid must be rejected"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
        };
        assert!(message.contains("--backend"), "{message}");
        assert!(message.contains("agents, dense"), "{message}");
    }

    #[test]
    fn facade_threads_the_exact_backend_value_into_the_sweep() {
        // `--backend hybrid:3` must run 3 tracked agents, not the builtin
        // spec's DEFAULT_HYBRID_TRACKED.
        let cfg = ExperimentConfig {
            backend: Backend::Hybrid(3),
            ..tiny()
        };
        let tables = backend_tables("e01", &cfg);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].to_markdown().contains("hybrid:3"));
    }

    #[test]
    fn sweep_families_partition_the_builtin_list() {
        let grouped: Vec<&str> = SWEEP_FAMILIES
            .iter()
            .flat_map(|(_, names)| names.iter().copied())
            .collect();
        assert_eq!(
            grouped,
            BUILTIN_SWEEPS.to_vec(),
            "families must cover every builtin sweep, in order, exactly once"
        );
    }

    #[test]
    fn report_spec_composes_the_report_members() {
        let cfg = tiny();
        let spec = report_spec(&cfg);
        assert_eq!(spec.name, REPORT_SPEC_NAME);
        let names: Vec<&str> = spec.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, crate::report::REPORT_MEMBERS.to_vec());
        for member in &spec.members {
            assert_eq!(
                Some(member),
                builtin(&member.name, &cfg).as_ref(),
                "composed member `{}` must equal its standalone builtin",
                member.name
            );
        }
        // The hash is content-addressed: a config change moves it.
        let full = report_spec(&ExperimentConfig::full());
        assert_ne!(spec.hash_hex(), full.hash_hex());
    }

    #[test]
    fn nearest_builtin_suggests_plausible_typos_only() {
        assert_eq!(nearest_builtin("e0"), Some("e01"));
        assert_eq!(nearest_builtin("e08-dens"), Some("e08-dense"));
        assert_eq!(nearest_builtin("repor"), Some("report"));
        assert_eq!(nearest_builtin("a2"), Some("a2"));
        assert_eq!(nearest_builtin("ablations"), None);
        assert_eq!(nearest_builtin("/nonexistent/spec.json"), None);
        assert_eq!(nearest_builtin(""), None);
    }
}
