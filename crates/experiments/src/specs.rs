//! Registry-backed sweep specs for the migrated experiments.
//!
//! E1 (broadcast scaling), E1-D (dense rumor at large `n`), E2 (broadcast
//! vs `ε`), E3 (message complexity), E8 (majority consensus), E8-D (dense
//! majority boost), ablation A2 (Stage II sample count) and E13 (Stage I/II
//! majority vs Ben-Or under fault injection) are expressed here as
//! declarative [`SweepSpec`]s
//! instead of hand-rolled loops.  Their binaries are thin wrappers: build
//! the spec, run it through the [`sweeps`] orchestrator, render the legacy
//! table from the streamed aggregates.
//!
//! **The migration contract:** for every migrated experiment, the sweep uses
//! the same protocol constructions, the same grid order and the same
//! `(base_seed, point, trial)` seed derivation as the legacy loop — so the
//! rendered table is digit-for-digit identical to the legacy function's
//! (`tests/spec_equivalence.rs` pins this).  The same specs serialized to
//! `specs/*.json` drive the standalone `sweep` binary, which adds
//! persistence, resume and CSV/JSON export on top.

use std::collections::BTreeMap;

use analysis::estimators::SuccessRate;
use analysis::fitting::fit_linear;
use analysis::tables::fmt_float;
use analysis::Table;
use breathe::{InitialSet, Multipliers, Params};
use flip_model::{Backend, DEFAULT_HYBRID_TRACKED};
use sweeps::{
    Axis, CellRecord, MetricAggregate, ProtocolRegistry, ScenarioSpec, SweepRunner, SweepSpec,
};

use crate::{consensus, scaling, ExperimentConfig};

/// A sweep result in grid order: each cell's resolved spec with its record.
pub type CellPairs = Vec<(ScenarioSpec, CellRecord)>;

/// The names accepted by [`builtin`] (and the `sweep gen`/`sweep list`
/// subcommands), in presentation order.
pub const BUILTIN_SWEEPS: [&str; 9] = [
    "e01",
    "e01-dense",
    "e01-hybrid",
    "e02",
    "e03",
    "e08",
    "e08-dense",
    "a2",
    "e13",
];

/// Builds the named builtin sweep for the given configuration; `None` for
/// unknown names.
#[must_use]
pub fn builtin(name: &str, cfg: &ExperimentConfig) -> Option<SweepSpec> {
    match name {
        "e01" => Some(e01_sweep(cfg)),
        "e01-dense" => Some(e01_dense_sweep(cfg)),
        "e01-hybrid" => Some(e01_hybrid_sweep(cfg)),
        "e02" => Some(e02_sweep(cfg)),
        "e03" => Some(e03_sweep(cfg)),
        "e08" => Some(e08_sweep(cfg)),
        "e08-dense" => Some(e08_dense_sweep(cfg)),
        "a2" => Some(a2_sweep(cfg)),
        "e13" => Some(e13_sweep(cfg)),
        _ => None,
    }
}

/// The builtin sweep that runs experiment family `binary` on `backend`'s
/// engine family, or `None` when no variant exists there.
///
/// Keyed on [`Backend::as_str`] (the family name), not on enum variants, so
/// adding a backend to [`Backend::ALL`] does not force edits here — a family
/// without a variant simply stays unlisted.
#[must_use]
pub fn variant_for(binary: &str, backend: Backend) -> Option<&'static str> {
    let variants: &[(&str, &str)] = match binary {
        "e01" => &[
            ("agents", "e01"),
            ("dense", "e01-dense"),
            ("hybrid", "e01-hybrid"),
        ],
        "e02" => &[("agents", "e02")],
        "e03" => &[("agents", "e03")],
        "e08" => &[("agents", "e08"), ("dense", "e08-dense")],
        "a2" => &[("agents", "a2")],
        "e13" => &[("agents", "e13")],
        _ => return None,
    };
    variants
        .iter()
        .find(|(family, _)| *family == backend.as_str())
        .map(|(_, name)| *name)
}

/// Renders the named builtin sweep's table from its aggregates.
///
/// # Panics
///
/// Panics on a name with no renderer — a bug in the caller's dispatch.
#[must_use]
pub fn render(name: &str, cells: &CellPairs) -> Table {
    match name {
        "e01" => render_e01(cells),
        "e01-dense" | "e01-hybrid" => render_e01_dense(cells),
        "e02" => render_e02(cells),
        "e03" => render_e03(cells),
        "e08" => render_e08(cells),
        "e08-dense" => render_e08_dense(cells),
        "a2" => render_a2(cells),
        "e13" => render_e13(cells),
        other => panic!("no renderer for sweep `{other}`"),
    }
}

/// The single backend dispatch point for the experiment binaries: resolves
/// `cfg.backend` to the family's sweep variant, runs it through the registry
/// and renders its table.  This replaces the per-binary
/// `match cfg.backend {...}` blocks, so binaries stay untouched when a
/// backend family gains or loses a variant.
///
/// The sweep keeps `cfg.backend` verbatim (`--backend hybrid:64` runs with
/// 64 tracked agents, not the builtin spec's default).
///
/// # Panics
///
/// Panics, naming `--backend`, when the family has no variant on the
/// configured backend.
#[must_use]
pub fn backend_tables(binary: &str, cfg: &ExperimentConfig) -> Vec<Table> {
    let name = variant_for(binary, cfg.backend).unwrap_or_else(|| {
        let supported: Vec<&str> = Backend::ALL
            .iter()
            .filter(|b| variant_for(binary, **b).is_some())
            .map(|b| b.as_str())
            .collect();
        panic!(
            "`{binary}` has no --backend {} variant; supported: {}",
            cfg.backend,
            supported.join(", ")
        )
    });
    let mut spec = builtin(name, cfg).expect("variant_for only names builtin sweeps");
    spec.backend = cfg.backend;
    vec![render(name, &run_in_memory(&spec, cfg))]
}

/// Runs a spec in memory (no store) with the builtin registry, honouring the
/// configuration's `--threads` override, and pairs each cell spec with its
/// record in grid order.
///
/// # Panics
///
/// Panics when the sweep fails — for builtin specs that means a bug, and the
/// experiment binaries have no useful way to continue.
#[must_use]
pub fn run_in_memory(spec: &SweepSpec, cfg: &ExperimentConfig) -> CellPairs {
    let mut runner = SweepRunner::new();
    if let Some(threads) = cfg.threads {
        runner = runner.with_threads(threads);
    }
    let outcome = runner
        .run(spec, &ProtocolRegistry::builtin(), None)
        .unwrap_or_else(|e| panic!("sweep `{}` failed: {e}", spec.name));
    assert!(
        outcome.completed,
        "in-memory sweeps always run the full grid"
    );
    let grid = spec.expand().expect("a spec that ran also expands");
    grid.into_iter().zip(outcome.cells).collect()
}

fn params_map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

/// A metric aggregate or a loud failure naming what is missing.
fn metric<'a>(record: &'a CellRecord, name: &str) -> &'a MetricAggregate {
    record
        .metrics
        .get(name)
        .unwrap_or_else(|| panic!("cell {} has no `{name}` metric", record.point))
}

/// Success-rate estimator from a 0/1 metric (the sum counts the successes).
fn success_rate(record: &CellRecord, name: &str) -> SuccessRate {
    let agg = metric(record, name);
    SuccessRate::from_counts(agg.moments.sum as u64, agg.moments.count)
}

/// An integer-valued metric that is constant across a cell's trials (round
/// counts fixed by the protocol schedule).
fn constant_u64(record: &CellRecord, name: &str) -> u64 {
    let agg = metric(record, name);
    agg.moments.min as u64
}

/// The `--faults` directive as a sweep-spec string: empty when the
/// configuration carries no directive, so fault-free specs (and their
/// hashes) are byte-identical to the pre-fault era.
fn faults_directive(cfg: &ExperimentConfig) -> String {
    cfg.faults.map(|f| f.to_string()).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// E1: broadcast rounds vs n (Theorem 2.17)
// ---------------------------------------------------------------------------

/// The migrated E1 sweep: `broadcast` over [`scaling::population_grid`] at
/// `ε = 0.2`, seed points `0, 1, …` — the legacy loop's numbering.
#[must_use]
pub fn e01_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e01".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 0,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.2)]),
        axes: vec![Axis {
            key: "n".into(),
            values: scaling::population_grid(cfg)
                .into_iter()
                .map(|n| n as f64)
                .collect(),
        }],
    }
}

/// Runs the migrated E1 sweep and renders the legacy table (digit-identical
/// to [`scaling::e01_rounds_vs_n`]).
#[must_use]
pub fn e01_table(cfg: &ExperimentConfig) -> Table {
    render_e01(&run_in_memory(&e01_sweep(cfg), cfg))
}

/// Renders E1 from sweep aggregates (also used on persisted stores).
#[must_use]
pub fn render_e01(cells: &CellPairs) -> Table {
    let epsilon = 0.2;
    let mut table = Table::new(
        "E1: broadcast rounds vs n (epsilon = 0.2, Theorem 2.17)",
        &[
            "n",
            "rounds",
            "rounds / (ln n / eps^2)",
            "mean fraction correct",
            "all-correct rate",
            "wilson 95% low",
        ],
    );
    let mut ln_ns = Vec::new();
    let mut rounds_list = Vec::new();
    for (spec, record) in cells {
        let n = spec.n();
        let rounds = constant_u64(record, "total_rounds");
        let success = success_rate(record, "all_correct");
        let scale = (n as f64).ln() / (epsilon * epsilon);
        ln_ns.push((n as f64).ln());
        rounds_list.push(rounds as f64);
        table.push_row(&[
            n.to_string(),
            rounds.to_string(),
            fmt_float(rounds as f64 / scale),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success.estimate()),
            fmt_float(success.wilson_interval(1.96).0),
        ]);
    }
    if let Some(fit) = fit_linear(&ln_ns, &rounds_list) {
        table.push_row(&[
            "fit: rounds ~ a*ln n + b".to_string(),
            format!("a = {}", fmt_float(fit.slope)),
            format!("b = {}", fmt_float(fit.intercept)),
            format!("R^2 = {}", fmt_float(fit.r_squared)),
            String::new(),
            String::new(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E1-D: dense-engine rumor spreading at large n
// ---------------------------------------------------------------------------

/// The migrated E1-D sweep: dense `rumor` over
/// [`scaling::dense_population_grid`], 1000 informed agents, `ε = 0.2`,
/// capped at 500 rounds, seed points `1300, 1301, …`.
#[must_use]
pub fn e01_dense_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e01-dense".into(),
        protocol: "rumor".into(),
        backend: Backend::Dense,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 1_300,
        rounds: 500,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.2), ("informed", 1_000.0)]),
        axes: vec![Axis {
            key: "n".into(),
            values: scaling::dense_population_grid(cfg)
                .into_iter()
                .map(|n| n as f64)
                .collect(),
        }],
    }
}

/// The E1-H sweep: the same grid as [`e01_dense_sweep`] on the hybrid
/// backend — `DEFAULT_HYBRID_TRACKED` agents simulated exactly against the
/// dense bulk.  Seed points `2600, 2601, …` keep it disjoint from every
/// other sweep's numbering.
#[must_use]
pub fn e01_hybrid_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e01-hybrid".into(),
        backend: Backend::Hybrid(DEFAULT_HYBRID_TRACKED),
        point_base: 2_600,
        ..e01_dense_sweep(cfg)
    }
}

/// Runs the migrated E1-D sweep and renders the legacy table
/// (digit-identical to [`scaling::e01_dense_scaling`] on the dense backend).
#[must_use]
pub fn e01_dense_table(cfg: &ExperimentConfig) -> Table {
    render_e01_dense(&run_in_memory(&e01_dense_sweep(cfg), cfg))
}

/// Renders E1-D from sweep aggregates.  The title reports the backend the
/// cells actually ran on (`dense` or `hybrid:k`).
#[must_use]
pub fn render_e01_dense(cells: &CellPairs) -> Table {
    let backend = cells.first().map_or_else(
        || Backend::Dense.to_string(),
        |(s, _)| s.backend.to_string(),
    );
    let mut table = Table::new(
        &format!("E1-D: rumor spreading at large n (backend = {backend}, epsilon = 0.2)"),
        &[
            "n",
            "mean rounds to full activation",
            "rounds / ln n",
            "mean fraction holding source bit",
            "mean messages sent",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let rounds = metric(record, "rounds").moments.mean();
        table.push_row(&[
            n.to_string(),
            fmt_float(rounds),
            fmt_float(rounds / (n as f64).ln()),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(metric(record, "messages_sent").moments.mean()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E2: broadcast rounds vs epsilon (Theorem 2.17)
// ---------------------------------------------------------------------------

/// The migrated E2 sweep: `broadcast` over [`scaling::epsilon_grid`] at
/// `n = pick(1000, 2000)`, seed points `100, 101, …` — the legacy loop's
/// numbering.
#[must_use]
pub fn e02_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(1_000, 2_000);
    SweepSpec {
        name: "e02".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 100,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64)]),
        axes: vec![Axis {
            key: "epsilon".into(),
            values: scaling::epsilon_grid(cfg),
        }],
    }
}

/// Runs the migrated E2 sweep and renders the legacy table (digit-identical
/// to [`scaling::e02_rounds_vs_epsilon`]).
#[must_use]
pub fn e02_table(cfg: &ExperimentConfig) -> Table {
    render_e02(&run_in_memory(&e02_sweep(cfg), cfg))
}

/// Renders E2 from sweep aggregates.
#[must_use]
pub fn render_e02(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E2: broadcast rounds vs epsilon (Theorem 2.17)",
        &[
            "epsilon",
            "rounds",
            "rounds * eps^2",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let epsilon = spec.epsilon();
        let rounds = constant_u64(record, "total_rounds");
        table.push_row(&[
            fmt_float(epsilon),
            rounds.to_string(),
            fmt_float(rounds as f64 * epsilon * epsilon),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E3: message complexity (Theorem 2.17)
// ---------------------------------------------------------------------------

/// The migrated E3 sweep: `broadcast` over
/// [`scaling::e03_population_grid`] × [`scaling::E03_EPSILONS`] (row-major,
/// `n` outer — the legacy nesting), seed points `200, 201, …`.
#[must_use]
pub fn e03_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e03".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 200,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: BTreeMap::new(),
        axes: vec![
            Axis {
                key: "n".into(),
                values: scaling::e03_population_grid(cfg)
                    .into_iter()
                    .map(|n| n as f64)
                    .collect(),
            },
            Axis {
                key: "epsilon".into(),
                values: scaling::E03_EPSILONS.to_vec(),
            },
        ],
    }
}

/// Runs the migrated E3 sweep and renders the legacy table (digit-identical
/// to [`scaling::e03_message_complexity`]).
#[must_use]
pub fn e03_table(cfg: &ExperimentConfig) -> Table {
    render_e03(&run_in_memory(&e03_sweep(cfg), cfg))
}

/// Renders E3 from sweep aggregates.
#[must_use]
pub fn render_e03(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E3: message complexity (Theorem 2.17)",
        &[
            "n",
            "epsilon",
            "mean messages",
            "messages / (n ln n / eps^2)",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let epsilon = spec.epsilon();
        let msgs = metric(record, "messages_sent").moments.mean();
        let scale = n as f64 * (n as f64).ln() / (epsilon * epsilon);
        table.push_row(&[
            n.to_string(),
            fmt_float(epsilon),
            fmt_float(msgs),
            fmt_float(msgs / scale),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E8: noisy majority-consensus (Corollary 2.18)
// ---------------------------------------------------------------------------

/// The migrated E8 sweep: `majority-consensus` over
/// [`consensus::initial_set_grid`] × [`consensus::bias_grid`] at
/// `n = pick(1000, 4000)`, `ε = 0.3`, seed points `800, 801, …`.
///
/// # Panics
///
/// Panics if a grid combination would have been skipped by the legacy loop
/// (set larger than `n`, or a bias that rounds to a tie) — the declarative
/// grid is a plain cross product, so a skip would silently shift every
/// later seed point off the legacy numbering.
#[must_use]
pub fn e08_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(1_000, 4_000);
    let sizes = consensus::initial_set_grid(cfg);
    let biases = consensus::bias_grid(cfg);
    for &size in &sizes {
        assert!(size <= n, "E8 grid set size {size} exceeds n = {n}");
        for &bias in &biases {
            let initial = InitialSet::with_bias(size, bias).expect("valid bias");
            assert!(
                initial.holding_correct > initial.holding_wrong,
                "E8 grid point (|A| = {size}, bias = {bias}) rounds to a tie"
            );
        }
    }
    SweepSpec {
        name: "e08".into(),
        protocol: "majority-consensus".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 800,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64), ("epsilon", 0.3)]),
        axes: vec![
            Axis {
                key: "initial_size".into(),
                values: sizes.into_iter().map(|s| s as f64).collect(),
            },
            Axis {
                key: "initial_bias".into(),
                values: biases,
            },
        ],
    }
}

/// Runs the migrated E8 sweep and renders the legacy table (digit-identical
/// to [`consensus::e08_majority_consensus`]).
#[must_use]
pub fn e08_table(cfg: &ExperimentConfig) -> Table {
    render_e08(&run_in_memory(&e08_sweep(cfg), cfg))
}

/// Renders E8 from sweep aggregates.
#[must_use]
pub fn render_e08(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "E8: noisy majority-consensus (Corollary 2.18)",
        &[
            "|A|",
            "majority-bias",
            "required bias sqrt(ln n/|A|)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let size = spec.param_or("initial_size", 0.0) as usize;
        let bias = spec.param_or("initial_bias", 0.0);
        let initial = InitialSet::with_bias(size, bias).expect("grid bias is valid");
        let required = ((n as f64).ln() / size as f64).sqrt().min(0.5);
        table.push_row(&[
            size.to_string(),
            fmt_float(initial.majority_bias()),
            fmt_float(required),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E8-D: dense majority boost
// ---------------------------------------------------------------------------

/// The migrated E8-D sweep: dense `majority-sampler` over
/// [`consensus::dense_majority_grid`] × [`consensus::dense_bias_grid`] at
/// `ε = 0.3`, seed points `1800, 1801, …`.
#[must_use]
pub fn e08_dense_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    SweepSpec {
        name: "e08-dense".into(),
        protocol: "majority-sampler".into(),
        backend: Backend::Dense,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 1_800,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("epsilon", 0.3)]),
        axes: vec![
            Axis {
                key: "n".into(),
                values: consensus::dense_majority_grid(cfg)
                    .into_iter()
                    .map(|n| n as f64)
                    .collect(),
            },
            Axis {
                key: "initial_bias".into(),
                values: consensus::dense_bias_grid(cfg),
            },
        ],
    }
}

/// Runs the migrated E8-D sweep and renders the legacy table
/// (digit-identical to [`consensus::e08_dense_majority`]).
#[must_use]
pub fn e08_dense_table(cfg: &ExperimentConfig) -> Table {
    render_e08_dense(&run_in_memory(&e08_dense_sweep(cfg), cfg))
}

/// Renders E8-D from sweep aggregates.
#[must_use]
pub fn render_e08_dense(cells: &CellPairs) -> Table {
    let epsilon = 0.3f64;
    let phase_len = ((2.0 / (epsilon * epsilon)).ceil() as u64) | 1;
    let mut table = Table::new(
        &format!("E8-D: dense majority boost (epsilon = {epsilon}, phase_len = {phase_len})"),
        &[
            "n",
            "initial bias",
            "phases",
            "final fraction correct",
            "majority preserved rate",
        ],
    );
    for (spec, record) in cells {
        let n = spec.n();
        let phases = 2 * (n as f64).log2().ceil() as u64;
        table.push_row(&[
            n.to_string(),
            fmt_float(spec.param_or("initial_bias", 0.0)),
            phases.to_string(),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "majority_preserved").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// A2: Stage II sample-count ablation
// ---------------------------------------------------------------------------

/// The γ multipliers A2 sweeps (the legacy loop's literal list).
pub const A2_GAMMA_MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 6.0];

/// The migrated A2 sweep: `broadcast` with a swept `gamma_mult` at
/// `n = pick(600, 1500)`, `ε = 0.2`, seed points `2100, 2101, …`.
#[must_use]
pub fn a2_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(600, 1_500);
    SweepSpec {
        name: "a2".into(),
        protocol: "broadcast".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 2_100,
        rounds: 0,
        faults: faults_directive(cfg),
        defaults: params_map(&[("n", n as f64), ("epsilon", 0.2)]),
        axes: vec![Axis {
            key: "gamma_mult".into(),
            values: A2_GAMMA_MULTIPLIERS.to_vec(),
        }],
    }
}

/// Runs the migrated A2 sweep and renders the legacy table (digit-identical
/// to [`crate::ablations::a2_gamma_requirement`]).
#[must_use]
pub fn a2_table(cfg: &ExperimentConfig) -> Table {
    render_a2(&run_in_memory(&a2_sweep(cfg), cfg))
}

/// Renders A2 from sweep aggregates.
#[must_use]
pub fn render_a2(cells: &CellPairs) -> Table {
    let mut table = Table::new(
        "A2: consensus vs the Stage II sample multiplier (gamma = mult / eps^2)",
        &[
            "gamma multiplier",
            "gamma (samples per phase)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (spec, record) in cells {
        let gamma_mult = spec.param_or("gamma_mult", 1.0);
        let multipliers = Multipliers {
            gamma_mult,
            ..Multipliers::practical()
        };
        let params = Params::with_multipliers(
            usize::try_from(spec.n()).expect("n fits in usize"),
            spec.epsilon(),
            multipliers,
        )
        .expect("grid parameters are valid");
        table.push_row(&[
            fmt_float(gamma_mult),
            params.gamma().to_string(),
            fmt_float(metric(record, "fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "all_correct").estimate()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E13: Stage I/II majority vs Ben-Or under injected faults
// ---------------------------------------------------------------------------

/// The `f/n` fault fractions E13 sweeps; `0` is the honest baseline, `0.3`
/// sits just under the classical `f/n < 1/3` Byzantine bound.
pub const E13_FAULT_FRACTIONS: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

/// The channel crossover levels E13 sweeps (outer axis).
pub const E13_EPSILONS: [f64; 2] = [0.15, 0.3];

/// The E13 sweep: `bft-compare` (the phase-tally Stage II majority boost
/// against gossip Ben-Or on identically seeded populations) over
/// [`E13_EPSILONS`] × [`E13_FAULT_FRACTIONS`] at `n = pick(300, 1000)`,
/// seed points `3000, 3001, …`.
///
/// The spec's `faults` directive defaults to `byz:0.1`; each cell's
/// `fault_fraction` axis value overrides the *fraction* (with `0` running
/// the honest baseline), so `--faults equiv:0.1` swaps the fault *kind*
/// across the whole grid without touching the axes.
#[must_use]
pub fn e13_sweep(cfg: &ExperimentConfig) -> SweepSpec {
    let n = cfg.pick(300, 1_000);
    let faults = cfg
        .faults
        .map_or_else(|| "byz:0.1".to_string(), |f| f.to_string());
    SweepSpec {
        name: "e13".into(),
        protocol: "bft-compare".into(),
        backend: Backend::Agents,
        trials: cfg.trials,
        base_seed: cfg.base_seed,
        point_base: 3_000,
        rounds: 120,
        faults,
        defaults: params_map(&[("n", n as f64), ("initial_bias", 0.1), ("phase_len", 15.0)]),
        axes: vec![
            Axis {
                key: "epsilon".into(),
                values: E13_EPSILONS.to_vec(),
            },
            Axis {
                key: "fault_fraction".into(),
                values: E13_FAULT_FRACTIONS.to_vec(),
            },
        ],
    }
}

/// Runs the E13 sweep and renders its table.
#[must_use]
pub fn e13_table(cfg: &ExperimentConfig) -> Table {
    render_e13(&run_in_memory(&e13_sweep(cfg), cfg))
}

/// Renders E13 from sweep aggregates.  All statistics are over the honest
/// agents only — faulty agents have no opinion worth scoring.
#[must_use]
pub fn render_e13(cells: &CellPairs) -> Table {
    let directive = cells
        .first()
        .map_or_else(String::new, |(s, _)| s.faults.clone());
    let mut table = Table::new(
        &format!("E13: Stage II majority vs Ben-Or under injected faults (base = {directive})"),
        &[
            "epsilon",
            "f/n",
            "majority mean fraction correct",
            "majority all-correct rate",
            "ben-or mean fraction correct",
            "ben-or decided fraction",
            "ben-or mean rounds",
        ],
    );
    for (spec, record) in cells {
        table.push_row(&[
            fmt_float(spec.epsilon()),
            fmt_float(spec.param_or("fault_fraction", 0.0)),
            fmt_float(metric(record, "majority_fraction_correct").moments.mean()),
            fmt_float(success_rate(record, "majority_all_correct").estimate()),
            fmt_float(metric(record, "benor_fraction_correct").moments.mean()),
            fmt_float(metric(record, "benor_decided_fraction").moments.mean()),
            fmt_float(metric(record, "benor_rounds").moments.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            trials: 2,
            base_seed: 7,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn builtin_names_resolve_and_unknown_ones_do_not() {
        let cfg = tiny();
        for name in BUILTIN_SWEEPS {
            let spec = builtin(name, &cfg).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(spec.name, name);
            assert!(spec.expand().is_ok(), "{name} must expand");
        }
        assert!(builtin("e99", &cfg).is_none());
    }

    #[test]
    fn e01_sweep_matches_the_legacy_grid_and_seeds() {
        let cfg = tiny();
        let cells = e01_sweep(&cfg).expand().unwrap();
        let grid = scaling::population_grid(&cfg);
        assert_eq!(cells.len(), grid.len());
        for (idx, (cell, n)) in cells.iter().zip(grid).enumerate() {
            assert_eq!(cell.n(), n as u64);
            assert_eq!(cell.point, idx as u64);
            // The legacy harness derivation, exactly.
            assert_eq!(cell.seed_for_trial(1), cfg.seed_for(idx as u64, 1));
        }
    }

    #[test]
    fn e08_sweep_enumerates_the_cross_product_in_legacy_order() {
        let cfg = tiny();
        let cells = e08_sweep(&cfg).expand().unwrap();
        let sizes = consensus::initial_set_grid(&cfg);
        let biases = consensus::bias_grid(&cfg);
        assert_eq!(cells.len(), sizes.len() * biases.len());
        // Row-major: sizes outer, biases inner — the legacy nesting.
        assert_eq!(cells[0].param_or("initial_size", 0.0), sizes[0] as f64);
        assert_eq!(cells[1].param_or("initial_size", 0.0), sizes[0] as f64);
        assert_eq!(cells[1].param_or("initial_bias", 0.0), biases[1]);
        assert_eq!(cells[0].point, 800);
    }

    #[test]
    fn full_mode_e08_grid_has_no_skipped_combinations() {
        // The legacy loop skipped over-large sets and tie-rounding biases
        // (shifting seed points); the declarative grid asserts instead.
        let _ = e08_sweep(&ExperimentConfig::full());
    }

    #[test]
    fn dense_sweeps_target_the_dense_backend() {
        let cfg = tiny();
        assert_eq!(e01_dense_sweep(&cfg).backend, Backend::Dense);
        assert_eq!(e08_dense_sweep(&cfg).backend, Backend::Dense);
        assert_eq!(e01_dense_sweep(&cfg).point_base, 1_300);
        assert_eq!(e08_dense_sweep(&cfg).point_base, 1_800);
    }

    #[test]
    fn hybrid_sweep_mirrors_the_dense_grid_on_its_own_seed_points() {
        let cfg = tiny();
        let hybrid = e01_hybrid_sweep(&cfg);
        let dense = e01_dense_sweep(&cfg);
        assert_eq!(hybrid.backend, Backend::Hybrid(DEFAULT_HYBRID_TRACKED));
        assert_eq!(hybrid.point_base, 2_600);
        assert_eq!(hybrid.axes[0].values, dense.axes[0].values);
        assert_eq!(hybrid.defaults, dense.defaults);
    }

    #[test]
    fn facade_resolves_every_backend_family_it_supports() {
        assert_eq!(variant_for("e01", Backend::Agents), Some("e01"));
        assert_eq!(variant_for("e01", Backend::Dense), Some("e01-dense"));
        assert_eq!(variant_for("e01", Backend::Hybrid(7)), Some("e01-hybrid"));
        assert_eq!(variant_for("e02", Backend::Agents), Some("e02"));
        assert_eq!(variant_for("e02", Backend::Dense), None);
        assert_eq!(variant_for("e03", Backend::Agents), Some("e03"));
        assert_eq!(variant_for("e03", Backend::Dense), None);
        assert_eq!(variant_for("e08", Backend::Agents), Some("e08"));
        assert_eq!(variant_for("e08", Backend::Dense), Some("e08-dense"));
        assert_eq!(variant_for("e08", Backend::Hybrid(7)), None);
        assert_eq!(variant_for("e13", Backend::Agents), Some("e13"));
        assert_eq!(variant_for("e13", Backend::Dense), None);
        assert_eq!(variant_for("e99", Backend::Agents), None);
    }

    #[test]
    fn e03_sweep_crosses_n_with_epsilon_in_legacy_order() {
        let cfg = tiny();
        let spec = e03_sweep(&cfg);
        assert_eq!(spec.point_base, 200);
        let cells = spec.expand().unwrap();
        let ns = scaling::e03_population_grid(&cfg);
        assert_eq!(cells.len(), ns.len() * scaling::E03_EPSILONS.len());
        // Row-major: n outer, epsilon inner — the legacy `point += 1` walk.
        assert_eq!(cells[0].n(), ns[0] as u64);
        assert_eq!(cells[0].epsilon(), scaling::E03_EPSILONS[0]);
        assert_eq!(cells[1].n(), ns[0] as u64);
        assert_eq!(cells[1].epsilon(), scaling::E03_EPSILONS[1]);
        for (idx, cell) in cells.iter().enumerate() {
            assert_eq!(cell.point, 200 + idx as u64);
            // The legacy harness derivation, exactly.
            assert_eq!(cell.seed_for_trial(1), cfg.seed_for(200 + idx as u64, 1));
        }
    }

    #[test]
    fn e02_sweep_matches_the_legacy_grid_and_seeds() {
        let cfg = tiny();
        let cells = e02_sweep(&cfg).expand().unwrap();
        let grid = scaling::epsilon_grid(&cfg);
        assert_eq!(cells.len(), grid.len());
        for (idx, (cell, epsilon)) in cells.iter().zip(grid).enumerate() {
            assert_eq!(cell.epsilon(), epsilon);
            assert_eq!(cell.n(), 1_000);
            // The legacy loop's `100 + idx` point numbering, exactly.
            assert_eq!(cell.point, 100 + idx as u64);
            assert_eq!(cell.seed_for_trial(1), cfg.seed_for(100 + idx as u64, 1));
        }
    }

    #[test]
    fn fault_free_sweeps_carry_no_faults_directive() {
        // An unset `--faults` must leave every builtin spec's directive
        // empty so pre-fault spec hashes (and stores keyed on them) stay
        // valid byte-for-byte.  E13 is the exception: faults are its point.
        let cfg = tiny();
        for name in BUILTIN_SWEEPS {
            let spec = builtin(name, &cfg).unwrap();
            if name == "e13" {
                assert_eq!(spec.faults, "byz:0.1");
            } else {
                assert!(spec.faults.is_empty(), "{name} must default fault-free");
            }
        }
    }

    #[test]
    fn faults_flag_threads_into_builtin_sweeps() {
        let cfg = ExperimentConfig {
            faults: Some("crash:0.05@20".parse().unwrap()),
            ..tiny()
        };
        assert_eq!(e01_sweep(&cfg).faults, "crash:0.05@20");
        // E13 keeps the axis but swaps the base kind.
        assert_eq!(e13_sweep(&cfg).faults, "crash:0.05@20");
    }

    #[test]
    fn e13_sweep_crosses_epsilon_with_fault_fractions() {
        let cfg = tiny();
        let spec = e13_sweep(&cfg);
        assert_eq!(spec.point_base, 3_000);
        assert_eq!(spec.rounds, 120);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), E13_EPSILONS.len() * E13_FAULT_FRACTIONS.len());
        // Row-major: epsilon outer, fault fraction inner.
        assert_eq!(cells[0].epsilon(), E13_EPSILONS[0]);
        assert_eq!(cells[0].param_or("fault_fraction", -1.0), 0.0);
        assert_eq!(cells[1].param_or("fault_fraction", -1.0), 0.05);
        let last = cells.last().unwrap();
        assert_eq!(last.epsilon(), E13_EPSILONS[1]);
        assert_eq!(last.param_or("fault_fraction", -1.0), 0.3);
        for cell in &cells {
            assert_eq!(cell.faults, "byz:0.1");
        }
    }

    #[test]
    fn facade_rejects_a_backend_without_a_variant_naming_the_flag() {
        let cfg = ExperimentConfig {
            backend: Backend::Hybrid(4),
            ..tiny()
        };
        let result = std::panic::catch_unwind(|| backend_tables("e08", &cfg));
        let message = match result {
            Ok(_) => panic!("e08 on hybrid must be rejected"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
        };
        assert!(message.contains("--backend"), "{message}");
        assert!(message.contains("agents, dense"), "{message}");
    }

    #[test]
    fn facade_threads_the_exact_backend_value_into_the_sweep() {
        // `--backend hybrid:3` must run 3 tracked agents, not the builtin
        // spec's DEFAULT_HYBRID_TRACKED.
        let cfg = ExperimentConfig {
            backend: Backend::Hybrid(3),
            ..tiny()
        };
        let tables = backend_tables("e01", &cfg);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].to_markdown().contains("hybrid:3"));
    }
}
