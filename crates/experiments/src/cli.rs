//! The shared command-line convention of every experiment binary.
//!
//! Before this module each of the 14 binaries re-implemented its own
//! argument handling; they now all call [`run_tables`] (or [`parse_config`]
//! directly) so a flag means the same thing everywhere:
//!
//! | flag                         | effect                                               |
//! |------------------------------|------------------------------------------------------|
//! | `--full`                     | full-scale grids and trials (default: quick)         |
//! | `--backend agents\|dense\|hybrid:k` | engine selection where a variant exists       |
//! | `--trials N`                 | trials per configuration point                       |
//! | `--threads N`                | worker-thread cap (`FLIP_THREADS` env is honoured when absent) |
//! | `--seed N`                   | base seed override                                   |
//! | `--rounds N`                 | round-cap override (`sweep gen` applies it to generated specs) |
//! | `--faults DIRECTIVE`         | fault injection (`byz:F`, `equiv:F`, `flip:F`, `crash:F@R`) where supported |
//! | `--allow-supermajority-faults` | waive the `f/n < 1/3` sanity bound on `--faults`   |
//!
//! All flags accept both `--flag value` and `--flag=value`.  Unknown `--`
//! flags panic with a usage message — a typo must never silently run a
//! default configuration.  Zero values for `--trials`, `--threads` and
//! `--rounds` are rejected with an explicit message: a zero would not error
//! downstream, it would silently produce empty runs and empty aggregates.
//! The same convention covers `--faults`: a zero fraction (`byz:0`) and an
//! unknown fault kind both panic naming the flag, and a fraction at or past
//! the Byzantine-consensus bound `1/3` needs the explicit
//! `--allow-supermajority-faults` waiver (the E13 family sweeps past the
//! bound on purpose; a stray `byz:0.4` elsewhere is a typo).

use crate::{require_agents_backend, ExperimentConfig};
use analysis::Table;

/// Parses the shared flags into an [`ExperimentConfig`].
///
/// # Panics
///
/// Panics with a usage message on unknown `--` flags, missing values or
/// unparseable numbers.
#[must_use]
pub fn parse_config<I: IntoIterator<Item = String>>(args: I) -> ExperimentConfig {
    let args: Vec<String> = args.into_iter().collect();
    let mut cfg = if args.iter().any(|a| a == "--full") {
        ExperimentConfig::full()
    } else {
        ExperimentConfig::quick()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--full" || !arg.starts_with('-') {
            // Bare words (argv[0]-style) pass through; `--full` was handled
            // above.  Anything starting with `-` falls through to the flag
            // match so a single-dash typo (`-threads 4`) fails loudly
            // instead of silently running a default configuration.
            continue;
        }
        let (flag, value) = match arg.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = || {
            value.clone().unwrap_or_else(|| {
                iter.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
                    .clone()
            })
        };
        match flag {
            "--backend" => {
                cfg.backend = value()
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid --backend value: {e}"));
            }
            "--trials" => {
                cfg.trials = parse_number(flag, &value());
                assert!(
                    cfg.trials >= 1,
                    "--trials must be >= 1: zero trials would silently produce empty tables"
                );
            }
            "--threads" => {
                let threads: usize = parse_number(flag, &value());
                assert!(threads >= 1, "--threads must be >= 1");
                cfg.threads = Some(threads);
            }
            "--rounds" => {
                let rounds: u64 = parse_number(flag, &value());
                assert!(
                    rounds >= 1,
                    "--rounds must be >= 1: a zero round cap would silently produce \
                     empty runs and empty aggregates"
                );
                cfg.rounds = Some(rounds);
            }
            "--seed" => cfg.base_seed = parse_number(flag, &value()),
            "--faults" => {
                let directive = value();
                cfg.faults = Some(
                    directive
                        .parse()
                        .unwrap_or_else(|e| panic!("invalid --faults value `{directive}`: {e}")),
                );
            }
            "--allow-supermajority-faults" => cfg.allow_supermajority_faults = true,
            other => panic!(
                "unknown flag `{other}`; supported: --full --backend --trials --threads \
                 --seed --rounds --faults --allow-supermajority-faults"
            ),
        }
    }
    if let Some(spec) = cfg.faults {
        assert!(
            spec.fraction < 1.0 / 3.0 || cfg.allow_supermajority_faults,
            "--faults {spec} puts {:.1}% of the population at or past the Byzantine-consensus \
             bound f/n < 1/3; pass --allow-supermajority-faults if charting the collapse is \
             intentional",
            spec.fraction * 100.0
        );
    }
    cfg
}

fn parse_number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| panic!("invalid {flag} value `{raw}`: expected a number"))
}

/// The whole body of an experiment binary: parse `std::env::args`, enforce
/// the backend guard for agents-only experiments, run, print markdown.
///
/// # Panics
///
/// Panics on invalid flags (see [`parse_config`]) and when `agents_only`
/// rejects a `--backend dense` selection.
pub fn run_tables<F>(binary: &str, agents_only: bool, experiment: F)
where
    F: FnOnce(&ExperimentConfig) -> Vec<Table>,
{
    let cfg = parse_config(std::env::args().skip(1));
    require_no_rounds_override(&cfg, binary);
    if agents_only {
        require_agents_backend(&cfg, binary);
    }
    for table in experiment(&cfg) {
        println!("{}", table.to_markdown());
    }
}

/// Rejects a `--rounds` override on surfaces that do not consume it.
///
/// The experiment binaries run each experiment's own schedule; only
/// `sweep gen` applies `cfg.rounds` (to the generated spec).  Accepting the
/// flag and ignoring it would silently run a default configuration — the
/// exact failure mode this module exists to prevent.
///
/// # Panics
///
/// Panics when `cfg.rounds` is set.
pub fn require_no_rounds_override(cfg: &ExperimentConfig, binary: &str) {
    assert!(
        cfg.rounds.is_none(),
        "`{binary}` runs its experiment's own round schedule and does not honour \
         --rounds; the override only applies to `sweep gen`"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use flip_model::Backend;

    fn parse(args: &[&str]) -> ExperimentConfig {
        parse_config(args.iter().map(ToString::to_string))
    }

    #[test]
    fn extended_flags_parse_in_both_spellings() {
        let cfg = parse(&["--trials", "17", "--threads=2", "--seed", "99"]);
        assert_eq!(cfg.trials, 17);
        assert_eq!(cfg.threads, Some(2));
        assert_eq!(cfg.base_seed, 99);
        assert!(cfg.quick);

        let cfg = parse(&["--full", "--trials=3", "--backend=dense"]);
        assert_eq!(cfg.trials, 3);
        assert!(!cfg.quick);
        assert_eq!(cfg.backend, Backend::Dense);
        assert_eq!(cfg.threads, None);

        let cfg = parse(&["--backend", "hybrid:64"]);
        assert_eq!(cfg.backend, Backend::Hybrid(64));
    }

    #[test]
    fn hybrid_backend_without_a_tracked_count_fails_naming_the_flag() {
        // `--backend hybrid` and `--backend hybrid:0` would both run with a
        // silently-chosen subpopulation if defaulted; they must panic with a
        // message that names the flag (the PR-5 zero-value convention).
        for bad in [vec!["--backend", "hybrid"], vec!["--backend=hybrid:0"]] {
            let owned: Vec<String> = bad.iter().map(ToString::to_string).collect();
            let result = std::panic::catch_unwind(|| parse_config(owned.clone()));
            let message = match result {
                Ok(_) => panic!("{bad:?} must be rejected"),
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                    .unwrap_or_default(),
            };
            assert!(
                message.contains("--backend") && message.contains("subpopulation"),
                "{bad:?} rejection must name the flag and the missing size, got: {message}"
            );
        }
    }

    #[test]
    fn faults_flag_parses_every_directive_kind() {
        use flip_model::{FaultKind, FaultSpec};
        let cfg = parse(&["--faults", "byz:0.1"]);
        assert_eq!(
            cfg.faults,
            Some(FaultSpec::new(FaultKind::Byzantine, 0.1).unwrap())
        );
        assert!(!cfg.allow_supermajority_faults);
        let cfg = parse(&["--faults=crash:0.05@20"]);
        assert_eq!(
            cfg.faults,
            Some(FaultSpec::new(FaultKind::Crash { round: 20 }, 0.05).unwrap())
        );
        assert_eq!(parse(&[]).faults, None);
    }

    #[test]
    fn degenerate_fault_directives_fail_naming_the_flag() {
        // `--faults byz:0` would silently run a fault-free experiment that
        // claims to be faulty, and an unknown kind must not be guessed at —
        // both reject with a message naming `--faults` (the PR-5 zero-value
        // convention, same as `hybrid:0` above).
        for bad in [
            vec!["--faults", "byz:0"],
            vec!["--faults=byz:0"],
            vec!["--faults", "gremlin:0.1"],
            vec!["--faults", "byz:1.5"],
            vec!["--faults", "crash:0.1"],
        ] {
            let owned: Vec<String> = bad.iter().map(ToString::to_string).collect();
            let result = std::panic::catch_unwind(|| parse_config(owned.clone()));
            let message = match result {
                Ok(_) => panic!("{bad:?} must be rejected"),
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                    .unwrap_or_default(),
            };
            assert!(
                message.contains("--faults"),
                "{bad:?} rejection must name the flag, got: {message}"
            );
        }
    }

    #[test]
    fn supermajority_fault_fractions_need_the_explicit_waiver() {
        // f/n >= 1/3 is past what any binary consensus can tolerate, so it
        // is almost always a typo; the waiver flag makes the intent loud.
        let result = std::panic::catch_unwind(|| parse(&["--faults", "byz:0.4"]));
        let message = match result {
            Ok(_) => panic!("byz:0.4 without the waiver must be rejected"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                .unwrap_or_default(),
        };
        assert!(
            message.contains("--faults") && message.contains("--allow-supermajority-faults"),
            "rejection must name both flags, got: {message}"
        );
        let cfg = parse(&["--faults", "byz:0.4", "--allow-supermajority-faults"]);
        assert!(cfg.allow_supermajority_faults);
        assert_eq!(cfg.faults.unwrap().fraction, 0.4);
        // Just under the bound needs no waiver.
        assert!(parse(&["--faults", "byz:0.33"]).faults.is_some());
    }

    #[test]
    fn non_flag_arguments_are_ignored() {
        // argv[0]-style words pass through untouched.
        let cfg = parse(&["e01", "quick"]);
        assert_eq!(cfg, ExperimentConfig::quick());
    }

    #[test]
    fn rounds_override_parses_and_reaches_the_config() {
        let cfg = parse(&["--rounds", "500"]);
        assert_eq!(cfg.rounds, Some(500));
        let cfg = parse(&["--rounds=1"]);
        assert_eq!(cfg.rounds, Some(1));
        assert_eq!(parse(&[]).rounds, None);
    }

    #[test]
    fn experiment_binaries_reject_an_unconsumed_rounds_override() {
        // `e01 --rounds 50` must not silently run e01's default schedule.
        require_no_rounds_override(&parse(&[]), "e01");
        let cfg = parse(&["--rounds", "50"]);
        let result = std::panic::catch_unwind(|| require_no_rounds_override(&cfg, "e01"));
        assert!(result.is_err(), "ignored --rounds must be rejected loudly");
    }

    #[test]
    fn zero_valued_flags_are_rejected_with_guidance() {
        // A zero here would not error downstream — it would silently run an
        // empty experiment — so the parser must refuse with a message that
        // names the flag.
        for (args, needle) in [
            (vec!["--trials", "0"], "--trials"),
            (vec!["--trials=0"], "--trials"),
            (vec!["--threads", "0"], "--threads"),
            (vec!["--rounds", "0"], "--rounds"),
            (vec!["--rounds=0"], "--rounds"),
        ] {
            let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
            let result = std::panic::catch_unwind(|| parse_config(owned.clone()));
            let message = match result {
                Ok(_) => panic!("{args:?} must be rejected"),
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                    .unwrap_or_default(),
            };
            assert!(
                message.contains(needle),
                "{args:?} rejection must name the flag, got: {message}"
            );
        }
    }

    #[test]
    fn invalid_inputs_fail_loudly() {
        for bad in [
            vec!["--trials"],
            vec!["--trials", "zero"],
            vec!["--trials=0"],
            vec!["--threads", "0"],
            vec!["--rounds", "none"],
            vec!["--verbose"],
            vec!["--seed", "abc"],
            // Single-dash typos must not silently run defaults.
            vec!["-threads", "4"],
            vec!["-full"],
        ] {
            let owned: Vec<String> = bad.iter().map(ToString::to_string).collect();
            let result = std::panic::catch_unwind(|| parse_config(owned.clone()));
            assert!(result.is_err(), "{bad:?} must be rejected");
        }
    }
}
