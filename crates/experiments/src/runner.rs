//! A deterministic multi-trial runner that fans independent simulations out
//! over threads.

use parking_lot::Mutex;

/// Runs independent trials in parallel with stable per-trial seeds.
///
/// Results are returned in trial order regardless of which thread produced
/// them, so a parallel run is indistinguishable from a sequential one.
///
/// # Example
///
/// ```
/// use experiments::TrialRunner;
///
/// let runner = TrialRunner::new(8);
/// let squares = runner.run(|trial| trial * trial);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct TrialRunner {
    trials: u64,
    threads: usize,
}

impl TrialRunner {
    /// Creates a runner for the given number of trials, using as many threads
    /// as the machine offers — but never more threads than trials: a 4-trial
    /// run on a 64-core machine gets 4 worker threads, not 64, since the
    /// surplus threads would only be spawned to exit immediately.
    #[must_use]
    pub fn new(trials: u64) -> Self {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let cap = usize::try_from(trials).unwrap_or(usize::MAX);
        Self {
            trials,
            threads: available.min(cap).max(1),
        }
    }

    /// Overrides the number of worker threads (useful in tests).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of trials this runner executes.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The number of worker threads a parallel run will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task` once per trial index (0-based) and collects the results in
    /// trial order.
    pub fn run<T, F>(&self, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        if self.trials == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(self.trials as usize).max(1);
        if threads == 1 {
            return (0..self.trials).map(task).collect();
        }

        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..self.trials).map(|_| None).collect());
        let next = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let trial = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if trial >= self.trials {
                        break;
                    }
                    let value = task(trial);
                    results.lock()[trial as usize] = Some(value);
                });
            }
        });

        results
            .into_inner()
            .into_iter()
            .map(|v| v.expect("every trial index is filled exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_trials_yield_nothing() {
        let runner = TrialRunner::new(0);
        let out: Vec<u64> = runner.run(|t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let runner = TrialRunner::new(64).with_threads(4);
        let out = runner.run(|t| t * 3);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn single_threaded_and_parallel_runs_agree() {
        let sequential = TrialRunner::new(16).with_threads(1).run(|t| t * t + 1);
        let parallel = TrialRunner::new(16).with_threads(8).run(|t| t * t + 1);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn trial_count_is_reported() {
        assert_eq!(TrialRunner::new(7).trials(), 7);
        assert!(TrialRunner::new(7).with_threads(0).threads >= 1);
    }

    #[test]
    fn worker_threads_never_exceed_trials() {
        assert_eq!(TrialRunner::new(1).threads(), 1);
        assert!(TrialRunner::new(4).threads() <= 4);
        // Zero trials still leaves a (never-used) worker so the struct stays valid.
        assert_eq!(TrialRunner::new(0).threads(), 1);
        // The explicit override remains available for tests that want more.
        assert_eq!(TrialRunner::new(2).with_threads(8).threads(), 8);
    }
}
