//! E4–E7: the per-stage claims — phase-0 seeding (Claim 2.2), layer growth
//! (Claim 2.4 / Corollaries 2.5–2.7), per-level bias (Claim 2.8 / Lemma 2.3)
//! and the Stage II boost (Lemmas 2.11 and 2.14).

use analysis::estimators::{mean, SuccessRate};
use analysis::stirling::{exact_majority_boost, lemma_2_11_lower_bound};
use analysis::tables::fmt_float;
use analysis::theory;
use analysis::Table;
use breathe::{BroadcastProtocol, DetailedOutcome, Multipliers, Params};
use flip_model::{BinarySymmetricChannel, Channel, Opinion, SimRng};
use rand::Rng;

use crate::ExperimentConfig;

fn detailed_runs(cfg: &ExperimentConfig, point: u64, params: &Params) -> Vec<DetailedOutcome> {
    let protocol = BroadcastProtocol::new(params.clone(), Opinion::One);
    let runner = cfg.runner();
    runner.run(|trial| {
        protocol
            .run_detailed(cfg.seed_for(point, trial))
            .expect("simulation construction cannot fail for valid parameters")
    })
}

/// **E4 (Claim 2.2)** — after phase 0 the activated set has size in
/// `[βs/3, βs]` and bias at least `ε/2`.
#[must_use]
pub fn e04_phase0_seeding(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(1_000, 4_000);
    let epsilons = [0.15, 0.2, 0.3];
    let mut table = Table::new(
        "E4: phase-0 activation and bias (Claim 2.2)",
        &[
            "epsilon",
            "beta_s",
            "mean X0",
            "bound [beta_s/3, beta_s]",
            "mean bias eps_0",
            "claimed bias >= eps/2",
            "claim holds (rate)",
        ],
    );
    for (idx, &epsilon) in epsilons.iter().enumerate() {
        let params = Params::practical(n, epsilon).expect("valid parameters");
        let (lo, hi, min_bias) = theory::claim_2_2_bounds(params.beta_s(), epsilon);
        let outcomes = detailed_runs(cfg, 400 + idx as u64, &params);
        let mut x0 = Vec::new();
        let mut bias0 = Vec::new();
        let mut holds = SuccessRate::new();
        for outcome in &outcomes {
            let level0 = outcome.levels[0];
            x0.push(level0.activated as f64);
            bias0.push(level0.bias());
            holds.record(
                level0.activated as f64 >= lo
                    && level0.activated as f64 <= hi
                    && level0.bias() >= min_bias,
            );
        }
        table.push_row(&[
            fmt_float(epsilon),
            params.beta_s().to_string(),
            fmt_float(mean(&x0)),
            format!("[{}, {}]", fmt_float(lo), fmt_float(hi)),
            fmt_float(mean(&bias0)),
            fmt_float(min_bias),
            fmt_float(holds.estimate()),
        ]);
    }
    table
}

/// Parameters that expose several intermediate Stage I phases (`T ≥ 2`) at a
/// population size that simulates quickly.
///
/// The paper's constants make the early phases so long that, at laptop scale,
/// the schedule degenerates to `T = 0`; shrinking `s` and `β` (while keeping
/// the structure intact) restores a multi-layer spreading stage so that the
/// layer-growth and bias-decay claims can be observed.
#[must_use]
pub fn layered_params(n: usize, epsilon: f64) -> Params {
    let multipliers = Multipliers {
        s_mult: 0.6,
        beta_mult: 1.2,
        f_mult: 2.0,
        gamma_mult: 6.0,
        extra_boost_phases: 3,
        final_mult: 3.0,
    };
    Params::with_multipliers(n, epsilon, multipliers).expect("valid parameters")
}

/// **E5 (Claim 2.4, Corollaries 2.5–2.7)** — the activated population grows by
/// a factor close to `β + 1` per phase and everyone is activated by the end of
/// Stage I.
#[must_use]
pub fn e05_layer_growth(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(8_000, 20_000);
    let epsilon = 0.45;
    let params = layered_params(n, epsilon);
    let outcomes = detailed_runs(cfg, 500, &params);
    let beta = params.beta();
    let mut table = Table::new(
        "E5: Stage I layer growth (Claim 2.4)",
        &[
            "level i",
            "mean X_i (cumulative activated)",
            "lower bound (beta+1)^i X0 / 16",
            "upper bound (beta+1)^i X0",
            "within bounds (rate)",
        ],
    );
    let levels = outcomes[0].levels.len();
    // X_i is cumulative over levels 0..=i, including the source itself.
    for level in 0..levels.saturating_sub(1) {
        let mut xi = Vec::new();
        let mut holds = SuccessRate::new();
        for outcome in &outcomes {
            let x0: usize = outcome.levels[0].activated + 1;
            let cumulative: usize = outcome.levels[..=level]
                .iter()
                .map(|l| l.activated)
                .sum::<usize>()
                + 1;
            let (lo, hi) = theory::claim_2_4_bounds(beta, x0 as u64, level as u32);
            xi.push(cumulative as f64);
            holds.record(cumulative as f64 >= lo && cumulative as f64 <= hi + 1.0);
        }
        let x0_mean = mean(
            &outcomes
                .iter()
                .map(|o| o.levels[0].activated as f64 + 1.0)
                .collect::<Vec<_>>(),
        );
        let (lo, hi) = theory::claim_2_4_bounds(beta, x0_mean.round() as u64, level as u32);
        table.push_row(&[
            level.to_string(),
            fmt_float(mean(&xi)),
            fmt_float(lo),
            fmt_float(hi),
            fmt_float(holds.estimate()),
        ]);
    }
    // Final row: everyone activated at the end of Stage I (Corollary 2.6).
    let mut all_active = SuccessRate::new();
    for outcome in &outcomes {
        all_active.record(outcome.outcome.active_after_stage1 == params.n());
    }
    table.push_row(&[
        "end of Stage I".to_string(),
        format!("all {} agents activated", params.n()),
        String::new(),
        String::new(),
        fmt_float(all_active.estimate()),
    ]);
    table
}

/// **E6 (Claim 2.8, Lemma 2.3)** — the per-level bias decays no faster than
/// `ε_i ≥ ε^{i+1}/2` and the end-of-Stage-I population bias is positive and of
/// order `√(ln n / n)`.
#[must_use]
pub fn e06_bias_decay(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(4_000, 10_000);
    let epsilon = 0.45;
    let params = layered_params(n, epsilon);
    let outcomes = detailed_runs(cfg, 600, &params);
    let levels = outcomes[0].levels.len();
    let mut table = Table::new(
        "E6: per-level bias decay (Claim 2.8) and end-of-Stage-I bias (Lemma 2.3)",
        &[
            "level i",
            "mean bias eps_i",
            "claimed lower bound eps^{i+1}/2",
            "bound holds (rate)",
        ],
    );
    for level in 0..levels {
        let bound = theory::claim_2_8_bias_lower_bound(epsilon, level as u32);
        let mut biases = Vec::new();
        let mut holds = SuccessRate::new();
        for outcome in &outcomes {
            let stats = outcome.levels[level];
            if stats.activated == 0 {
                continue;
            }
            biases.push(stats.bias());
            holds.record(stats.bias() >= bound);
        }
        if biases.is_empty() {
            continue;
        }
        table.push_row(&[
            level.to_string(),
            fmt_float(mean(&biases)),
            fmt_float(bound),
            fmt_float(holds.estimate()),
        ]);
    }
    // End-of-Stage-I population bias vs the Lemma 2.3 scale.
    let final_biases: Vec<f64> = outcomes
        .iter()
        .map(|o| o.outcome.fraction_correct_after_stage1 - 0.5)
        .collect();
    table.push_row(&[
        "end of Stage I".to_string(),
        fmt_float(mean(&final_biases)),
        format!(
            "scale sqrt(ln n / n) = {}",
            fmt_float(theory::stage1_final_bias(n, 1.0))
        ),
        fmt_float(
            final_biases.iter().filter(|b| **b > 0.0).count() as f64 / final_biases.len() as f64,
        ),
    ]);
    table
}

/// Monte-Carlo estimate of the probability that the majority of `gamma` noisy
/// samples from a population with bias `delta` is correct.
fn empirical_boost(gamma: u64, epsilon: f64, delta: f64, trials: u32, seed: u64) -> f64 {
    let channel = BinarySymmetricChannel::from_epsilon(epsilon).expect("valid epsilon");
    let mut rng = SimRng::from_seed(seed);
    let mut correct_majorities = 0u32;
    for _ in 0..trials {
        let mut correct_samples = 0u64;
        for _ in 0..gamma {
            // Sample an agent from a population with bias delta, then transmit.
            let opinion_correct = rng.gen::<f64>() < 0.5 + delta;
            let sent = if opinion_correct {
                Opinion::One
            } else {
                Opinion::Zero
            };
            if channel.transmit(sent, &mut rng) == Opinion::One {
                correct_samples += 1;
            }
        }
        if 2 * correct_samples > gamma {
            correct_majorities += 1;
        }
    }
    f64::from(correct_majorities) / f64::from(trials)
}

/// **E7 (Lemmas 2.11 and 2.14)** — the Stage II boost: measured
/// majority-correctness versus the paper's `min{1/2 + 4δ, ...}` bound, plus the
/// bias trajectory of a real execution.
#[must_use]
pub fn e07_stage2_boost(cfg: &ExperimentConfig) -> Vec<Table> {
    let epsilon = 0.2;
    let params = Params::practical(cfg.pick(1_000, 2_000), epsilon).expect("valid parameters");
    let gamma = params.gamma();
    let deltas = [0.005, 0.01, 0.02, 0.05, 0.1, 0.25];
    let mc_trials = cfg.pick(4_000u32, 20_000u32);

    let mut sampling = Table::new(
        "E7a: majority-of-noisy-samples boost (Lemma 2.11)",
        &[
            "population bias delta",
            "gamma (samples)",
            "measured Pr[majority correct]",
            "exact (binomial)",
            "paper bound min{1/2+4d, 1/2+1/100}",
        ],
    );
    for (idx, &delta) in deltas.iter().enumerate() {
        let measured = empirical_boost(
            gamma,
            epsilon,
            delta,
            mc_trials,
            cfg.seed_for(700, idx as u64),
        );
        sampling.push_row(&[
            fmt_float(delta),
            gamma.to_string(),
            fmt_float(measured),
            fmt_float(exact_majority_boost(gamma, epsilon, delta)),
            fmt_float(lemma_2_11_lower_bound(delta)),
        ]);
    }

    // Bias trajectory over the boosting phases of one detailed execution.
    let mut trajectory = Table::new(
        "E7b: bias trajectory over Stage II phases (Lemma 2.14)",
        &[
            "boosting phase",
            "mean fraction correct",
            "mean bias",
            "growth factor vs previous phase",
        ],
    );
    let outcomes = detailed_runs(cfg, 710, &params);
    let spreading_count = breathe::Schedule::broadcast(&params).spreading_phase_count();
    let phases = outcomes[0].fraction_correct_after_phase.len();
    let mut previous_bias: Option<f64> = None;
    for phase in (spreading_count - 1)..phases {
        let fracs: Vec<f64> = outcomes
            .iter()
            .map(|o| o.fraction_correct_after_phase[phase])
            .collect();
        let frac = mean(&fracs);
        let bias = frac - 0.5;
        let label = if phase == spreading_count - 1 {
            "end of Stage I".to_string()
        } else {
            format!("{}", phase - spreading_count + 1)
        };
        let growth = previous_bias
            .filter(|p| *p > 0.0)
            .map(|p| fmt_float(bias / p))
            .unwrap_or_default();
        trajectory.push_row(&[label, fmt_float(frac), fmt_float(bias), growth]);
        previous_bias = Some(bias);
    }

    vec![sampling, trajectory]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            trials: 2,
            base_seed: 3,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn layered_params_expose_intermediate_phases() {
        let params = layered_params(20_000, 0.45);
        assert!(params.stage1_intermediate_phases() >= 2);
    }

    #[test]
    fn e04_reports_one_row_per_epsilon_and_claims_mostly_hold() {
        let cfg = tiny_config();
        let table = e04_phase0_seeding(&cfg);
        assert_eq!(table.len(), 3);
        for row in table.rows() {
            let rate: f64 = row[6].parse().unwrap();
            assert!(rate >= 0.5, "claim 2.2 should usually hold, row = {row:?}");
        }
    }

    #[test]
    fn empirical_boost_exceeds_half_for_positive_bias() {
        let p = empirical_boost(101, 0.2, 0.1, 2_000, 9);
        assert!(p > 0.6, "p = {p}");
        let fair = empirical_boost(101, 0.2, 0.0, 2_000, 9);
        assert!((fair - 0.5).abs() < 0.06, "fair = {fair}");
    }
}
