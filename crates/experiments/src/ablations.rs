//! Ablations of the protocol's design choices (DESIGN.md §"Key design
//! decisions"): how much of each ingredient — the initial bias handed over by
//! Stage I, the Stage II sample count `γ`, and the phase-0 length `βs` — is
//! actually needed for consensus.
//!
//! These are not claims made by the paper, but they probe exactly the
//! quantities its analysis identifies as critical: Stage II needs a starting
//! bias of `Ω(√(log n / n))` (Lemma 2.14's precondition), the boost needs
//! `γ = Ω(1/ε²)` samples (Lemma 2.11), and phase 0 needs `βs = Ω(log n / ε²)`
//! rounds to seed a reliable committee (Claim 2.2).

use analysis::estimators::{mean, SuccessRate};
use analysis::tables::fmt_float;
use analysis::Table;
use breathe::{BroadcastProtocol, InitialSet, MajorityConsensusProtocol, Multipliers, Params};
use flip_model::Opinion;

use crate::ExperimentConfig;

/// **A1 — how much initial bias does the boosting stage need?**
///
/// Every agent starts opinionated with the given bias towards the correct
/// opinion (i.e. Stage I is replaced by an oracle of varying quality) and only
/// the sampling/boosting machinery runs.  Consensus should appear once the
/// bias clears the `Θ(√(ln n / n))` threshold of Lemma 2.14 and fail well
/// below it — showing why a naive, bias-free start (immediate forwarding)
/// cannot be rescued by Stage II alone.
#[must_use]
pub fn a1_required_initial_bias(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(1_000, 2_000);
    let epsilon = 0.25;
    let params = Params::practical(n, epsilon).expect("valid parameters");
    let threshold = ((n as f64).ln() / n as f64).sqrt();
    let mut table = Table::new(
        "A1: consensus vs the bias handed to the boosting stage",
        &[
            "initial bias",
            "threshold sqrt(ln n / n)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    let biases = [0.002, 0.01, 0.03, 0.08, 0.2];
    for (idx, &bias) in biases.iter().enumerate() {
        // The whole population is the "initial set": Stage I degenerates to a
        // single re-broadcast phase and Stage II does all the work.
        let initial = InitialSet::with_bias(n, bias).expect("valid bias");
        let protocol = MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial)
            .expect("valid initial set");
        let runner = cfg.runner();
        let outcomes = runner.run(|trial| {
            protocol
                .run_with_seed(cfg.seed_for(2_000 + idx as u64, trial))
                .expect("simulation construction cannot fail")
        });
        let mut success = SuccessRate::new();
        let mut fractions = Vec::new();
        for o in &outcomes {
            success.record(o.all_correct);
            fractions.push(o.fraction_correct);
        }
        table.push_row(&[
            fmt_float(bias),
            fmt_float(threshold),
            fmt_float(mean(&fractions)),
            fmt_float(success.estimate()),
        ]);
    }
    table
}

/// **A2 — how large must the Stage II sample count `γ` be?**
///
/// Sweeps the `γ` multiplier while keeping everything else fixed.  Lemma 2.11
/// needs `γ = Ω(1/ε²)`; with too few samples per phase the per-phase boost
/// drops below the noise floor and consensus becomes unreliable.
#[must_use]
pub fn a2_gamma_requirement(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(600, 1_500);
    let epsilon = 0.2;
    let mut table = Table::new(
        "A2: consensus vs the Stage II sample multiplier (gamma = mult / eps^2)",
        &[
            "gamma multiplier",
            "gamma (samples per phase)",
            "mean fraction correct",
            "all-correct rate",
        ],
    );
    for (idx, &gamma_mult) in [0.25f64, 0.5, 1.0, 2.0, 6.0].iter().enumerate() {
        let multipliers = Multipliers {
            gamma_mult,
            ..Multipliers::practical()
        };
        let params = Params::with_multipliers(n, epsilon, multipliers).expect("valid parameters");
        let protocol = BroadcastProtocol::new(params.clone(), Opinion::One);
        let runner = cfg.runner();
        let outcomes = runner.run(|trial| {
            protocol
                .run_with_seed(cfg.seed_for(2_100 + idx as u64, trial))
                .expect("simulation construction cannot fail")
        });
        let mut success = SuccessRate::new();
        let mut fractions = Vec::new();
        for o in &outcomes {
            success.record(o.all_correct);
            fractions.push(o.fraction_correct);
        }
        table.push_row(&[
            fmt_float(gamma_mult),
            params.gamma().to_string(),
            fmt_float(mean(&fractions)),
            fmt_float(success.estimate()),
        ]);
    }
    table
}

/// **A3 — how long must phase 0 be?**
///
/// Sweeps the `βs` multiplier.  Claim 2.2 needs `βs = Ω(log n / ε²)` so that
/// the seed committee is both large enough and biased enough; with a very
/// short phase 0 the committee is too small and the downstream bias collapses.
#[must_use]
pub fn a3_phase0_requirement(cfg: &ExperimentConfig) -> Table {
    let n = cfg.pick(600, 1_500);
    let epsilon = 0.2;
    let mut table = Table::new(
        "A3: Stage I output bias vs the phase-0 length multiplier (beta_s = mult * ln n / eps^2)",
        &[
            "s multiplier",
            "beta_s (rounds)",
            "mean bias after Stage I",
            "mean fraction correct at the end",
            "all-correct rate",
        ],
    );
    for (idx, &s_mult) in [0.05f64, 0.2, 0.5, 1.5].iter().enumerate() {
        let multipliers = Multipliers {
            s_mult,
            ..Multipliers::practical()
        };
        let params = Params::with_multipliers(n, epsilon, multipliers).expect("valid parameters");
        let protocol = BroadcastProtocol::new(params.clone(), Opinion::One);
        let runner = cfg.runner();
        let outcomes = runner.run(|trial| {
            protocol
                .run_with_seed(cfg.seed_for(2_200 + idx as u64, trial))
                .expect("simulation construction cannot fail")
        });
        let mut success = SuccessRate::new();
        let mut stage1_bias = Vec::new();
        let mut fractions = Vec::new();
        for o in &outcomes {
            success.record(o.all_correct);
            stage1_bias.push(o.fraction_correct_after_stage1 - 0.5);
            fractions.push(o.fraction_correct);
        }
        table.push_row(&[
            fmt_float(s_mult),
            params.beta_s().to_string(),
            fmt_float(mean(&stage1_bias)),
            fmt_float(mean(&fractions)),
            fmt_float(success.estimate()),
        ]);
    }
    table
}

/// Runs all ablations.
#[must_use]
pub fn all(cfg: &ExperimentConfig) -> Vec<Table> {
    vec![
        a1_required_initial_bias(cfg),
        a2_gamma_requirement(cfg),
        a3_phase0_requirement(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            trials: 2,
            base_seed: 12,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn a1_large_bias_succeeds_and_reports_every_row() {
        let table = a1_required_initial_bias(&tiny());
        assert_eq!(table.len(), 5);
        let last = table.rows().last().unwrap();
        let fraction: f64 = last[2].parse().unwrap();
        assert!(fraction > 0.95, "row = {last:?}");
    }

    #[test]
    fn a2_full_sample_count_beats_a_starved_one() {
        let table = a2_gamma_requirement(&tiny());
        let first: f64 = table.rows().first().unwrap()[2].parse().unwrap();
        let last: f64 = table.rows().last().unwrap()[2].parse().unwrap();
        assert!(last >= first, "starved {first} vs full {last}");
        assert!(last > 0.95);
    }

    #[test]
    fn a3_reports_every_multiplier_and_the_full_length_phase0_succeeds() {
        let table = a3_phase0_requirement(&tiny());
        assert_eq!(table.len(), 4);
        let last = table.rows().last().unwrap();
        let fraction: f64 = last[3].parse().unwrap();
        assert!(fraction > 0.95, "row = {last:?}");
        // beta_s grows with the multiplier.
        let beta_first: u64 = table.rows().first().unwrap()[1].parse().unwrap();
        let beta_last: u64 = last[1].parse().unwrap();
        assert!(beta_last > beta_first);
    }
}
