//! The resumable result store: a manifest plus JSONL shards.
//!
//! Layout of a store directory:
//!
//! ```text
//! out/
//!   manifest.json          # {"format":1,"sweep_hash":"…","spec":{…}}
//!   shards/
//!     shard-0001-00.jsonl  # one CellRecord per line, appended + flushed
//!     shard-0001-01.jsonl  #   as cells complete (generation 1, worker 1)
//!     shard-0002-00.jsonl  # a resumed run appends a new generation
//! ```
//!
//! Each worker thread owns one shard file per run *generation*, so no line is
//! ever written concurrently and no lock guards the hot path.  A completed
//! cell is checkpointed by appending its record and flushing; a run killed
//! mid-write leaves at most a torn **final** line per shard, which the loader
//! drops (the cell simply re-runs on resume).  Because every record is a
//! deterministic function of its hash-addressed spec, re-running loses
//! nothing and the final export is byte-identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::aggregate::CellRecord;
use crate::error::SweepError;
use crate::json::{parse, Json};
use crate::observe::CellTelemetry;
use crate::spec::SweepSpec;

/// The store format version written to manifests.
pub const STORE_FORMAT: u64 = 1;

/// A sweep's on-disk result store.
#[derive(Debug)]
pub struct SweepStore {
    dir: PathBuf,
    sweep_hash: String,
}

impl SweepStore {
    /// Creates (or re-opens) the store for `spec` at `dir`.
    ///
    /// A fresh directory gets a manifest; an existing one must carry the
    /// same sweep hash — pointing a different spec at an existing store is
    /// an error, never silent reuse.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on filesystem failures and
    /// [`SweepError::Store`] on a manifest/spec mismatch.
    pub fn create(dir: &Path, spec: &SweepSpec) -> Result<Self, SweepError> {
        fs::create_dir_all(dir.join("shards"))?;
        let manifest_path = dir.join("manifest.json");
        let sweep_hash = spec.hash_hex();
        if manifest_path.exists() {
            let (existing_hash, _) = read_manifest(&manifest_path)?;
            if existing_hash != sweep_hash {
                return Err(SweepError::Store(format!(
                    "store at {} holds sweep {existing_hash}, but the given spec hashes to \
                     {sweep_hash}; use a fresh --out directory for an edited spec",
                    dir.display()
                )));
            }
        } else {
            let manifest = Json::object(vec![
                ("format".into(), Json::UInt(STORE_FORMAT)),
                ("sweep_hash".into(), Json::Str(sweep_hash.clone())),
                ("spec".into(), spec.to_json()),
            ]);
            atomic_write(&manifest_path, manifest.to_string().as_bytes())?;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            sweep_hash,
        })
    }

    /// Opens an existing store and returns it with the spec its manifest
    /// recorded (what `sweep resume` and `sweep export` run from).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] when the directory has no valid
    /// manifest.
    pub fn open(dir: &Path) -> Result<(Self, SweepSpec), SweepError> {
        let (sweep_hash, spec) = read_manifest(&dir.join("manifest.json"))?;
        Ok((
            Self {
                dir: dir.to_path_buf(),
                sweep_hash,
            },
            spec,
        ))
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sweep hash this store is bound to.
    #[must_use]
    pub fn sweep_hash(&self) -> &str {
        &self.sweep_hash
    }

    /// Loads every persisted cell record, keyed by cell hash.
    ///
    /// Shards are read in sorted filename order.  A record whose hash
    /// appears twice keeps the later read (identical by construction).  A
    /// torn **final** line — the signature of a killed run — is dropped;
    /// a malformed line anywhere else is corruption and fails loudly.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on read failures, [`SweepError::Store`]
    /// on mid-file corruption.
    pub fn load_cells(&self) -> Result<BTreeMap<String, CellRecord>, SweepError> {
        let mut cells = BTreeMap::new();
        let shards_dir = self.dir.join("shards");
        let mut paths: Vec<PathBuf> = fs::read_dir(&shards_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let content = fs::read_to_string(&path)?;
            let lines: Vec<&str> = content.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match CellRecord::from_json_line(line) {
                    Ok(record) => {
                        cells.insert(record.hash.clone(), record);
                    }
                    Err(err) if i + 1 == lines.len() && !content.ends_with('\n') => {
                        // Torn final line from a killed writer: the cell
                        // never checkpointed, so resuming re-runs it.
                        let _ = err;
                    }
                    Err(err) => {
                        return Err(SweepError::Store(format!(
                            "{}:{}: {err}",
                            path.display(),
                            i + 1
                        )));
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Opens one shard writer per worker for a new run generation.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when the shards directory is unreadable.
    pub fn open_shards(&self, workers: usize) -> Result<Vec<ShardWriter>, SweepError> {
        let shards_dir = self.dir.join("shards");
        let generation = next_generation(&shards_dir, "shard-")?;
        Ok((0..workers)
            .map(|worker| ShardWriter {
                path: shards_dir.join(format!("shard-{generation:04}-{worker:02}.jsonl")),
                file: None,
            })
            .collect())
    }

    /// Opens one telemetry shard writer per worker for a new run generation.
    ///
    /// Telemetry lives in its own `telemetry/` directory — [`Self::load_cells`]
    /// treats every `*.jsonl` under `shards/` as cell records, so profile
    /// data must never land there.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when the telemetry directory cannot be
    /// created or scanned.
    pub fn open_telemetry_shards(
        &self,
        workers: usize,
    ) -> Result<Vec<TelemetryShardWriter>, SweepError> {
        let telemetry_dir = self.dir.join("telemetry");
        fs::create_dir_all(&telemetry_dir)?;
        let generation = next_generation(&telemetry_dir, "telemetry-")?;
        Ok((0..workers)
            .map(|worker| TelemetryShardWriter {
                path: telemetry_dir.join(format!("telemetry-{generation:04}-{worker:02}.jsonl")),
                file: None,
            })
            .collect())
    }

    /// Loads every persisted per-cell telemetry record, keyed by cell hash.
    ///
    /// Same tolerance contract as [`Self::load_cells`]: a torn final line is
    /// dropped (the kill signature), mid-file corruption fails loudly, and a
    /// store that never ran with telemetry yields an empty map.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on read failures, [`SweepError::Store`]
    /// on mid-file corruption.
    pub fn load_telemetry(&self) -> Result<BTreeMap<String, CellTelemetry>, SweepError> {
        let mut cells = BTreeMap::new();
        let telemetry_dir = self.dir.join("telemetry");
        if !telemetry_dir.is_dir() {
            return Ok(cells);
        }
        let mut paths: Vec<PathBuf> = fs::read_dir(&telemetry_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let content = fs::read_to_string(&path)?;
            let lines: Vec<&str> = content.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match CellTelemetry::from_json_line(line) {
                    Ok(record) => {
                        cells.insert(record.hash.clone(), record);
                    }
                    Err(err) if i + 1 == lines.len() && !content.ends_with('\n') => {
                        // Torn final line from a killed writer: that cell's
                        // profile is simply missing, never fatal.
                        let _ = err;
                    }
                    Err(err) => {
                        return Err(SweepError::Store(format!(
                            "{}:{}: {err}",
                            path.display(),
                            i + 1
                        )));
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// One past the highest run generation among `prefix`-named files in `dir`.
fn next_generation(dir: &Path, prefix: &str) -> Result<u64, SweepError> {
    let mut generation = 0u64;
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(gen) = name
            .to_str()
            .and_then(|s| s.strip_prefix(prefix))
            .and_then(|s| s.split('-').next())
            .and_then(|s| s.parse::<u64>().ok())
        {
            generation = generation.max(gen);
        }
    }
    Ok(generation + 1)
}

/// An append-only writer for one shard file.
///
/// The file is created lazily on the first append, so workers that never
/// receive a cell leave no empty shard behind.
#[derive(Debug)]
pub struct ShardWriter {
    path: PathBuf,
    file: Option<BufWriter<fs::File>>,
}

impl ShardWriter {
    /// Appends one completed cell and flushes — the checkpoint that makes a
    /// kill at any later instant lose at most the in-flight cells.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on write failures.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), SweepError> {
        if self.file.is_none() {
            self.file = Some(BufWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            ));
        }
        let file = self.file.as_mut().expect("just created");
        file.write_all(record.to_json_line().as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(())
    }

    /// The shard's path (for diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// An append-only writer for one telemetry shard file.
///
/// Same lifecycle as [`ShardWriter`]: lazy creation, append + flush per
/// record, so a kill leaves at most one torn final line.
#[derive(Debug)]
pub struct TelemetryShardWriter {
    path: PathBuf,
    file: Option<BufWriter<fs::File>>,
}

impl TelemetryShardWriter {
    /// Appends one cell's telemetry record and flushes.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on write failures.
    pub fn append(&mut self, record: &CellTelemetry) -> Result<(), SweepError> {
        if self.file.is_none() {
            self.file = Some(BufWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            ));
        }
        let file = self.file.as_mut().expect("just created");
        file.write_all(record.to_json_line().as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(())
    }

    /// The shard's path (for diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn read_manifest(path: &Path) -> Result<(String, SweepSpec), SweepError> {
    let text = fs::read_to_string(path).map_err(|e| {
        SweepError::Store(format!(
            "{} is not a sweep store ({e}); run `sweep run` first",
            path.display()
        ))
    })?;
    let doc = parse(&text).map_err(|e| SweepError::Store(format!("manifest: {e}")))?;
    let format = doc
        .get("format")
        .and_then(Json::as_u64)
        .ok_or_else(|| SweepError::Store("manifest has no `format`".into()))?;
    if format != STORE_FORMAT {
        return Err(SweepError::Store(format!(
            "manifest format {format} is not the supported {STORE_FORMAT}"
        )));
    }
    let hash = doc
        .get("sweep_hash")
        .and_then(Json::as_str)
        .ok_or_else(|| SweepError::Store("manifest has no `sweep_hash`".into()))?
        .to_string();
    let spec = SweepSpec::from_json(
        doc.get("spec")
            .ok_or_else(|| SweepError::Store("manifest has no `spec`".into()))?,
    )?;
    if spec.hash_hex() != hash {
        return Err(SweepError::Store(
            "manifest sweep_hash does not match its own spec".into(),
        ));
    }
    Ok((hash, spec))
}

/// Writes via a temp file + rename so a kill never leaves a half manifest.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), SweepError> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, SweepSpec};
    use flip_model::Backend;
    use std::collections::BTreeMap as Map;

    fn demo_spec() -> SweepSpec {
        SweepSpec {
            name: "store-demo".into(),
            protocol: "rumor".into(),
            backend: Backend::Agents,
            trials: 2,
            base_seed: 3,
            point_base: 0,
            rounds: 100,
            faults: String::new(),
            defaults: Map::from([("epsilon".to_string(), 0.2), ("informed".to_string(), 4.0)]),
            axes: vec![Axis {
                key: "n".into(),
                values: vec![64.0, 128.0],
            }],
        }
    }

    fn demo_record(hash: &str, point: u64) -> CellRecord {
        let trials = vec![vec![("x", 1.0)], vec![("x", 3.0)]];
        CellRecord::from_trials(hash.to_string(), point, &trials)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sweep-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_open_and_reload_round_trip() {
        let dir = temp_dir("roundtrip");
        let spec = demo_spec();
        let store = SweepStore::create(&dir, &spec).unwrap();
        assert!(store.load_cells().unwrap().is_empty());

        let mut shards = store.open_shards(2).unwrap();
        shards[0].append(&demo_record("aaaa", 0)).unwrap();
        shards[1].append(&demo_record("bbbb", 1)).unwrap();

        let (reopened, stored_spec) = SweepStore::open(&dir).unwrap();
        assert_eq!(stored_spec, spec);
        assert_eq!(reopened.sweep_hash(), spec.hash_hex());
        let cells = reopened.load_cells().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells["aaaa"].point, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_generations_never_collide() {
        let dir = temp_dir("generations");
        let store = SweepStore::create(&dir, &demo_spec()).unwrap();
        let mut first = store.open_shards(1).unwrap();
        first[0].append(&demo_record("aaaa", 0)).unwrap();
        let mut second = store.open_shards(1).unwrap();
        assert_ne!(first[0].path(), second[0].path());
        second[0].append(&demo_record("bbbb", 1)).unwrap();
        assert_eq!(store.load_cells().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_lines_are_dropped_but_mid_file_corruption_fails() {
        let dir = temp_dir("torn");
        let store = SweepStore::create(&dir, &demo_spec()).unwrap();
        let mut shards = store.open_shards(1).unwrap();
        shards[0].append(&demo_record("aaaa", 0)).unwrap();
        shards[0].append(&demo_record("bbbb", 1)).unwrap();

        // Simulate a kill mid-write: truncate the shard inside the last line.
        let path = shards[0].path().to_path_buf();
        drop(shards);
        let content = fs::read_to_string(&path).unwrap();
        let cut = content.len() - 20;
        fs::write(&path, &content[..cut]).unwrap();
        let cells = store.load_cells().unwrap();
        assert_eq!(cells.len(), 1, "torn cell must be treated as not-run");
        assert!(cells.contains_key("aaaa"));

        // Corruption before the end is a hard error.
        fs::write(&path, "garbage\n{\"also\":\"bad\"}\n").unwrap();
        assert!(store.load_cells().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_shards_live_beside_results_and_tolerate_kills() {
        use telemetry::{Phase, Recorder, TelemetrySink as _};

        let dir = temp_dir("telemetry");
        let store = SweepStore::create(&dir, &demo_spec()).unwrap();
        assert!(store.load_telemetry().unwrap().is_empty(), "no dir yet");

        let mut recorder = Recorder::new();
        recorder.record_phase(Phase::ProtocolStep, 1_000);
        let record = |hash: &str, point| CellTelemetry {
            hash: hash.into(),
            point,
            worker: 0,
            trials: 2,
            elapsed_ns: 5_000,
            recorder: recorder.clone(),
        };
        let mut shards = store.open_telemetry_shards(1).unwrap();
        shards[0].append(&record("aaaa", 0)).unwrap();
        shards[0].append(&record("bbbb", 1)).unwrap();
        let path = shards[0].path().to_path_buf();
        drop(shards);

        // The result loader must never see telemetry lines.
        assert!(store.load_cells().unwrap().is_empty());
        assert_eq!(store.load_telemetry().unwrap().len(), 2);

        // A kill mid-write tears the final line; the loader drops it.
        let content = fs::read_to_string(&path).unwrap();
        fs::write(&path, &content[..content.len() - 15]).unwrap();
        let loaded = store.load_telemetry().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["aaaa"].recorder, recorder);

        // Resumed generations get fresh file names.
        let resumed = store.open_telemetry_shards(1).unwrap();
        assert_ne!(resumed[0].path(), path);

        // Mid-file corruption is a hard error.
        fs::write(&path, "garbage\n{\"also\":\"bad\"}\n").unwrap();
        assert!(store.load_telemetry().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_specs_are_rejected() {
        let dir = temp_dir("mismatch");
        SweepStore::create(&dir, &demo_spec()).unwrap();
        let mut edited = demo_spec();
        edited.trials = 9;
        let err = SweepStore::create(&dir, &edited).unwrap_err();
        assert!(err.to_string().contains("fresh --out"), "{err}");
        // The original spec still opens fine.
        assert!(SweepStore::create(&dir, &demo_spec()).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_a_non_store_fails_with_guidance() {
        let dir = temp_dir("nonstore");
        fs::create_dir_all(&dir).unwrap();
        let err = SweepStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("sweep run"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
