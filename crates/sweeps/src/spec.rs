//! Declarative scenario and sweep descriptions.
//!
//! A [`ScenarioSpec`] describes **one cell** of a sweep: which protocol to
//! run (a [`crate::ProtocolRegistry`] id), on which engine, with which
//! numeric parameters, for how many trials, and under which seed stream.  A
//! [`SweepSpec`] describes a whole **grid**: shared settings plus axes whose
//! cross product expands into cells.
//!
//! Both are plain JSON documents.  A cell is *hash-addressed*: its identity
//! is the FNV-1a hash of its canonical serialization, so any change to any
//! parameter (including seeds and trial counts) yields a different address —
//! that is what lets the result store skip already-computed cells on resume
//! while never serving stale data for an edited spec.
//!
//! # Seed policy
//!
//! Trial `t` of the cell with seed point `p` runs with
//! `stream_seed(stream_seed(base_seed, p), t)`, where `stream_seed` is
//! [`flip_model::SimRng::stream_seed`] — exactly the derivation the
//! hand-rolled experiment harness uses (`ExperimentConfig::seed_for`), so a
//! migrated experiment reproduces its historical trials bit for bit.

use std::collections::BTreeMap;

use flip_model::{Backend, SimRng};

use crate::error::SweepError;
use crate::json::{parse, Json};

/// One cell of a sweep: a fully resolved, hash-addressable scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Protocol id resolved against the [`crate::ProtocolRegistry`].
    pub protocol: String,
    /// Which engine executes the cell.
    pub backend: Backend,
    /// Independent trials to run and aggregate.
    pub trials: u32,
    /// The sweep-wide master seed.
    pub base_seed: u64,
    /// The cell's seed-stream point (see the module docs).
    pub point: u64,
    /// Round cap for protocols that run "until done or cap"; `0` lets the
    /// protocol's own schedule decide.
    pub rounds: u64,
    /// Named numeric parameters (must include `n` and `epsilon`; the rest is
    /// protocol-specific).  Sorted by key, which keeps the canonical form —
    /// and therefore the hash — independent of construction order.
    pub params: BTreeMap<String, f64>,
    /// Fault injection directive in [`flip_model::FaultSpec`] string form
    /// (e.g. `byz:0.1`), or empty for a fault-free cell.  Empty is *omitted*
    /// from the canonical JSON, so every pre-fault spec keeps its historical
    /// hash address.  A `fault_fraction` param overrides the fraction (with
    /// `0` meaning fault-free), which is how sweeps put f/n on an axis.
    pub faults: String,
}

impl ScenarioSpec {
    /// The population size (the `n` parameter).
    ///
    /// # Panics
    ///
    /// Panics when `n` is missing or not a non-negative integer — expansion
    /// and parsing validate it, so reaching the panic means the spec was
    /// built by hand incorrectly.
    #[must_use]
    pub fn n(&self) -> u64 {
        let raw = *self
            .params
            .get("n")
            .unwrap_or_else(|| panic!("scenario `{}` is missing the `n` parameter", self.protocol));
        assert!(
            raw >= 0.0 && raw.fract() == 0.0 && raw <= 2f64.powi(53),
            "scenario `{}` has a non-integral n = {raw}",
            self.protocol
        );
        raw as u64
    }

    /// The noise margin (the `epsilon` parameter).
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is missing (see [`ScenarioSpec::n`]).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        *self.params.get("epsilon").unwrap_or_else(|| {
            panic!(
                "scenario `{}` is missing the `epsilon` parameter",
                self.protocol
            )
        })
    }

    /// A named parameter, or `default` when absent.
    #[must_use]
    pub fn param_or(&self, key: &str, default: f64) -> f64 {
        self.params.get(key).copied().unwrap_or(default)
    }

    /// The deterministic seed for one trial of this cell (see the module
    /// docs for the derivation).
    #[must_use]
    pub fn seed_for_trial(&self, trial: u64) -> u64 {
        SimRng::stream_seed(SimRng::stream_seed(self.base_seed, self.point), trial)
    }

    /// The canonical JSON form: fixed field order, sorted params.  The
    /// `faults` field appears only when non-empty, keeping fault-free specs
    /// hash-stable with pre-fault builds.
    #[must_use]
    pub fn canonical_json(&self) -> Json {
        let mut fields = vec![
            ("protocol".into(), Json::Str(self.protocol.clone())),
            ("backend".into(), Json::Str(self.backend.to_string())),
            ("trials".into(), Json::UInt(u64::from(self.trials))),
            ("base_seed".into(), Json::UInt(self.base_seed)),
            ("point".into(), Json::UInt(self.point)),
            ("rounds".into(), Json::UInt(self.rounds)),
        ];
        if !self.faults.is_empty() {
            fields.push(("faults".into(), Json::Str(self.faults.clone())));
        }
        fields.push((
            "params".into(),
            Json::Object(
                self.params
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Float(*v)))
                    .collect(),
            ),
        ));
        Json::object(fields)
    }

    /// The cell's address: FNV-1a (64-bit) over the canonical JSON, as 16
    /// hex digits.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!(
            "{:016x}",
            fnv1a(self.canonical_json().to_string().as_bytes())
        )
    }

    /// Parses a cell from its canonical JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] on missing/ill-typed fields.
    pub fn from_json(doc: &Json) -> Result<Self, SweepError> {
        let protocol = require_str(doc, "protocol")?.to_string();
        let backend = parse_backend(require_str(doc, "backend")?)?;
        let trials = u32::try_from(require_u64(doc, "trials")?)
            .map_err(|_| SweepError::Spec("`trials` does not fit in u32".into()))?;
        let base_seed = require_u64(doc, "base_seed")?;
        let point = require_u64(doc, "point")?;
        let rounds = require_u64(doc, "rounds")?;
        let params = parse_params(
            doc.get("params")
                .ok_or_else(|| SweepError::Spec("missing `params`".into()))?,
        )?;
        let faults = optional_str(doc, "faults")?;
        let spec = Self {
            protocol,
            backend,
            trials,
            base_seed,
            point,
            rounds,
            params,
            faults,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the invariants expansion guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] when `n`/`epsilon` are missing or
    /// out of range, or `trials` is zero.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.trials == 0 {
            return Err(SweepError::Spec("`trials` must be >= 1".into()));
        }
        let n = self
            .params
            .get("n")
            .copied()
            .ok_or_else(|| SweepError::Spec("missing `n` in params".into()))?;
        if !(n >= 1.0 && n.fract() == 0.0 && n <= 2f64.powi(53)) {
            return Err(SweepError::Spec(format!(
                "`n` must be a positive integer, got {n}"
            )));
        }
        let epsilon = self
            .params
            .get("epsilon")
            .copied()
            .ok_or_else(|| SweepError::Spec("missing `epsilon` in params".into()))?;
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(SweepError::Spec(format!(
                "`epsilon` must be in (0, 0.5], got {epsilon}"
            )));
        }
        if !self.faults.is_empty() {
            self.faults
                .parse::<flip_model::FaultSpec>()
                .map_err(|e| SweepError::Spec(e.to_string()))?;
        }
        Ok(())
    }
}

/// One grid axis: a parameter key and the values it sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The parameter this axis varies.
    pub key: String,
    /// The values, in sweep order.
    pub values: Vec<f64>,
}

/// A whole sweep: shared settings plus axes expanded as a cross product.
///
/// Expansion is **row-major with the first axis outermost** and assigns the
/// cell at flat index `i` the seed point `point_base + i` — matching how the
/// hand-rolled experiment loops numbered their configuration points, which
/// is what makes migrated sweeps seed-compatible.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Human-readable sweep name (also the export header comment).
    pub name: String,
    /// Protocol id shared by every cell.
    pub protocol: String,
    /// Engine shared by every cell.
    pub backend: Backend,
    /// Trials per cell.
    pub trials: u32,
    /// Master seed (see the module docs).
    pub base_seed: u64,
    /// Seed point of the first cell.
    pub point_base: u64,
    /// Round cap shared by every cell (`0` = protocol schedule).
    pub rounds: u64,
    /// Fault injection directive shared by every cell (empty = fault-free;
    /// see [`ScenarioSpec::faults`]).  Sweeps vary the *fraction* through a
    /// `fault_fraction` axis rather than through this string.
    pub faults: String,
    /// Parameters shared by every cell (axes override on collision).
    pub defaults: BTreeMap<String, f64>,
    /// The grid axes; empty means a single cell built from `defaults`.
    pub axes: Vec<Axis>,
}

impl SweepSpec {
    /// Expands the grid into scenario cells, in deterministic grid order.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] when any expanded cell fails
    /// [`ScenarioSpec::validate`] (e.g. missing `n`/`epsilon`).
    pub fn expand(&self) -> Result<Vec<ScenarioSpec>, SweepError> {
        let mut cells = Vec::with_capacity(self.grid_len());
        let mut indices = vec![0usize; self.axes.len()];
        loop {
            let mut params = self.defaults.clone();
            for (axis, &idx) in self.axes.iter().zip(&indices) {
                params.insert(axis.key.clone(), axis.values[idx]);
            }
            let cell = ScenarioSpec {
                protocol: self.protocol.clone(),
                backend: self.backend,
                trials: self.trials,
                base_seed: self.base_seed,
                point: self.point_base + cells.len() as u64,
                rounds: self.rounds,
                params,
                faults: self.faults.clone(),
            };
            cell.validate()?;
            cells.push(cell);

            // Odometer increment, last axis fastest (row-major).
            let mut dim = self.axes.len();
            loop {
                if dim == 0 {
                    return Ok(cells);
                }
                dim -= 1;
                indices[dim] += 1;
                if indices[dim] < self.axes[dim].values.len() {
                    break;
                }
                indices[dim] = 0;
            }
        }
    }

    /// The number of cells the grid expands to.
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len().max(1)).product()
    }

    /// The canonical JSON form of the whole sweep.  As with cells, `faults`
    /// is omitted when empty so fault-free sweep files and hashes are
    /// unchanged from pre-fault builds.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("protocol".into(), Json::Str(self.protocol.clone())),
            ("backend".into(), Json::Str(self.backend.to_string())),
            ("trials".into(), Json::UInt(u64::from(self.trials))),
            ("base_seed".into(), Json::UInt(self.base_seed)),
            ("point_base".into(), Json::UInt(self.point_base)),
            ("rounds".into(), Json::UInt(self.rounds)),
        ];
        if !self.faults.is_empty() {
            fields.push(("faults".into(), Json::Str(self.faults.clone())));
        }
        fields.extend([
            (
                "defaults".into(),
                Json::Object(
                    self.defaults
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            (
                "axes".into(),
                Json::Array(
                    self.axes
                        .iter()
                        .map(|axis| {
                            Json::object(vec![
                                ("key".into(), Json::Str(axis.key.clone())),
                                (
                                    "values".into(),
                                    Json::Array(
                                        axis.values.iter().map(|&v| Json::Float(v)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        Json::object(fields)
    }

    /// A pretty (indented) rendering of [`SweepSpec::to_json`] for spec
    /// files meant to be read and edited by people.
    #[must_use]
    pub fn to_pretty_json(&self) -> String {
        pretty(&self.to_json(), 0)
    }

    /// The sweep's address: the FNV-1a hash of its canonical JSON.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a(self.to_json().to_string().as_bytes()))
    }

    /// Parses a sweep spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] on syntax errors, missing fields or an
    /// invalid expanded grid.
    pub fn from_json_text(text: &str) -> Result<Self, SweepError> {
        let doc = parse(text).map_err(SweepError::Spec)?;
        Self::from_json(&doc)
    }

    /// Parses a sweep spec from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] on missing/ill-typed fields or an
    /// invalid expanded grid.
    pub fn from_json(doc: &Json) -> Result<Self, SweepError> {
        let axes = doc
            .get("axes")
            .and_then(Json::as_array)
            .ok_or_else(|| SweepError::Spec("missing `axes` array".into()))?
            .iter()
            .map(|axis| {
                let key = require_str(axis, "key")?.to_string();
                let values = axis
                    .get("values")
                    .and_then(Json::as_array)
                    .ok_or_else(|| SweepError::Spec(format!("axis `{key}` has no `values`")))?
                    .iter()
                    .map(|v| {
                        v.as_f64().ok_or_else(|| {
                            SweepError::Spec(format!("axis `{key}` has a non-numeric value"))
                        })
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                if values.is_empty() {
                    return Err(SweepError::Spec(format!("axis `{key}` is empty")));
                }
                Ok(Axis { key, values })
            })
            .collect::<Result<Vec<_>, SweepError>>()?;
        let spec = Self {
            name: require_str(doc, "name")?.to_string(),
            protocol: require_str(doc, "protocol")?.to_string(),
            backend: parse_backend(require_str(doc, "backend")?)?,
            trials: u32::try_from(require_u64(doc, "trials")?)
                .map_err(|_| SweepError::Spec("`trials` does not fit in u32".into()))?,
            base_seed: require_u64(doc, "base_seed")?,
            point_base: require_u64(doc, "point_base")?,
            rounds: require_u64(doc, "rounds")?,
            faults: optional_str(doc, "faults")?,
            defaults: parse_params(
                doc.get("defaults")
                    .ok_or_else(|| SweepError::Spec("missing `defaults`".into()))?,
            )?,
            axes,
        };
        // Validate the whole grid now so `run` cannot fail halfway through.
        spec.expand()?;
        Ok(spec)
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, stable across platforms — exactly
/// what a content address needs (this is not a cryptographic commitment).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn parse_backend(raw: &str) -> Result<Backend, SweepError> {
    raw.parse::<Backend>()
        .map_err(|e| SweepError::Spec(e.to_string()))
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, SweepError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| SweepError::Spec(format!("missing or non-string `{key}`")))
}

/// Reads an optional string field; absent means empty, but a present
/// non-string value is still an error.
fn optional_str(doc: &Json, key: &str) -> Result<String, SweepError> {
    match doc.get(key) {
        None => Ok(String::new()),
        Some(value) => value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| SweepError::Spec(format!("non-string `{key}`"))),
    }
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, SweepError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SweepError::Spec(format!("missing or non-integer `{key}`")))
}

fn parse_params(doc: &Json) -> Result<BTreeMap<String, f64>, SweepError> {
    match doc {
        Json::Object(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| SweepError::Spec(format!("param `{k}` is not numeric")))
            })
            .collect(),
        _ => Err(SweepError::Spec("params must be an object".into())),
    }
}

/// Two-space-indented JSON rendering (spec files only; stores and hashes use
/// the canonical single-line form).
fn pretty(value: &Json, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match value {
        Json::Array(items) if !items.is_empty() => {
            let inner = items
                .iter()
                .map(|v| format!("{pad}{}", pretty(v, indent + 1)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{inner}\n{close}]")
        }
        Json::Object(pairs) if !pairs.is_empty() => {
            let inner = pairs
                .iter()
                .map(|(k, v)| format!("{pad}{}: {}", Json::Str(k.clone()), pretty(v, indent + 1)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("{{\n{inner}\n{close}}}")
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sweep() -> SweepSpec {
        SweepSpec {
            name: "demo".into(),
            protocol: "rumor".into(),
            backend: Backend::Agents,
            trials: 3,
            base_seed: 7,
            point_base: 100,
            rounds: 50,
            faults: String::new(),
            defaults: BTreeMap::from([("epsilon".to_string(), 0.2), ("informed".to_string(), 8.0)]),
            axes: vec![
                Axis {
                    key: "n".into(),
                    values: vec![100.0, 200.0],
                },
                Axis {
                    key: "epsilon".into(),
                    values: vec![0.1, 0.2, 0.3],
                },
            ],
        }
    }

    #[test]
    fn expansion_is_row_major_with_sequential_points() {
        let cells = demo_sweep().expand().unwrap();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].n(), 100);
        assert_eq!(cells[0].epsilon(), 0.1);
        assert_eq!(cells[1].epsilon(), 0.2);
        assert_eq!(cells[3].n(), 200);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.point, 100 + i as u64);
            assert_eq!(cell.param_or("informed", 0.0), 8.0);
        }
    }

    #[test]
    fn empty_axes_yield_a_single_cell() {
        let mut spec = demo_sweep();
        spec.axes.clear();
        spec.defaults.insert("n".into(), 500.0);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].n(), 500);
        assert_eq!(cells[0].point, 100);
    }

    #[test]
    fn seeds_match_the_experiment_harness_derivation() {
        let cells = demo_sweep().expand().unwrap();
        let cell = &cells[2];
        let expected = SimRng::stream_seed(SimRng::stream_seed(7, cell.point), 1);
        assert_eq!(cell.seed_for_trial(1), expected);
        assert_ne!(cell.seed_for_trial(0), cell.seed_for_trial(1));
    }

    #[test]
    fn hashes_address_content_not_construction() {
        let cells = demo_sweep().expand().unwrap();
        let same = demo_sweep().expand().unwrap();
        assert_eq!(cells[0].hash_hex(), same[0].hash_hex());
        assert_ne!(cells[0].hash_hex(), cells[1].hash_hex());
        // Any parameter change moves the address — including the seed.
        let mut reseeded = cells[0].clone();
        reseeded.base_seed += 1;
        assert_ne!(cells[0].hash_hex(), reseeded.hash_hex());
        assert_eq!(cells[0].hash_hex().len(), 16);
    }

    #[test]
    fn sweep_json_round_trips_through_text() {
        let spec = demo_sweep();
        let parsed = SweepSpec::from_json_text(&spec.to_json().to_string()).unwrap();
        assert_eq!(parsed, spec);
        let pretty_parsed = SweepSpec::from_json_text(&spec.to_pretty_json()).unwrap();
        assert_eq!(pretty_parsed, spec);
        assert_eq!(parsed.hash_hex(), spec.hash_hex());
    }

    #[test]
    fn scenario_json_round_trips() {
        let cell = demo_sweep().expand().unwrap().pop().unwrap();
        let parsed = ScenarioSpec::from_json(&cell.canonical_json()).unwrap();
        assert_eq!(parsed, cell);
        assert_eq!(parsed.hash_hex(), cell.hash_hex());
    }

    #[test]
    fn invalid_specs_fail_loudly() {
        // Missing n.
        let mut spec = demo_sweep();
        spec.axes.clear();
        assert!(spec.expand().is_err());
        // Zero trials.
        let mut spec = demo_sweep();
        spec.trials = 0;
        assert!(spec.expand().is_err());
        // Bad epsilon.
        let mut spec = demo_sweep();
        spec.axes[1].values = vec![0.9];
        assert!(spec.expand().is_err());
        // Unknown backend in text form.
        assert!(SweepSpec::from_json_text("{\"name\":\"x\",\"backend\":\"gpu\"}").is_err());
        // A bare `hybrid` (no tracked count) must not default silently.
        assert!(SweepSpec::from_json_text("{\"name\":\"x\",\"backend\":\"hybrid\"}").is_err());
        assert!(SweepSpec::from_json_text("not json").is_err());
    }

    #[test]
    fn fault_free_specs_omit_the_faults_key_and_keep_their_hashes() {
        // Hash stability for everything that predates fault injection: an
        // empty `faults` field must be invisible in the canonical JSON ...
        let spec = demo_sweep();
        assert!(!spec.to_json().to_string().contains("\"faults\""));
        let cell = &spec.expand().unwrap()[0];
        assert!(!cell.canonical_json().to_string().contains("\"faults\""));
        // ... and round-trip back to empty.
        let parsed = SweepSpec::from_json_text(&spec.to_json().to_string()).unwrap();
        assert_eq!(parsed.faults, "");
        // A fault-injected twin gets a *different* address.
        let mut faulty = cell.clone();
        faulty.faults = "byz:0.1".into();
        assert_ne!(cell.hash_hex(), faulty.hash_hex());
    }

    #[test]
    fn faulty_sweeps_round_trip_and_validate_the_directive() {
        let mut spec = demo_sweep();
        spec.faults = "crash:0.2@10".into();
        let parsed = SweepSpec::from_json_text(&spec.to_pretty_json()).unwrap();
        assert_eq!(parsed, spec);
        for cell in parsed.expand().unwrap() {
            assert_eq!(cell.faults, "crash:0.2@10");
        }
        // A malformed directive fails expansion loudly, naming `faults`.
        spec.faults = "gremlin:0.2".into();
        let err = spec.expand().unwrap_err().to_string();
        assert!(err.contains("faults"), "must name the field: {err}");
        // `byz:0` is rejected at the spec layer too.
        spec.faults = "byz:0".into();
        assert!(spec.expand().is_err());
    }

    #[test]
    fn hybrid_backend_round_trips_with_its_tracked_count() {
        let mut spec = demo_sweep();
        spec.backend = Backend::Hybrid(64);
        let parsed = SweepSpec::from_json_text(&spec.to_json().to_string()).unwrap();
        assert_eq!(parsed.backend, Backend::Hybrid(64));
        let cell = &spec.expand().unwrap()[0];
        let reparsed = ScenarioSpec::from_json(&cell.canonical_json()).unwrap();
        assert_eq!(reparsed.backend, Backend::Hybrid(64));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
