//! Composed reports: several sweeps run and resumed as one unit.
//!
//! A [`ReportSpec`] is an ordered list of member [`SweepSpec`]s under one
//! name; a [`ReportStore`] is one directory holding a shared `report.json`
//! manifest plus one [`SweepStore`] per member under `members/<name>/`.
//! The [`ReportRunner`] executes members sequentially — each member fans its
//! cells out over the full thread budget, so sequencing costs no parallelism
//! — while one `max_cells` budget is shared across the whole composition
//! (the deterministic kill stand-in, exactly like a single sweep's).
//!
//! Resume is cross-member: a killed run re-opens the same store, skips every
//! persisted cell of every member (completed members are pure skips) and
//! continues mid-member from the first missing cell.  Because every member
//! record is a deterministic function of its hash-addressed cell spec, a
//! killed-and-resumed composed run renders byte-identical reports to an
//! uninterrupted one.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::error::SweepError;
use crate::json::{parse, Json};
use crate::orchestrator::{SweepOutcome, SweepRunner};
use crate::registry::ProtocolRegistry;
use crate::spec::{fnv1a, SweepSpec};
use crate::store::SweepStore;

/// The report-store format version written to `report.json`.
pub const REPORT_FORMAT: u64 = 1;

/// An ordered composition of member sweeps run as one resumable unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// The composition's name (the `report` builtin for the full report).
    pub name: String,
    /// The member sweeps, in presentation order.
    pub members: Vec<SweepSpec>,
}

impl ReportSpec {
    /// Builds a report spec, validating the member list.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] when the member list is empty, a member
    /// name is empty, collides with another member's, or contains characters
    /// unfit for a `members/<name>/` directory.
    pub fn new(name: &str, members: Vec<SweepSpec>) -> Result<Self, SweepError> {
        if members.is_empty() {
            return Err(SweepError::Spec(format!(
                "report `{name}` has no member sweeps"
            )));
        }
        let mut seen = BTreeSet::new();
        for member in &members {
            if member.name.is_empty()
                || !member
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                || member.name.starts_with('.')
            {
                return Err(SweepError::Spec(format!(
                    "report member name `{}` is not a valid store directory name",
                    member.name
                )));
            }
            if !seen.insert(member.name.as_str()) {
                return Err(SweepError::Spec(format!(
                    "report `{name}` lists member `{}` twice",
                    member.name
                )));
            }
        }
        Ok(Self {
            name: name.to_string(),
            members,
        })
    }

    /// The report's content address: FNV-1a over the report name and every
    /// member's name and sweep hash, as 16 hex digits.  Any member edit
    /// changes the report hash, so a stale store is detected at the top
    /// level before any member store is touched.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        let mut canonical = self.name.clone();
        for member in &self.members {
            canonical.push('\n');
            canonical.push_str(&member.name);
            canonical.push(' ');
            canonical.push_str(&member.hash_hex());
        }
        format!("{:016x}", fnv1a(canonical.as_bytes()))
    }

    /// The total cell count across every member grid.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] when a member fails to expand.
    pub fn total_cells(&self) -> Result<usize, SweepError> {
        let mut total = 0;
        for member in &self.members {
            total += member.expand()?.len();
        }
        Ok(total)
    }
}

/// A composed report's on-disk store: `report.json` plus member sub-stores.
///
/// ```text
/// out/
///   report.json          # {"format":1,"report_hash":"…","name":…,"members":[…]}
///   members/
///     e01/               # a full SweepStore (manifest + shards)
///     e02/
/// ```
#[derive(Debug)]
pub struct ReportStore {
    dir: PathBuf,
    report_hash: String,
}

impl ReportStore {
    /// Creates (or re-opens) the store for `spec` at `dir`.
    ///
    /// A fresh directory gets a manifest plus one member store per member;
    /// an existing one must carry the same report hash — pointing an edited
    /// report at an old store is an error, never silent reuse.  Each member
    /// store re-checks its own sweep hash on top.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on filesystem failures and
    /// [`SweepError::Store`] on a manifest mismatch.
    pub fn create(dir: &Path, spec: &ReportSpec) -> Result<Self, SweepError> {
        let report_hash = spec.hash_hex();
        let manifest_path = dir.join("report.json");
        if manifest_path.exists() {
            let manifest = read_report_manifest(&manifest_path)?;
            if manifest.report_hash != report_hash {
                return Err(SweepError::Store(format!(
                    "report store at {} holds report {}, but the given spec hashes to \
                     {report_hash}; use a fresh --store directory for an edited report",
                    dir.display(),
                    manifest.report_hash
                )));
            }
        } else {
            fs::create_dir_all(dir.join("members"))?;
            let manifest = Json::object(vec![
                ("format".into(), Json::UInt(REPORT_FORMAT)),
                ("report_hash".into(), Json::Str(report_hash.clone())),
                ("name".into(), Json::Str(spec.name.clone())),
                (
                    "members".into(),
                    Json::Array(
                        spec.members
                            .iter()
                            .map(|m| Json::Str(m.name.clone()))
                            .collect(),
                    ),
                ),
            ]);
            atomic_write(&manifest_path, manifest.to_string().as_bytes())?;
        }
        for member in &spec.members {
            SweepStore::create(&member_dir(dir, &member.name), member)?;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            report_hash,
        })
    }

    /// Opens an existing report store, reconstructing the [`ReportSpec`]
    /// from the member manifests (what a composed `resume` runs from).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] when the directory has no valid report
    /// manifest, a member store is missing, or the member manifests no
    /// longer hash to the recorded report hash.
    pub fn open(dir: &Path) -> Result<(Self, ReportSpec), SweepError> {
        let manifest = read_report_manifest(&dir.join("report.json"))?;
        let mut members = Vec::with_capacity(manifest.member_names.len());
        for name in &manifest.member_names {
            let (_, member) = SweepStore::open(&member_dir(dir, name))?;
            if member.name != *name {
                return Err(SweepError::Store(format!(
                    "member store {} holds sweep `{}`, not `{name}`",
                    member_dir(dir, name).display(),
                    member.name
                )));
            }
            members.push(member);
        }
        let spec = ReportSpec::new(&manifest.name, members)?;
        if spec.hash_hex() != manifest.report_hash {
            return Err(SweepError::Store(
                "report.json report_hash does not match its member manifests".into(),
            ));
        }
        Ok((
            Self {
                dir: dir.to_path_buf(),
                report_hash: manifest.report_hash,
            },
            spec,
        ))
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The report hash this store is bound to.
    #[must_use]
    pub fn report_hash(&self) -> &str {
        &self.report_hash
    }

    /// The member's sub-store (created on first use, hash-checked always).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] when the existing member store holds a
    /// different sweep.
    pub fn member_store(&self, member: &SweepSpec) -> Result<SweepStore, SweepError> {
        SweepStore::create(&member_dir(&self.dir, &member.name), member)
    }
}

/// Whether `dir` is a composed report store (vs a single-sweep store).
#[must_use]
pub fn is_report_store(dir: &Path) -> bool {
    dir.join("report.json").is_file()
}

fn member_dir(dir: &Path, name: &str) -> PathBuf {
    dir.join("members").join(name)
}

struct ReportManifest {
    report_hash: String,
    name: String,
    member_names: Vec<String>,
}

fn read_report_manifest(path: &Path) -> Result<ReportManifest, SweepError> {
    let text = fs::read_to_string(path).map_err(|e| {
        SweepError::Store(format!(
            "{} is not a report store ({e}); create one with --store on a fresh directory",
            path.display()
        ))
    })?;
    let doc = parse(&text).map_err(|e| SweepError::Store(format!("report manifest: {e}")))?;
    let format = doc
        .get("format")
        .and_then(Json::as_u64)
        .ok_or_else(|| SweepError::Store("report manifest has no `format`".into()))?;
    if format != REPORT_FORMAT {
        return Err(SweepError::Store(format!(
            "report manifest format {format} is not the supported {REPORT_FORMAT}"
        )));
    }
    let report_hash = doc
        .get("report_hash")
        .and_then(Json::as_str)
        .ok_or_else(|| SweepError::Store("report manifest has no `report_hash`".into()))?
        .to_string();
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| SweepError::Store("report manifest has no `name`".into()))?
        .to_string();
    let member_names = doc
        .get("members")
        .and_then(Json::as_array)
        .ok_or_else(|| SweepError::Store("report manifest has no `members`".into()))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(ToString::to_string)
                .ok_or_else(|| SweepError::Store("report manifest member is not a string".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ReportManifest {
        report_hash,
        name,
        member_names,
    })
}

/// Writes via a temp file + rename so a kill never leaves a half manifest.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), SweepError> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// One member's slice of a composed run.
#[derive(Debug)]
pub struct MemberOutcome {
    /// The member sweep's name.
    pub name: String,
    /// The member's sweep outcome (cells in grid order, counters).
    pub outcome: SweepOutcome,
}

/// Result of one [`ReportRunner::run`] call.
#[derive(Debug)]
pub struct ReportOutcome {
    /// Per-member outcomes, in member order.
    pub members: Vec<MemberOutcome>,
    /// Cells executed by this call, across all members.
    pub executed: usize,
    /// Cells skipped because member stores already held them.
    pub skipped: usize,
    /// Cells across every member grid.
    pub total: usize,
    /// Whether every member is now complete.
    pub completed: bool,
}

/// Orchestrates a composed report: member sequencing, one shared budget.
#[derive(Debug, Clone, Default)]
pub struct ReportRunner {
    threads: Option<usize>,
    max_cells: Option<usize>,
    telemetry: bool,
    progress: bool,
}

impl ReportRunner {
    /// A runner with the default thread budget (see [`SweepRunner::new`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the total thread budget of every member run.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Stops after executing at most `max_cells` new cells across the whole
    /// composition — the budget drains member by member, so a cut can land
    /// mid-member exactly like a kill would.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// Enables per-cell telemetry in every member run (see
    /// [`SweepRunner::with_telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables the live stderr progress stream: the per-cell lines of each
    /// member run plus one summary line per finished member.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Runs `spec`'s members in order, skipping cells persisted in `store`,
    /// checkpointing each newly completed cell to its member sub-store.
    /// Pass `store = None` for a purely in-memory run (the default
    /// `full_report` invocation).
    ///
    /// Members past an exhausted `max_cells` budget execute nothing but
    /// still report their persisted/total counts, so the outcome always
    /// describes the whole composition.
    ///
    /// # Errors
    ///
    /// Returns the first member error hit; earlier members' completed cells
    /// remain persisted — a failed run resumes like a killed one.
    pub fn run(
        &self,
        spec: &ReportSpec,
        registry: &ProtocolRegistry,
        store: Option<&ReportStore>,
    ) -> Result<ReportOutcome, SweepError> {
        let mut budget = self.max_cells;
        let mut members = Vec::with_capacity(spec.members.len());
        for member in &spec.members {
            let sub = match store {
                Some(store) => Some(store.member_store(member)?),
                None => None,
            };
            let outcome = if budget == Some(0) {
                status_only(member, sub.as_ref())?
            } else {
                let mut runner = SweepRunner::new()
                    .with_telemetry(self.telemetry)
                    .with_progress(self.progress);
                if let Some(threads) = self.threads {
                    runner = runner.with_threads(threads);
                }
                if let Some(limit) = budget {
                    runner = runner.with_max_cells(limit);
                }
                runner.run(member, registry, sub.as_ref())?
            };
            if let Some(remaining) = &mut budget {
                *remaining = remaining.saturating_sub(outcome.executed);
            }
            if self.progress {
                eprintln!(
                    "[report] member `{}`: {}/{} cells ({} executed, {} already persisted)",
                    member.name,
                    outcome.skipped + outcome.executed,
                    outcome.total,
                    outcome.executed,
                    outcome.skipped,
                );
            }
            members.push(MemberOutcome {
                name: member.name.clone(),
                outcome,
            });
        }
        let executed = members.iter().map(|m| m.outcome.executed).sum();
        let skipped = members.iter().map(|m| m.outcome.skipped).sum();
        let total = members.iter().map(|m| m.outcome.total).sum();
        let completed = members.iter().all(|m| m.outcome.completed);
        Ok(ReportOutcome {
            members,
            executed,
            skipped,
            total,
            completed,
        })
    }
}

/// The member's status without executing anything: what a drained budget
/// reports for the members it never reached.
fn status_only(member: &SweepSpec, store: Option<&SweepStore>) -> Result<SweepOutcome, SweepError> {
    let grid = member.expand()?;
    let persisted = match store {
        Some(store) => store.load_cells()?,
        None => std::collections::BTreeMap::new(),
    };
    let mut cells = Vec::new();
    for cell in &grid {
        if let Some(record) = persisted.get(&cell.hash_hex()) {
            cells.push(record.clone());
        }
    }
    let skipped = cells.len();
    Ok(SweepOutcome {
        executed: 0,
        skipped,
        total: grid.len(),
        completed: skipped == grid.len(),
        cells,
        telemetry: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use flip_model::Backend;
    use std::collections::BTreeMap;

    fn member(name: &str, seed: u64, ns: &[f64]) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            protocol: "rumor".into(),
            backend: Backend::Agents,
            trials: 2,
            base_seed: seed,
            point_base: 0,
            rounds: 100,
            faults: String::new(),
            defaults: BTreeMap::from([
                ("epsilon".to_string(), 0.25),
                ("informed".to_string(), 4.0),
            ]),
            axes: vec![Axis {
                key: "n".into(),
                values: ns.to_vec(),
            }],
        }
    }

    fn demo_report() -> ReportSpec {
        ReportSpec::new(
            "demo-report",
            vec![
                member("alpha", 7, &[60.0, 90.0]),
                member("beta", 11, &[70.0, 100.0, 130.0]),
            ],
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("report-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn degenerate_member_lists_are_rejected() {
        assert!(ReportSpec::new("empty", vec![]).is_err());
        let twice = ReportSpec::new(
            "dup",
            vec![member("same", 1, &[60.0]), member("same", 2, &[60.0])],
        );
        assert!(twice.is_err());
        let traversal = ReportSpec::new("evil", vec![member("../up", 1, &[60.0])]);
        assert!(traversal.is_err());
    }

    #[test]
    fn report_hash_tracks_every_member() {
        let base = demo_report();
        assert_eq!(base.hash_hex(), demo_report().hash_hex());
        let mut edited = demo_report();
        edited.members[1].trials = 9;
        assert_ne!(base.hash_hex(), edited.hash_hex());
        assert_eq!(base.total_cells().unwrap(), 5);
    }

    #[test]
    fn in_memory_composed_run_covers_every_member() {
        let outcome = ReportRunner::new()
            .with_threads(2)
            .run(&demo_report(), &ProtocolRegistry::builtin(), None)
            .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.total, 5);
        assert_eq!(outcome.executed, 5);
        assert_eq!(outcome.members.len(), 2);
        assert_eq!(outcome.members[0].outcome.cells.len(), 2);
        assert_eq!(outcome.members[1].outcome.cells.len(), 3);
    }

    #[test]
    fn shared_budget_cuts_mid_member_and_resume_completes_identically() {
        let dir = temp_dir("budget");
        let spec = demo_report();
        let registry = ProtocolRegistry::builtin();

        let reference = ReportRunner::new()
            .with_threads(1)
            .run(&spec, &registry, None)
            .unwrap();

        // 3 cells of budget: all of `alpha` (2) plus one cell of `beta`.
        let store = ReportStore::create(&dir, &spec).unwrap();
        let cut = ReportRunner::new()
            .with_threads(1)
            .with_max_cells(3)
            .run(&spec, &registry, Some(&store))
            .unwrap();
        assert!(!cut.completed);
        assert_eq!(cut.executed, 3);
        assert!(cut.members[0].outcome.completed);
        assert_eq!(cut.members[1].outcome.executed, 1);

        // Resume from a fresh open: the store alone reconstructs the spec.
        let (reopened, recovered) = ReportStore::open(&dir).unwrap();
        assert_eq!(recovered, spec);
        let resumed = ReportRunner::new()
            .with_threads(3)
            .run(&recovered, &registry, Some(&reopened))
            .unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.executed, 2);
        assert_eq!(resumed.skipped, 3);
        for (a, b) in reference.members.iter().zip(&resumed.members) {
            assert_eq!(a.outcome.cells, b.outcome.cells, "member `{}`", a.name);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_drained_budget_still_reports_unreached_members() {
        let outcome = ReportRunner::new()
            .with_threads(1)
            .with_max_cells(1)
            .run(&demo_report(), &ProtocolRegistry::builtin(), None)
            .unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.executed, 1);
        assert_eq!(outcome.total, 5, "unreached members still count");
        assert_eq!(outcome.members[1].outcome.executed, 0);
        assert_eq!(outcome.members[1].outcome.total, 3);
    }

    #[test]
    fn edited_reports_are_rejected_by_an_existing_store() {
        let dir = temp_dir("mismatch");
        let spec = demo_report();
        ReportStore::create(&dir, &spec).unwrap();
        assert!(is_report_store(&dir));
        let mut edited = demo_report();
        edited.members[0].base_seed = 999;
        let err = ReportStore::create(&dir, &edited).unwrap_err();
        assert!(err.to_string().contains("fresh --store"), "{err}");
        // The original still opens and re-creates fine.
        assert!(ReportStore::create(&dir, &spec).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_a_non_report_store_fails_with_guidance() {
        let dir = temp_dir("nonstore");
        fs::create_dir_all(&dir).unwrap();
        assert!(!is_report_store(&dir));
        let err = ReportStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("not a report store"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
