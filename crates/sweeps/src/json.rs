//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The workspace is offline (no `serde_json`; the vendored `serde` is a
//! marker-trait stand-in), so the sweep subsystem carries its own small JSON
//! implementation.  Design constraints, in order:
//!
//! 1. **Exact round-trips.**  Specs are hash-addressed and exports must be
//!    byte-identical across resumes, so numbers keep their type: unsigned and
//!    signed integers are preserved as integers, and floats are written with
//!    Rust's shortest round-trip formatting (`{:?}`) and re-parsed to the
//!    identical bits.
//! 2. **Stable output.**  Objects preserve insertion order; writers always
//!    emit the same bytes for the same value, which is what makes spec
//!    hashing and byte-identical resume possible.
//! 3. **Small surface.**  Only what the sweep store needs: no comments, no
//!    trailing commas, UTF-8 strings with the standard escapes.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    UInt(u64),
    /// A negative integer without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object(pairs: Vec<(String, Json)>) -> Self {
        Json::Object(pairs)
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (integral floats included) when exactly
    /// representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            Json::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` for any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` for strings.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form; it
                    // always contains a `.` or an exponent, so the parser can
                    // tell it apart from the integer variants.
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no non-finite literals; `null` keeps the
                    // document well-formed (sweeps never emit non-finite
                    // metrics, so this is a guard, not a code path).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// The canonical single-line serialization (`value.to_string()` is the
    /// byte-stable form used for hashing and the shard store).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; the whole input must be one value (surrounding
/// whitespace allowed).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte `{}` at {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII-or-UTF-8) run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(
                                c.ok_or_else(|| format!("invalid \\u escape at {}", self.pos))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", char::from(other)));
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text =
            std::str::from_utf8(slice).map_err(|_| "invalid bytes in \\u escape".to_string())?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape `{text}`"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes".to_string())?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            // Integers beyond 64 bits degrade to the float path below.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) {
        let value = parse(text).expect("parses");
        assert_eq!(value.to_string(), text, "canonical round trip");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip("null");
        round_trip("true");
        round_trip("false");
        round_trip("0");
        round_trip("18446744073709551615"); // u64::MAX survives exactly
        round_trip("-42");
        round_trip("0.25");
        round_trip("1e20");
        round_trip("\"hello\"");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 2.5e-17, f64::MAX, -0.0, 123456.789] {
            let text = Json::Float(v).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via `{text}`");
        }
    }

    #[test]
    fn containers_preserve_order() {
        round_trip("[1,2.5,\"x\",[],{}]");
        round_trip("{\"zebra\":1,\"alpha\":{\"b\":[true,null]}}");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash \t tab \u{1F980} control\u{0001}";
        let text = Json::Str(original.to_string()).to_string();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), original);
        // Surrogate pairs decode.
        assert_eq!(
            parse("\"\\ud83e\\udd80\"").unwrap().as_str().unwrap(),
            "\u{1F980}"
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01x",
            "[1 2]",
            "{1:2}",
            "nullx",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn accessors_see_through_variants() {
        let doc = parse("{\"n\":1000,\"eps\":0.2,\"name\":\"e01\",\"axes\":[1,2]}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(1000));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(1000.0));
        assert_eq!(doc.get("eps").unwrap().as_f64(), Some(0.2));
        assert_eq!(doc.get("name").unwrap().as_str(), Some("e01"));
        assert_eq!(doc.get("axes").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Float(3.0).as_u64(), Some(3));
        assert_eq!(Json::Float(3.5).as_u64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
