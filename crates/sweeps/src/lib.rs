//! Declarative scenario sweeps for the *Breathe before Speaking*
//! reproduction: specs as data, one orchestrator, resumable results.
//!
//! The paper's claims are statements over **sweeps** — grids of
//! `(n, ε, protocol, backend, rounds, trials)`.  This crate turns a sweep
//! from a hand-rolled loop inside an experiment binary into a pipeline of
//! plain data:
//!
//! 1. **Describe** — a [`SweepSpec`] (JSON on disk, [`spec`] in code) names
//!    a protocol from the [`ProtocolRegistry`], an engine [`Backend`], and
//!    axes whose cross product expands into hash-addressed [`ScenarioSpec`]
//!    cells.
//! 2. **Run** — the [`SweepRunner`] executes cells across threads (dynamic
//!    cell queue × lock-free per-trial [`TrialRunner`]) and checkpoints each
//!    completed cell to a [`SweepStore`] — a manifest plus JSONL shards.
//! 3. **Resume** — a killed sweep restarts by skipping persisted cells;
//!    because every record is a deterministic function of its cell spec
//!    (seeds derive from `(base_seed, point, trial)`), the final export is
//!    **byte-identical** to an uninterrupted run.
//! 4. **Aggregate & export** — metrics stream into online moments and P²
//!    quantile sketches ([`analysis::streaming`]); exports walk the grid in
//!    spec order as CSV (summary) or JSON (lossless, round-trippable).
//! 5. **Compose** — a [`ReportSpec`] sequences member sweeps into one
//!    [`ReportStore`] (shared manifest, per-member sub-stores, one
//!    `max_cells` budget) so a whole experiment report is a single
//!    resumable run ([`ReportRunner`]).
//!
//! The `sweep` binary (crate `experiments`) is the command-line face:
//! `sweep run spec.json --out DIR`, `sweep resume DIR`,
//! `sweep export DIR --csv`.
//!
//! # Example
//!
//! ```
//! use sweeps::{Axis, ProtocolRegistry, SweepRunner, SweepSpec};
//! use flip_model::Backend;
//! use std::collections::BTreeMap;
//!
//! let spec = SweepSpec {
//!     name: "doc-demo".into(),
//!     protocol: "rumor".into(),
//!     backend: Backend::Agents,
//!     trials: 2,
//!     base_seed: 7,
//!     point_base: 0,
//!     rounds: 80,
//!     faults: String::new(),
//!     defaults: BTreeMap::from([
//!         ("epsilon".to_string(), 0.25),
//!         ("informed".to_string(), 4.0),
//!     ]),
//!     axes: vec![Axis { key: "n".into(), values: vec![50.0, 100.0] }],
//! };
//! let outcome = SweepRunner::new()
//!     .with_threads(2)
//!     .run(&spec, &ProtocolRegistry::builtin(), None)
//!     .unwrap();
//! assert!(outcome.completed);
//! assert_eq!(outcome.cells.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod compose;
pub mod error;
pub mod export;
pub mod json;
pub mod observe;
pub mod orchestrator;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod store;

pub use aggregate::{CellRecord, MetricAggregate, TRACKED_QUANTILES};
pub use compose::{
    is_report_store, MemberOutcome, ReportOutcome, ReportRunner, ReportSpec, ReportStore,
    REPORT_FORMAT,
};
pub use error::SweepError;
pub use export::{export_csv, export_json, ordered_cells, parse_export_json};
pub use observe::{CellTelemetry, ProgressReporter, TelemetryHub, TrialContext};
pub use orchestrator::{SweepOutcome, SweepRunner};
pub use registry::{fault_spec_for, samples_for_confidence, ProtocolRegistry, TrialFn};
pub use runner::{default_threads, TrialRunner, THREADS_ENV};
pub use spec::{Axis, ScenarioSpec, SweepSpec};
pub use store::{ShardWriter, SweepStore, TelemetryShardWriter};
