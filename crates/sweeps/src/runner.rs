//! A deterministic multi-trial runner that fans independent simulations out
//! over threads.

/// The environment variable that caps worker threads for every
/// [`TrialRunner`] (and, transitively, every sweep): `FLIP_THREADS=4` limits
/// fan-out to four workers machine-wide without touching any command line.
pub const THREADS_ENV: &str = "FLIP_THREADS";

/// Parses a `FLIP_THREADS`-style value: `None` (unset) falls back to the
/// machine's available parallelism.
///
/// # Panics
///
/// Panics on a present-but-invalid value (non-numeric or zero) so a typo'd
/// override fails loudly instead of silently running at a surprise width.
#[must_use]
pub fn threads_from_env(value: Option<&str>) -> usize {
    match value {
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("invalid {THREADS_ENV} value `{raw}`: expected an integer >= 1"),
        },
    }
}

/// The default worker-thread count: the `FLIP_THREADS` environment override
/// when set, otherwise the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    let value = std::env::var(THREADS_ENV).ok();
    threads_from_env(value.as_deref())
}

/// Runs independent trials in parallel with stable per-trial seeds.
///
/// The fan-out is lock-free: the pre-sized results vector is split into one
/// disjoint contiguous chunk per worker (`chunks_mut`), so every worker
/// writes its own slots and no result ever crosses a lock.  Results are
/// returned in trial order, and because each trial's value depends only on
/// its trial index, a parallel run is *bit-identical* to a sequential one by
/// construction.
///
/// # The shared thread budget
///
/// `threads` is the runner's **total** budget, shared between the two levels
/// of parallelism a trial can use: the trial fan-out above, and the
/// intra-round worker lanes of a simulation
/// ([`SimulationConfig::with_threads`](flip_model::SimulationConfig::with_threads)).
/// A trial body that spins up its own round workers must size them from
/// [`TrialRunner::round_threads`], which returns the per-trial budget left
/// over after the fan-out claims its workers; the invariant
///
/// ```text
/// trial_workers × round_threads ≤ threads        (both factors ≥ 1)
/// ```
///
/// holds for every `(trials, threads)` pair, so `trials × round-workers`
/// can never oversubscribe the budget no matter how the two knobs are set.
/// Because intra-round parallelism is bit-identical across lane counts,
/// splitting the budget differently changes wall-clock only — never results.
///
/// # Example
///
/// ```
/// use sweeps::TrialRunner;
///
/// let runner = TrialRunner::new(8);
/// let squares = runner.run(|trial| trial * trial);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct TrialRunner {
    trials: u64,
    threads: usize,
}

impl TrialRunner {
    /// Creates a runner for the given number of trials, using as many threads
    /// as [`default_threads`] allows (the `FLIP_THREADS` environment override
    /// when set, otherwise every core the machine offers) — but never more
    /// threads than trials: a 4-trial run on a 64-core machine gets 4 worker
    /// threads, not 64, since the surplus threads would only be spawned to
    /// exit immediately.
    #[must_use]
    pub fn new(trials: u64) -> Self {
        let available = default_threads();
        let cap = usize::try_from(trials).unwrap_or(usize::MAX);
        Self {
            trials,
            threads: available.min(cap).max(1),
        }
    }

    /// Overrides the number of worker threads (the `--threads` flag and tests
    /// route through this).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of trials this runner executes.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The number of worker threads a parallel run will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The intra-round worker budget each trial may use on top of the trial
    /// fan-out — the whole budget divided by the number of trial workers
    /// [`TrialRunner::run`] will actually spawn, rounded down, never below 1.
    ///
    /// Passing this to
    /// [`SimulationConfig::with_threads`](flip_model::SimulationConfig::with_threads)
    /// keeps `trial_workers × round_threads ≤ threads` (see the type-level
    /// docs): with more trials than threads every trial runs its rounds
    /// sequentially, and when trials are scarce the spare threads migrate
    /// into the rounds instead of idling.
    #[must_use]
    pub fn round_threads(&self) -> usize {
        let trials = usize::try_from(self.trials).unwrap_or(usize::MAX);
        let trial_workers = self.threads.min(trials).max(1);
        (self.threads / trial_workers).max(1)
    }

    /// Runs `task` once per trial index (0-based) and collects the results in
    /// trial order.
    ///
    /// Each worker owns a disjoint chunk of the pre-sized results vector and
    /// runs the contiguous trial range backing it, so no synchronisation is
    /// needed beyond the scope join.
    pub fn run<T, F>(&self, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        if self.trials == 0 {
            return Vec::new();
        }
        let trials = usize::try_from(self.trials).expect("trial count fits in memory");
        let threads = self.threads.min(trials).max(1);
        if threads == 1 {
            return (0..self.trials).map(task).collect();
        }

        let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
        let chunk_len = trials.div_ceil(threads);
        let task = &task;
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in results.chunks_mut(chunk_len).enumerate() {
                scope.spawn(move || {
                    let first_trial = (chunk_index * chunk_len) as u64;
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(task(first_trial + offset as u64));
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|v| v.expect("every chunk fills all of its slots"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_trials_yield_nothing() {
        let runner = TrialRunner::new(0);
        let out: Vec<u64> = runner.run(|t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let runner = TrialRunner::new(64).with_threads(4);
        let out = runner.run(|t| t * 3);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn single_threaded_and_parallel_runs_agree() {
        let sequential = TrialRunner::new(16).with_threads(1).run(|t| t * t + 1);
        let parallel = TrialRunner::new(16).with_threads(8).run(|t| t * t + 1);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_runs_are_bit_identical_for_every_thread_count() {
        // Chunked disjoint writes make parallel output identical to the
        // sequential reference regardless of how the trials split across
        // workers — including thread counts that do not divide the trials.
        let reference = TrialRunner::new(23).with_threads(1).run(|t| t * 31 + 7);
        for threads in 2..=9 {
            let parallel = TrialRunner::new(23)
                .with_threads(threads)
                .run(|t| t * 31 + 7);
            assert_eq!(parallel, reference, "threads = {threads}");
        }
    }

    #[test]
    fn trial_count_is_reported() {
        assert_eq!(TrialRunner::new(7).trials(), 7);
        assert!(TrialRunner::new(7).with_threads(0).threads >= 1);
    }

    #[test]
    fn worker_threads_never_exceed_trials() {
        assert_eq!(TrialRunner::new(1).threads(), 1);
        assert!(TrialRunner::new(4).threads() <= 4);
        // Zero trials still leaves a (never-used) worker so the struct stays valid.
        assert_eq!(TrialRunner::new(0).threads(), 1);
        // The explicit override remains available for tests that want more.
        assert_eq!(TrialRunner::new(2).with_threads(8).threads(), 8);
    }

    #[test]
    fn round_threads_never_oversubscribe_the_budget() {
        // The two parallelism levels share one budget: for every
        // (trials, threads) pair, the trial workers actually spawned times
        // the per-trial round budget must stay within the total.
        for trials in [0u64, 1, 2, 3, 5, 8, 64] {
            for threads in 1..=12usize {
                let runner = TrialRunner::new(trials).with_threads(threads);
                let trial_workers = threads.min(usize::try_from(trials).unwrap()).max(1);
                let round = runner.round_threads();
                assert!(round >= 1, "trials={trials} threads={threads}");
                assert!(
                    trial_workers * round <= threads.max(1),
                    "oversubscribed: trials={trials} threads={threads} \
                     workers={trial_workers} round={round}"
                );
            }
        }
    }

    #[test]
    fn spare_threads_migrate_into_rounds() {
        // More threads than trials: the surplus goes to intra-round lanes.
        assert_eq!(TrialRunner::new(3).with_threads(8).round_threads(), 2);
        assert_eq!(TrialRunner::new(1).with_threads(8).round_threads(), 8);
        assert_eq!(TrialRunner::new(2).with_threads(9).round_threads(), 4);
        // More trials than threads: rounds run sequentially.
        assert_eq!(TrialRunner::new(8).with_threads(4).round_threads(), 1);
        assert_eq!(TrialRunner::new(64).with_threads(64).round_threads(), 1);
        // Degenerate corners stay valid.
        assert_eq!(TrialRunner::new(0).with_threads(4).round_threads(), 4);
        assert_eq!(TrialRunner::new(5).with_threads(1).round_threads(), 1);
    }

    #[test]
    fn env_override_parsing_is_strict() {
        // Unset: falls back to the machine width, always >= 1.
        assert!(threads_from_env(None) >= 1);
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 12 ")), 12);
        for bad in ["0", "-1", "four", ""] {
            let result = std::panic::catch_unwind(|| threads_from_env(Some(bad)));
            assert!(result.is_err(), "`{bad}` must be rejected loudly");
        }
    }
}
