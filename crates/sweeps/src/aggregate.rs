//! Streaming per-cell aggregation and its serialized form.
//!
//! A sweep cell may run millions of trials; nothing here ever holds
//! per-trial data.  Every metric a protocol reports folds into a
//! [`MetricAggregate`]: online moments ([`analysis::streaming::StreamingMoments`])
//! plus three P² quantile sketches (q = 0.1, 0.5, 0.9).  A finished cell is a
//! [`CellRecord`] — the unit the shard store persists, one JSONL line each.
//!
//! Aggregation order is trial order (the [`crate::TrialRunner`] returns
//! results in trial order regardless of thread count), so a record is a
//! deterministic function of the cell spec alone — the property the
//! byte-identical-resume guarantee rests on.

use std::collections::BTreeMap;

use analysis::streaming::{P2Quantile, P2State, StreamingEstimator, StreamingMoments};

use crate::error::SweepError;
use crate::json::Json;

/// The quantiles every metric tracks.
pub const TRACKED_QUANTILES: [f64; 3] = [0.1, 0.5, 0.9];

/// Streaming summary of one metric across a cell's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAggregate {
    /// Count / sum / mean / variance / min / max.
    pub moments: StreamingMoments,
    /// P² sketches for [`TRACKED_QUANTILES`], in that order.
    pub quantiles: [P2Quantile; 3],
}

impl MetricAggregate {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self {
            moments: StreamingMoments::new(),
            quantiles: TRACKED_QUANTILES
                .map(|q| P2Quantile::new(q).expect("tracked quantiles are valid")),
        }
    }

    /// Absorbs one trial's value.
    pub fn observe(&mut self, x: f64) {
        self.moments.observe(x);
        for sketch in &mut self.quantiles {
            sketch.observe(x);
        }
    }

    /// The estimate for tracked quantile index `i` (0 → q10, 1 → q50, 2 → q90).
    #[must_use]
    pub fn quantile(&self, i: usize) -> f64 {
        self.quantiles[i].estimate()
    }

    /// Serializes the full aggregate state.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let m = &self.moments;
        Json::object(vec![
            ("count".into(), Json::UInt(m.count)),
            ("sum".into(), Json::Float(m.sum)),
            ("welford_mean".into(), Json::Float(m.welford_mean)),
            ("m2".into(), Json::Float(m.m2)),
            ("min".into(), Json::Float(m.min)),
            ("max".into(), Json::Float(m.max)),
            (
                "quantiles".into(),
                Json::Array(
                    self.quantiles
                        .iter()
                        .map(|s| p2_to_json(&s.snapshot()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores an aggregate from [`MetricAggregate::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] on missing fields or inconsistent
    /// sketch state.
    pub fn from_json(doc: &Json) -> Result<Self, SweepError> {
        let moments = StreamingMoments {
            count: field_u64(doc, "count")?,
            sum: field_f64(doc, "sum")?,
            welford_mean: field_f64(doc, "welford_mean")?,
            m2: field_f64(doc, "m2")?,
            min: field_f64(doc, "min")?,
            max: field_f64(doc, "max")?,
        };
        let sketches = doc
            .get("quantiles")
            .and_then(Json::as_array)
            .ok_or_else(|| SweepError::Store("aggregate has no `quantiles`".into()))?;
        if sketches.len() != TRACKED_QUANTILES.len() {
            return Err(SweepError::Store(format!(
                "expected {} quantile sketches, found {}",
                TRACKED_QUANTILES.len(),
                sketches.len()
            )));
        }
        let mut quantiles = Vec::with_capacity(TRACKED_QUANTILES.len());
        for (expected_q, sketch) in TRACKED_QUANTILES.iter().zip(sketches) {
            let state = p2_from_json(sketch)?;
            if (state.q - expected_q).abs() > 1e-12 {
                return Err(SweepError::Store(format!(
                    "quantile sketch order mismatch: expected q={expected_q}, found q={}",
                    state.q
                )));
            }
            quantiles.push(
                P2Quantile::restore(state)
                    .ok_or_else(|| SweepError::Store("inconsistent P² sketch state".into()))?,
            );
        }
        let quantiles: [P2Quantile; 3] = quantiles
            .try_into()
            .map_err(|_| SweepError::Store("quantile sketch count mismatch".into()))?;
        Ok(Self { moments, quantiles })
    }
}

impl Default for MetricAggregate {
    fn default() -> Self {
        Self::new()
    }
}

fn p2_to_json(state: &P2State) -> Json {
    Json::object(vec![
        ("q".into(), Json::Float(state.q)),
        ("count".into(), Json::UInt(state.count)),
        (
            "heights".into(),
            Json::Array(state.heights.iter().map(|&v| Json::Float(v)).collect()),
        ),
        (
            "positions".into(),
            Json::Array(state.positions.iter().map(|&v| Json::Float(v)).collect()),
        ),
        (
            "desired".into(),
            Json::Array(state.desired.iter().map(|&v| Json::Float(v)).collect()),
        ),
        (
            "buffer".into(),
            Json::Array(state.buffer.iter().map(|&v| Json::Float(v)).collect()),
        ),
    ])
}

fn p2_from_json(doc: &Json) -> Result<P2State, SweepError> {
    Ok(P2State {
        q: field_f64(doc, "q")?,
        count: field_u64(doc, "count")?,
        heights: field_array5(doc, "heights")?,
        positions: field_array5(doc, "positions")?,
        desired: field_array5(doc, "desired")?,
        buffer: doc
            .get("buffer")
            .and_then(Json::as_array)
            .ok_or_else(|| SweepError::Store("sketch has no `buffer`".into()))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| SweepError::Store("non-numeric buffer entry".into()))
            })
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, SweepError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| SweepError::Store(format!("missing or non-numeric `{key}`")))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, SweepError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SweepError::Store(format!("missing or non-integer `{key}`")))
}

fn field_array5(doc: &Json, key: &str) -> Result<[f64; 5], SweepError> {
    let items = doc
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| SweepError::Store(format!("missing `{key}` array")))?;
    let values: Vec<f64> = items
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| SweepError::Store(format!("non-numeric `{key}` entry")))
        })
        .collect::<Result<_, _>>()?;
    values
        .try_into()
        .map_err(|_| SweepError::Store(format!("`{key}` must have exactly 5 entries")))
}

/// A completed sweep cell: its address, spec echo, and per-metric aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's content address ([`crate::ScenarioSpec::hash_hex`]).
    pub hash: String,
    /// The cell's seed point (also its position in the grid).
    pub point: u64,
    /// Trials aggregated into this record.
    pub trials: u32,
    /// Aggregates keyed by metric name (sorted — canonical order).
    pub metrics: BTreeMap<String, MetricAggregate>,
}

impl CellRecord {
    /// Builds a record by folding per-trial metric lists in trial order.
    ///
    /// Every trial must report the same metric names; the fold is sequential
    /// so the result is deterministic.
    #[must_use]
    pub fn from_trials(
        hash: String,
        point: u64,
        trial_metrics: &[Vec<(&'static str, f64)>],
    ) -> Self {
        let mut metrics: BTreeMap<String, MetricAggregate> = BTreeMap::new();
        for trial in trial_metrics {
            for (name, value) in trial {
                metrics
                    .entry((*name).to_string())
                    .or_default()
                    .observe(*value);
            }
        }
        Self {
            hash,
            point,
            trials: u32::try_from(trial_metrics.len()).expect("trials fit in u32"),
            metrics,
        }
    }

    /// One shard-store JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        Json::object(vec![
            ("cell".into(), Json::Str(self.hash.clone())),
            ("point".into(), Json::UInt(self.point)),
            ("trials".into(), Json::UInt(u64::from(self.trials))),
            (
                "metrics".into(),
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(name, agg)| (name.clone(), agg.to_json()))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parses one shard-store line.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Store`] on malformed JSON or schema drift.
    pub fn from_json_line(line: &str) -> Result<Self, SweepError> {
        let doc = crate::json::parse(line).map_err(SweepError::Store)?;
        let hash = doc
            .get("cell")
            .and_then(Json::as_str)
            .ok_or_else(|| SweepError::Store("record has no `cell` hash".into()))?
            .to_string();
        let point = field_u64(&doc, "point")?;
        let trials = u32::try_from(field_u64(&doc, "trials")?)
            .map_err(|_| SweepError::Store("`trials` does not fit in u32".into()))?;
        let metrics = match doc.get("metrics") {
            Some(Json::Object(pairs)) => pairs
                .iter()
                .map(|(name, value)| Ok((name.clone(), MetricAggregate::from_json(value)?)))
                .collect::<Result<BTreeMap<_, _>, SweepError>>()?,
            _ => return Err(SweepError::Store("record has no `metrics` object".into())),
        };
        Ok(Self {
            hash,
            point,
            trials,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_record() -> CellRecord {
        let trials: Vec<Vec<(&'static str, f64)>> = (0..40)
            .map(|t| {
                vec![
                    ("rounds", f64::from(t % 7) + 10.0),
                    ("fraction_correct", 1.0 - f64::from(t) / 100.0),
                    ("all_correct", f64::from(u32::from(t % 3 == 0))),
                ]
            })
            .collect();
        CellRecord::from_trials("00ff00ff00ff00ff".into(), 42, &trials)
    }

    #[test]
    fn fold_matches_batch_statistics() {
        let record = demo_record();
        assert_eq!(record.trials, 40);
        let rounds = &record.metrics["rounds"];
        assert_eq!(rounds.moments.count, 40);
        assert_eq!(rounds.moments.min, 10.0);
        assert_eq!(rounds.moments.max, 16.0);
        let values: Vec<f64> = (0..40).map(|t| f64::from(t % 7) + 10.0).collect();
        assert_eq!(rounds.moments.mean(), analysis::mean(&values));
        // The success-rate metric folds to successes/trials exactly.
        let successes = (0..40).filter(|t| t % 3 == 0).count() as f64;
        assert_eq!(record.metrics["all_correct"].moments.sum, successes);
    }

    #[test]
    fn record_round_trips_byte_identically() {
        let record = demo_record();
        let line = record.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = CellRecord::from_json_line(&line).unwrap();
        assert_eq!(parsed, record);
        // Serializing the parsed record reproduces the original bytes — the
        // property resumable exports depend on.
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn aggregate_round_trips_mid_stream_and_continues_identically() {
        let mut original = MetricAggregate::new();
        for i in 0..23 {
            original.observe(f64::from(i * i % 17));
        }
        let mut restored = MetricAggregate::from_json(&original.to_json()).unwrap();
        assert_eq!(restored, original);
        for i in 0..50 {
            original.observe(f64::from(i));
            restored.observe(f64::from(i));
        }
        assert_eq!(restored, original);
        // Small-count aggregates (buffer still in play) also round-trip.
        let mut young = MetricAggregate::new();
        young.observe(3.5);
        young.observe(-1.0);
        let back = MetricAggregate::from_json(&young.to_json()).unwrap();
        assert_eq!(back, young);
    }

    #[test]
    fn small_sample_and_duplicate_aggregates_serialize_exactly() {
        // A cell with fewer than five trials keeps raw observations in the
        // P² buffers; its serialized form must restore to the *identical*
        // aggregate (bit-exact floats via the shortest-round-trip JSON) and
        // re-serialize to the identical line.
        for trials in 1..5usize {
            let rows: Vec<Vec<(&'static str, f64)>> = (0..trials)
                .map(|t| vec![("rounds", 0.1 * t as f64 + 7.0), ("flat", -3.25)])
                .collect();
            let record = CellRecord::from_trials("feed".into(), 1, &rows);
            let line = record.to_json_line();
            let parsed = CellRecord::from_json_line(&line).unwrap();
            assert_eq!(parsed, record, "{trials} trials");
            assert_eq!(parsed.to_json_line(), line, "{trials} trials");
            // Pre-initialisation estimates are the exact interpolation of
            // the buffered values.
            let flat = &parsed.metrics["flat"];
            for q in 0..3 {
                assert_eq!(flat.quantile(q), -3.25);
            }
        }

        // All-duplicate inputs past the P² initialisation point: markers
        // collapse onto the constant and the state still round-trips
        // byte-identically.
        let rows: Vec<Vec<(&'static str, f64)>> = (0..40).map(|_| vec![("c", 42.5)]).collect();
        let record = CellRecord::from_trials("dupe".into(), 2, &rows);
        let line = record.to_json_line();
        let parsed = CellRecord::from_json_line(&line).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(parsed.to_json_line(), line);
        let c = &parsed.metrics["c"];
        assert_eq!(c.moments.min, 42.5);
        assert_eq!(c.moments.max, 42.5);
        assert_eq!(c.moments.mean(), 42.5);
        for q in 0..3 {
            assert_eq!(c.quantile(q), 42.5, "constant stream quantile {q}");
        }
    }

    #[test]
    fn quantile_estimates_are_exposed() {
        let mut agg = MetricAggregate::new();
        for i in 0..=100 {
            agg.observe(f64::from(i));
        }
        assert!((agg.quantile(1) - 50.0).abs() < 6.0, "median ≈ 50");
        assert!(agg.quantile(0) < agg.quantile(1));
        assert!(agg.quantile(1) < agg.quantile(2));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(CellRecord::from_json_line("").is_err());
        assert!(CellRecord::from_json_line("{\"cell\":\"x\"}").is_err());
        assert!(CellRecord::from_json_line("{\"point\":1}").is_err());
        // A truncated (torn) line is a parse error, not a panic.
        let line = demo_record().to_json_line();
        assert!(CellRecord::from_json_line(&line[..line.len() / 2]).is_err());
    }
}
