//! The protocol registry: scenario ids resolved to executable trial runners.
//!
//! A [`ProtocolRegistry`] maps a protocol id (the `protocol` field of a
//! [`ScenarioSpec`]) to a [`TrialFn`] that runs **one trial** of one cell and
//! returns its metrics as `(name, value)` pairs.  Every entry declares which
//! [`Backend`]s it supports, so a spec that asks the dense engine for an
//! agents-only protocol fails loudly at lookup time — before any cell runs.
//!
//! [`ProtocolRegistry::builtin`] registers the workloads the paper's sweeps
//! need:
//!
//! | id                   | backends               | faults | protocol                                       |
//! |----------------------|------------------------|--------|------------------------------------------------|
//! | `broadcast`          | agents                 |        | full two-stage noisy broadcast (`breathe`)     |
//! | `broadcast-detailed` | agents                 |        | broadcast with per-level Stage I statistics    |
//! | `majority-consensus` | agents                 |        | noisy majority-consensus from an initial set   |
//! | `rumor`              | agents, dense, hybrid  | ✓      | push rumor spreading until full activation     |
//! | `rumor-zealot`       | agents, dense, hybrid  |        | rumor spreading against a zealot subpopulation |
//! | `majority-sampler`   | dense                  |        | Stage-II style repeated noisy majority boost   |
//! | `mc-boost`           | agents                 |        | Monte-Carlo noisy-majority boost (Lemma 2.11)  |
//! | `async-broadcast`    | agents                 |        | broadcast on local clocks (Theorem 3.1)        |
//! | `baseline-compare`   | agents                 |        | breathe vs the §1.2/§1.6 baseline protocols    |
//! | `chain-relay`        | agents                 |        | relayed-bit reliability vs chain length (§1.6) |
//! | `two-party-samples`  | agents                 |        | exact majority-decoder sample counts (§1.4)    |
//! | `ben-or`             | agents                 | ✓      | Ben-Or randomized consensus (gossip adapted)   |
//! | `bv-broadcast`       | agents                 | ✓      | the BV-broadcast primitive (gossip adapted)    |
//! | `safe-bbc`           | agents                 | ✓      | safe binary Byzantine consensus (EST/AUX)      |
//! | `bft-compare`        | agents                 | ✓      | Stage-II majority vs Ben-Or, one trial each    |
//!
//! Backend capabilities are **family-level** ([`Backend::same_family`]): an
//! entry that lists `hybrid:16` accepts every `hybrid:k`.  The registry is
//! the workspace's single backend dispatch point — experiment bins and sweep
//! specs both resolve a `(protocol, backend)` pair here instead of matching
//! on the enum themselves.
//!
//! **Faults** — a spec whose `faults` field carries a directive (`byz:0.1`,
//! `crash:0.05@20`, ...) resolves only against fault-capable entries (the ✓
//! column; [`ProtocolRegistry::register_faulty`]); everything else rejects
//! it at lookup time.  Fault-capable runners parse the directive through
//! [`fault_spec_for`], which also honours the `fault_fraction` *param* so a
//! sweep axis can vary the faulty fraction cell-by-cell (`0` meaning
//! fault-free) without changing the directive string.
//!
//! Custom protocols register with [`ProtocolRegistry::register`]; the sweep
//! runner treats them identically.

use analysis::chernoff::majority_correct_probability;
use analysis::theory;
use baselines::{
    simulate_chain, BenOrAgent, BvBroadcastAgent, ForwardingProtocol, MajorityBoostAgent,
    NoisyVoterProtocol, SafeBbcAgent, ThreeStateProtocol, TwoChoicesProtocol,
    WaitForSourceProtocol,
};
use breathe::{
    AsyncBroadcastProtocol, AsyncVariant, BroadcastProtocol, InitialSet, MajorityConsensusProtocol,
    Multipliers, Params,
};
use flip_model::{
    Agent, Backend, BinarySymmetricChannel, Channel, DenseSimulation, FaultSpec, HybridSimulation,
    MajoritySamplerProtocol, Opinion, RumorAgent, RumorProtocol, SimRng, Simulation,
    SimulationConfig, StratifiedPopulation, StratifiedSimulation, ZealotAgent, ZealotRumorProtocol,
    DEFAULT_HYBRID_TRACKED,
};
use rand::Rng;

use crate::error::SweepError;
use crate::observe::TrialContext;
use crate::spec::ScenarioSpec;

/// Runs one trial of one cell: `(spec, trial_index, context)` → metric
/// pairs.
///
/// Implementations must be deterministic functions of
/// [`ScenarioSpec::seed_for_trial`]`(trial)` and should report a stable
/// metric-name set; a metric may be omitted for some trials of a cell (its
/// aggregate then covers the reporting trials only — per-level statistics
/// that exist only when the level activated, or run constants recorded on
/// trial 0 alone).  The [`TrialContext`] carries the
/// intra-round worker budget this trial may use (from
/// [`TrialRunner::round_threads`](crate::TrialRunner::round_threads)) and
/// the optional telemetry hub; because the engine's parallel rounds are
/// bit-identical across lane counts and phase timing never touches the
/// simulation RNG, neither may ever change a trial's metrics — protocols
/// that cannot honour them simply ignore the context.
pub type TrialFn = Box<
    dyn Fn(&ScenarioSpec, u64, &TrialContext) -> Result<Vec<(&'static str, f64)>, SweepError>
        + Send
        + Sync,
>;

struct ProtocolEntry {
    backends: Vec<Backend>,
    supports_faults: bool,
    run: TrialFn,
}

/// The scenario-id → runner mapping driving a sweep.
pub struct ProtocolRegistry {
    entries: std::collections::BTreeMap<String, ProtocolEntry>,
}

impl ProtocolRegistry {
    /// An empty registry (useful for fully custom harnesses).
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: std::collections::BTreeMap::new(),
        }
    }

    /// The registry with the built-in protocols (see the module docs).
    #[must_use]
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register("broadcast", &[Backend::Agents], Box::new(run_broadcast));
        registry.register(
            "broadcast-detailed",
            &[Backend::Agents],
            Box::new(run_broadcast_detailed),
        );
        registry.register("mc-boost", &[Backend::Agents], Box::new(run_mc_boost));
        registry.register(
            "async-broadcast",
            &[Backend::Agents],
            Box::new(run_async_broadcast),
        );
        registry.register(
            "baseline-compare",
            &[Backend::Agents],
            Box::new(run_baseline_compare),
        );
        registry.register("chain-relay", &[Backend::Agents], Box::new(run_chain_relay));
        registry.register(
            "two-party-samples",
            &[Backend::Agents],
            Box::new(run_two_party_samples),
        );
        registry.register(
            "majority-consensus",
            &[Backend::Agents],
            Box::new(run_majority_consensus),
        );
        registry.register_faulty(
            "rumor",
            &[
                Backend::Agents,
                Backend::Dense,
                Backend::Hybrid(DEFAULT_HYBRID_TRACKED),
            ],
            Box::new(run_rumor),
        );
        registry.register(
            "rumor-zealot",
            &[
                Backend::Agents,
                Backend::Dense,
                Backend::Hybrid(DEFAULT_HYBRID_TRACKED),
            ],
            Box::new(run_rumor_zealot),
        );
        registry.register(
            "majority-sampler",
            &[Backend::Dense],
            Box::new(run_majority_sampler),
        );
        registry.register_faulty("ben-or", &[Backend::Agents], Box::new(run_ben_or));
        registry.register_faulty(
            "bv-broadcast",
            &[Backend::Agents],
            Box::new(run_bv_broadcast),
        );
        registry.register_faulty("safe-bbc", &[Backend::Agents], Box::new(run_safe_bbc));
        registry.register_faulty("bft-compare", &[Backend::Agents], Box::new(run_bft_compare));
        registry
    }

    /// Registers (or replaces) a protocol that rejects fault directives.
    pub fn register(&mut self, id: &str, backends: &[Backend], run: TrialFn) {
        self.insert(id, backends, false, run);
    }

    /// Registers (or replaces) a fault-capable protocol: its runner is
    /// expected to honour the spec's `faults` directive (usually through
    /// [`fault_spec_for`]).
    pub fn register_faulty(&mut self, id: &str, backends: &[Backend], run: TrialFn) {
        self.insert(id, backends, true, run);
    }

    fn insert(&mut self, id: &str, backends: &[Backend], supports_faults: bool, run: TrialFn) {
        self.entries.insert(
            id.to_string(),
            ProtocolEntry {
                backends: backends.to_vec(),
                supports_faults,
                run,
            },
        );
    }

    /// The registered protocol ids with their supported backends, in id order.
    #[must_use]
    pub fn list(&self) -> Vec<(String, Vec<Backend>)> {
        self.entries
            .iter()
            .map(|(id, e)| (id.clone(), e.backends.clone()))
            .collect()
    }

    /// Resolves a cell to its trial runner, checking backend support.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Protocol`] for unknown ids or unsupported
    /// protocol/backend combinations.
    pub fn resolve(&self, spec: &ScenarioSpec) -> Result<&TrialFn, SweepError> {
        let entry = self.entries.get(&spec.protocol).ok_or_else(|| {
            SweepError::Protocol(format!(
                "unknown protocol `{}`; registered: {}",
                spec.protocol,
                self.entries.keys().cloned().collect::<Vec<_>>().join(", ")
            ))
        })?;
        if !entry.backends.iter().any(|b| b.same_family(spec.backend)) {
            return Err(SweepError::Protocol(format!(
                "protocol `{}` has no `{}` variant (supported: {})",
                spec.protocol,
                spec.backend,
                entry
                    .backends
                    .iter()
                    .map(|b| b.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        if !spec.faults.is_empty() && !entry.supports_faults {
            return Err(SweepError::Protocol(format!(
                "protocol `{}` does not support fault injection, but the spec carries \
                 `faults: {}`; drop the directive or pick a fault-capable protocol",
                spec.protocol, spec.faults
            )));
        }
        Ok(&entry.run)
    }

    /// Runs one trial of `spec` (resolve + execute) with sequential rounds.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolRegistry::resolve`] failures and simulation
    /// errors from the protocol itself.
    pub fn run_trial(
        &self,
        spec: &ScenarioSpec,
        trial: u64,
    ) -> Result<Vec<(&'static str, f64)>, SweepError> {
        self.run_trial_with_context(spec, trial, &TrialContext::sequential())
    }

    /// Runs one trial of `spec`, granting it `round_threads` intra-round
    /// worker lanes (the orchestrator passes
    /// [`TrialRunner::round_threads`](crate::TrialRunner::round_threads)
    /// here so trial fan-out and round workers share one budget).
    ///
    /// Results are bit-identical to [`ProtocolRegistry::run_trial`] for
    /// every `round_threads` value — the lanes trade wall-clock for cores,
    /// never determinism.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolRegistry::resolve`] failures and simulation
    /// errors from the protocol itself.
    pub fn run_trial_with_threads(
        &self,
        spec: &ScenarioSpec,
        trial: u64,
        round_threads: usize,
    ) -> Result<Vec<(&'static str, f64)>, SweepError> {
        self.run_trial_with_context(spec, trial, &TrialContext::new(round_threads))
    }

    /// Runs one trial of `spec` under an explicit [`TrialContext`] (thread
    /// budget plus optional telemetry hub).  The telemetry attachment obeys
    /// the same invariance contract as the thread budget: metrics are
    /// bit-identical with and without it.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolRegistry::resolve`] failures and simulation
    /// errors from the protocol itself.
    pub fn run_trial_with_context(
        &self,
        spec: &ScenarioSpec,
        trial: u64,
        context: &TrialContext,
    ) -> Result<Vec<(&'static str, f64)>, SweepError> {
        (self.resolve(spec)?)(spec, trial, context)
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

/// Builds `Params` from a cell: `n`/`epsilon` plus any of the multiplier
/// overrides (`s_mult`, `beta_mult`, `f_mult`, `gamma_mult`, `final_mult`,
/// `extra_boost_phases`) the spec carries.
fn params_from_spec(spec: &ScenarioSpec) -> Result<Params, SweepError> {
    let practical = Multipliers::practical();
    let multipliers = Multipliers {
        s_mult: spec.param_or("s_mult", practical.s_mult),
        beta_mult: spec.param_or("beta_mult", practical.beta_mult),
        f_mult: spec.param_or("f_mult", practical.f_mult),
        gamma_mult: spec.param_or("gamma_mult", practical.gamma_mult),
        extra_boost_phases: spec.param_or("extra_boost_phases", practical.extra_boost_phases as f64)
            as usize,
        final_mult: spec.param_or("final_mult", practical.final_mult),
    };
    let n = usize::try_from(spec.n())
        .map_err(|_| SweepError::Spec("`n` does not fit in usize".into()))?;
    Params::with_multipliers(n, spec.epsilon(), multipliers)
        .map_err(|e| SweepError::Spec(e.to_string()))
}

/// `broadcast`: the full two-stage protocol, one source, opinion `One`.
fn run_broadcast(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let params = params_from_spec(spec)?;
    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let mut sim = protocol.build_simulation(spec.seed_for_trial(trial))?;
    if ctx.telemetry_enabled() {
        sim.enable_telemetry();
    }
    let outcome = protocol.run_simulation(&mut sim);
    ctx.absorb(sim.take_telemetry());
    Ok(vec![
        ("total_rounds", outcome.total_rounds as f64),
        ("stage1_rounds", outcome.stage1_rounds as f64),
        ("messages_sent", outcome.messages_sent as f64),
        ("active_after_stage1", outcome.active_after_stage1 as f64),
        (
            "fraction_correct_after_stage1",
            outcome.fraction_correct_after_stage1,
        ),
        ("fraction_correct", outcome.fraction_correct),
        ("all_correct", f64::from(u8::from(outcome.all_correct))),
        ("stage1_bias", outcome.fraction_correct_after_stage1 - 0.5),
    ])
}

/// Interns a dynamically-built metric name (`prefix` + `index`) so level- and
/// phase-indexed metrics can use the `&'static str` names [`TrialFn`]
/// returns.  Names are leaked once and reused forever; the universe of
/// per-level names is tiny (a few dozen across a whole report run).
fn indexed_metric(prefix: &str, index: usize) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    static NAMES: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let name = format!("{prefix}{index}");
    let mut map = NAMES
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("metric-name interner poisoned");
    if let Some(&interned) = map.get(&name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

/// `broadcast-detailed`: one full broadcast run per trial with the per-level
/// Stage I statistics the E4/E5/E6/E7b tables render — level sizes, level
/// biases, the paper's Claim 2.2/2.4/2.8 bound checks (evaluated per trial
/// against this cell's `Params`), and the per-phase fraction-correct
/// trajectory.
///
/// Level-indexed metrics follow the legacy reporting rules exactly:
/// `level_cum_i`/`claim24_holds_i` cover levels `0..levels-1`;
/// `level_bias_i`/`claim28_holds_i` are omitted for a trial whose level `i`
/// activated no agents (the aggregates then cover the reporting trials
/// only, matching the legacy per-level vectors).
fn run_broadcast_detailed(
    spec: &ScenarioSpec,
    trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let params = params_from_spec(spec)?;
    let epsilon = spec.epsilon();
    let protocol = BroadcastProtocol::new(params.clone(), Opinion::One);
    let detailed = protocol.run_detailed(spec.seed_for_trial(trial))?;
    let levels = detailed.levels.len();
    let level0 = detailed.levels[0];
    let (lo, hi, min_bias) = theory::claim_2_2_bounds(params.beta_s(), epsilon);
    let claim22 =
        level0.activated as f64 >= lo && level0.activated as f64 <= hi && level0.bias() >= min_bias;
    let mut metrics: Vec<(&'static str, f64)> = vec![
        ("x0", level0.activated as f64),
        ("x0p1", level0.activated as f64 + 1.0),
        ("bias0", level0.bias()),
        ("claim22_holds", f64::from(u8::from(claim22))),
        ("levels", levels as f64),
        (
            "all_active",
            f64::from(u8::from(detailed.outcome.active_after_stage1 == params.n())),
        ),
        (
            "stage1_bias",
            detailed.outcome.fraction_correct_after_stage1 - 0.5,
        ),
        (
            "stage1_bias_positive",
            f64::from(u8::from(
                detailed.outcome.fraction_correct_after_stage1 - 0.5 > 0.0,
            )),
        ),
    ];
    let beta = params.beta();
    for level in 0..levels.saturating_sub(1) {
        let x0 = detailed.levels[0].activated + 1;
        let cumulative = detailed.levels[..=level]
            .iter()
            .map(|l| l.activated)
            .sum::<usize>()
            + 1;
        let (lo, hi) = theory::claim_2_4_bounds(beta, x0 as u64, level as u32);
        let holds = cumulative as f64 >= lo && cumulative as f64 <= hi + 1.0;
        metrics.push((indexed_metric("level_cum_", level), cumulative as f64));
        metrics.push((
            indexed_metric("claim24_holds_", level),
            f64::from(u8::from(holds)),
        ));
    }
    for (level, stats) in detailed.levels.iter().enumerate() {
        if stats.activated == 0 {
            continue;
        }
        let bound = theory::claim_2_8_bias_lower_bound(epsilon, level as u32);
        metrics.push((indexed_metric("level_bias_", level), stats.bias()));
        metrics.push((
            indexed_metric("claim28_holds_", level),
            f64::from(u8::from(stats.bias() >= bound)),
        ));
    }
    for (phase, &fraction) in detailed.fraction_correct_after_phase.iter().enumerate() {
        metrics.push((indexed_metric("phase_frac_", phase), fraction));
    }
    Ok(metrics)
}

/// `mc-boost`: the Lemma 2.11 Monte-Carlo estimate — `gamma` (from the
/// cell's `Params`) noisy samples of a `delta`-biased population, majority
/// decoded, repeated `mc_trials` times inside **one** cell trial.
///
/// The whole estimate is one draw, so the spec must set `trials = 1`; the
/// sample count rides in the `mc_trials` param.  Seeding matches the legacy
/// E7a loop: the RNG is `stream_seed(stream_seed(base_seed, seed_point),
/// point - seed_point)` with `seed_point` defaulting to the legacy `700`, so
/// the cell at `point = seed_point + idx` reproduces
/// `cfg.seed_for(seed_point, idx)` exactly.
fn run_mc_boost(
    spec: &ScenarioSpec,
    _trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    if spec.trials != 1 {
        return Err(SweepError::Spec(format!(
            "`mc-boost` cells are single-draw Monte-Carlo estimates; set `trials` to 1 and put \
             the sample count in the `mc_trials` param (got trials = {})",
            spec.trials
        )));
    }
    let params = params_from_spec(spec)?;
    let gamma = params.gamma();
    let epsilon = spec.epsilon();
    let Some(&delta) = spec.params.get("delta") else {
        return Err(SweepError::Spec(
            "`mc-boost` needs a `delta` param (the population bias to boost)".into(),
        ));
    };
    let mc_trials = spec.param_or("mc_trials", 0.0) as u32;
    if mc_trials == 0 {
        return Err(SweepError::Spec(
            "`mc-boost` needs `mc_trials` >= 1 (the Monte-Carlo sample count)".into(),
        ));
    }
    let seed_point = spec.param_or("seed_point", 700.0) as u64;
    let Some(idx) = spec.point.checked_sub(seed_point) else {
        return Err(SweepError::Spec(format!(
            "`mc-boost` cell point {} precedes its seed point {seed_point}",
            spec.point
        )));
    };
    let seed = SimRng::stream_seed(SimRng::stream_seed(spec.base_seed, seed_point), idx);
    let channel = BinarySymmetricChannel::from_epsilon(epsilon)
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let mut rng = SimRng::from_seed(seed);
    let mut correct_majorities = 0u32;
    for _ in 0..mc_trials {
        let mut correct_samples = 0u64;
        for _ in 0..gamma {
            // Sample an agent from a population with bias delta, then transmit.
            let opinion_correct = rng.gen::<f64>() < 0.5 + delta;
            let sent = if opinion_correct {
                Opinion::One
            } else {
                Opinion::Zero
            };
            if channel.transmit(sent, &mut rng) == Opinion::One {
                correct_samples += 1;
            }
        }
        if 2 * correct_samples > gamma {
            correct_majorities += 1;
        }
    }
    Ok(vec![(
        "measured",
        f64::from(correct_majorities) / f64::from(mc_trials),
    )])
}

/// `async-broadcast`: the Theorem 3.1 local-clock broadcast.  The `variant`
/// param selects the construction: `0` runs bounded clock offsets (with the
/// legacy `d = 2⌈log₂ n⌉` bound), `1` the resynchronised schedule.
///
/// `all_correct` is reported every trial; the round counts
/// (`sync_rounds`/`total_rounds`/`overhead_rounds`) are fixed by the
/// schedule, so they are recorded on trial 0 only — exactly the values the
/// legacy E9 table displayed from its first outcome.
fn run_async_broadcast(
    spec: &ScenarioSpec,
    trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let params = params_from_spec(spec)?;
    let d = 2 * (spec.n() as f64).log2().ceil() as u64;
    let variant = match spec.param_or("variant", 0.0) {
        0.0 => AsyncVariant::BoundedOffsets { max_offset: d },
        1.0 => AsyncVariant::Resynchronised,
        other => {
            return Err(SweepError::Spec(format!(
                "`async-broadcast` knows variants 0 (bounded offsets) and 1 (resynchronised), \
                 got `variant = {other}`"
            )))
        }
    };
    let protocol = AsyncBroadcastProtocol::new(params, Opinion::One, variant);
    let outcome = protocol.run_with_seed(spec.seed_for_trial(trial))?;
    let mut metrics: Vec<(&'static str, f64)> =
        vec![("all_correct", f64::from(u8::from(outcome.all_correct)))];
    if trial == 0 {
        metrics.push(("sync_rounds", outcome.synchronous_rounds as f64));
        metrics.push(("total_rounds", outcome.total_rounds as f64));
        metrics.push(("overhead_rounds", outcome.overhead_rounds() as f64));
    }
    Ok(metrics)
}

/// `baseline-compare`: one protocol from the E10 comparison per cell, picked
/// by the `baseline` param — `0` breathe itself, `1` immediate forwarding,
/// `2` wait-for-source, `3` two-choices majority, `4` three-state majority,
/// `5` noisy voter with a zealot.  Every baseline gets the breathe round
/// budget (`Params::total_rounds` for the cell's `n`/`ε`), the legacy
/// apples-to-apples rule.
fn run_baseline_compare(
    spec: &ScenarioSpec,
    trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let n = usize::try_from(spec.n())
        .map_err(|_| SweepError::Spec("`n` does not fit in usize".into()))?;
    let epsilon = spec.epsilon();
    let params = params_from_spec(spec)?;
    let budget = params.total_rounds();
    let correct = Opinion::One;
    let seed = spec.seed_for_trial(trial);
    let spec_err = |e: flip_model::FlipError| SweepError::Spec(e.to_string());
    let (fraction, all_correct) = match spec.param_or("baseline", -1.0) as i64 {
        0 => {
            let outcome = BroadcastProtocol::new(params, correct).run_with_seed(seed)?;
            (outcome.fraction_correct, outcome.all_correct)
        }
        1 => {
            let outcome = ForwardingProtocol::new(n, epsilon, budget)
                .map_err(spec_err)?
                .run_with_seed(correct, seed)?;
            (outcome.fraction_correct, outcome.all_correct)
        }
        2 => {
            let outcome = WaitForSourceProtocol::new(n, epsilon, budget)
                .map_err(spec_err)?
                .run_with_seed(correct, seed)?;
            (outcome.fraction_correct, outcome.all_correct)
        }
        3 => {
            let outcome = TwoChoicesProtocol::new(n, epsilon, budget)
                .map_err(spec_err)?
                .run_with_seed(correct, n / 2 + 1, seed)?;
            (outcome.fraction_correct, outcome.all_correct)
        }
        4 => {
            let outcome = ThreeStateProtocol::new(n, epsilon, budget)
                .map_err(spec_err)?
                .run_with_seed(correct, 1, 0, seed)?;
            (outcome.fraction_correct, outcome.all_correct)
        }
        5 => {
            let outcome = NoisyVoterProtocol::new(n, epsilon, budget)
                .map_err(spec_err)?
                .run_with_seed(correct, seed)?;
            (outcome.fraction_correct, outcome.all_correct)
        }
        other => {
            return Err(SweepError::Spec(format!(
                "`baseline-compare` knows baselines 0..=5, got `baseline = {other}`"
            )))
        }
    };
    Ok(vec![
        ("fraction_correct", fraction),
        ("all_correct", f64::from(u8::from(all_correct))),
    ])
}

/// `chain-relay`: the §1.6 relay chain — one bit forwarded over `hops`
/// noisy links, majority over nothing (a single path), measured over
/// `samples` chains inside one cell trial (so `trials` must be 1).
///
/// Seeding matches the legacy E11 loop: `stream_seed(stream_seed(base_seed,
/// seed_point), hops)` with `seed_point` defaulting to the legacy `1100` —
/// the legacy seed depended on the hop count only, never on `ε`.
fn run_chain_relay(
    spec: &ScenarioSpec,
    _trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    if spec.trials != 1 {
        return Err(SweepError::Spec(format!(
            "`chain-relay` cells are single-draw Monte-Carlo estimates; set `trials` to 1 and \
             put the chain count in the `samples` param (got trials = {})",
            spec.trials
        )));
    }
    let epsilon = spec.epsilon();
    let Some(&hops) = spec.params.get("hops") else {
        return Err(SweepError::Spec(
            "`chain-relay` needs a `hops` param (the chain length)".into(),
        ));
    };
    let hops = hops as u32;
    let samples = spec.param_or("samples", 0.0) as u32;
    if samples == 0 {
        return Err(SweepError::Spec(
            "`chain-relay` needs `samples` >= 1 (the number of chains to simulate)".into(),
        ));
    }
    let seed_point = spec.param_or("seed_point", 1_100.0) as u64;
    let seed = SimRng::stream_seed(
        SimRng::stream_seed(spec.base_seed, seed_point),
        u64::from(hops),
    );
    let measured = simulate_chain(epsilon, hops, samples, seed)
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    Ok(vec![("measured", measured)])
}

/// The smallest odd sample count for which an exact majority decoder over a
/// binary symmetric channel with crossover `1/2 - epsilon` reaches the given
/// confidence (searched in steps of two; capped at ~10⁶ samples).
///
/// This is the E12 workhorse; it lives here so the `two-party-samples`
/// protocol and the experiment renderers share one definition.
#[must_use]
pub fn samples_for_confidence(epsilon: f64, confidence: f64) -> u64 {
    let p = 0.5 + epsilon;
    let mut samples = 1u64;
    while majority_correct_probability(samples, p) < confidence {
        samples += 2;
        if samples > 1_000_000 {
            break;
        }
    }
    samples
}

/// `two-party-samples`: the §1.4 two-party lower-bound table — the exact
/// (deterministic) majority-decoder sample count for the cell's `ε` at the
/// `confidence` param (default `0.99`).  Deterministic, so `trials` must be
/// 1.
fn run_two_party_samples(
    spec: &ScenarioSpec,
    _trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    if spec.trials != 1 {
        return Err(SweepError::Spec(format!(
            "`two-party-samples` is deterministic; set `trials` to 1 (got {})",
            spec.trials
        )));
    }
    let confidence = spec.param_or("confidence", 0.99);
    if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
        return Err(SweepError::Spec(format!(
            "`confidence` must be in (0, 1), got {confidence}"
        )));
    }
    let needed = samples_for_confidence(spec.epsilon(), confidence);
    Ok(vec![("samples", needed as f64)])
}

/// `majority-consensus`: params `initial_size` and `initial_bias` select the
/// opinionated set.
fn run_majority_consensus(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let params = params_from_spec(spec)?;
    let size = spec.param_or("initial_size", spec.n() as f64) as usize;
    let bias = spec.param_or("initial_bias", 0.1);
    let initial = InitialSet::with_bias(size, bias).map_err(|e| SweepError::Spec(e.to_string()))?;
    let protocol = MajorityConsensusProtocol::new(params, Opinion::One, initial)
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let mut sim = protocol.build_simulation(spec.seed_for_trial(trial))?;
    if ctx.telemetry_enabled() {
        sim.enable_telemetry();
    }
    let outcome = protocol.run_simulation(&mut sim);
    ctx.absorb(sim.take_telemetry());
    Ok(vec![
        ("total_rounds", outcome.total_rounds as f64),
        ("messages_sent", outcome.messages_sent as f64),
        ("initial_majority_bias", outcome.initial_majority_bias),
        ("fraction_correct", outcome.fraction_correct),
        ("all_correct", f64::from(u8::from(outcome.all_correct))),
    ])
}

/// Resolves a cell's effective fault assignment: the spec's `faults`
/// directive, with the fraction overridden by the `fault_fraction` param
/// when present.
///
/// The override lets a sweep axis vary the faulty fraction cell-by-cell
/// against a single directive string: `fault_fraction = 0` means
/// *fault-free* (so a sweep can include the honest baseline in its grid),
/// any other value replaces the directive's fraction while keeping its
/// kind.  A `fault_fraction` without a base directive is a spec error —
/// there is no fault kind to apply it to.
///
/// # Errors
///
/// Returns [`SweepError::Spec`] for unparsable directives, a
/// `fault_fraction` outside `(0, 1)`, or an override with no base
/// directive.
pub fn fault_spec_for(spec: &ScenarioSpec) -> Result<Option<FaultSpec>, SweepError> {
    let base: Option<FaultSpec> = if spec.faults.is_empty() {
        None
    } else {
        Some(
            spec.faults
                .parse()
                .map_err(|e: flip_model::FlipError| SweepError::Spec(e.to_string()))?,
        )
    };
    let Some(&fraction) = spec.params.get("fault_fraction") else {
        return Ok(base);
    };
    if fraction == 0.0 {
        return Ok(None);
    }
    let Some(base) = base else {
        return Err(SweepError::Spec(
            "`fault_fraction` overrides the fraction of the spec's `faults` directive, \
             but this spec has no `faults` directive to override"
                .into(),
        ));
    };
    FaultSpec::new(base.kind, fraction)
        .map(Some)
        .map_err(|e| SweepError::Spec(e.to_string()))
}

/// Applies a resolved fault assignment to an engine config.
fn with_faults(config: SimulationConfig, fault: Option<FaultSpec>) -> SimulationConfig {
    match fault {
        Some(spec) => config.with_faults(spec),
        None => config,
    }
}

/// Validates a hybrid tracked-subpopulation size against the cell's `n`.
fn hybrid_tracked(k: u32, n: usize) -> Result<usize, SweepError> {
    let k = k as usize;
    if k == 0 {
        return Err(SweepError::Spec(
            "`hybrid:0` tracks no agents; the tracked subpopulation size must be >= 1".into(),
        ));
    }
    if k >= n {
        return Err(SweepError::Spec(format!(
            "`hybrid:{k}` leaves no dense bulk at n = {n}; use the agents backend instead"
        )));
    }
    Ok(k)
}

/// `rumor`: `informed` agents start active; runs until full activation or
/// the cell's round cap, on any engine family.  The agents backend hands
/// `round_threads` to the engine's (bit-identical) parallel router; the
/// dense and hybrid backends are counts-based and have no per-message work
/// to split.  On `hybrid:k` the tracked agents are the first `k` slots of
/// the canonical per-agent layout (informed first, then undecided).
///
/// Fault-capable: a `faults` directive assigns roles on the agents backend
/// (and on the tracked side of `hybrid:k`, whose constructor checks that
/// `k` covers the faulty count).  The dense backend has no per-agent roles
/// and rejects faults loudly.
fn run_rumor(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    if spec.rounds == 0 {
        return Err(SweepError::Spec(
            "`rumor` needs a round cap (`rounds` > 0)".into(),
        ));
    }
    let n = usize::try_from(spec.n())
        .map_err(|_| SweepError::Spec("`n` does not fit in usize".into()))?;
    let informed = spec.param_or("informed", 1.0) as u64;
    let fault = fault_spec_for(spec)?;
    let channel = BinarySymmetricChannel::from_epsilon(spec.epsilon())
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let config = with_faults(
        SimulationConfig::new(n)
            .with_seed(spec.seed_for_trial(trial))
            .with_reference(Opinion::One)
            .with_threads(ctx.round_threads),
        fault,
    );
    let (rounds, fraction, messages) = match spec.backend {
        Backend::Dense => {
            if fault.is_some() {
                return Err(SweepError::Spec(
                    "the dense backend aggregates agents into counts and has no per-agent \
                     fault roles; run faulty `rumor` cells on `agents` or `hybrid:k`"
                        .into(),
                ));
            }
            let population = RumorProtocol::population(spec.n(), 0, informed);
            let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config)?;
            let rounds = sim.run_until(spec.rounds, |s| s.census().active() == n);
            (
                rounds,
                sim.census().fraction_correct(Opinion::One),
                sim.metrics().messages_sent,
            )
        }
        Backend::Agents => {
            let agents = RumorAgent::population(n, 0, informed as usize);
            let mut sim = Simulation::new(agents, channel, config)?;
            if ctx.telemetry_enabled() {
                sim.enable_telemetry();
            }
            let rounds = sim.run_until(spec.rounds, |s| s.census().active() == n);
            ctx.absorb(sim.take_telemetry());
            (
                rounds,
                sim.census().fraction_correct(Opinion::One),
                sim.metrics().messages_sent,
            )
        }
        Backend::Hybrid(k) => {
            let k = hybrid_tracked(k, n)?;
            let tracked_ones = informed.min(k as u64);
            let tracked = RumorAgent::population(k, 0, tracked_ones as usize);
            let bulk = StratifiedPopulation::single(RumorProtocol::population(
                (n - k) as u64,
                0,
                informed - tracked_ones,
            ));
            let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config)?;
            if ctx.telemetry_enabled() {
                sim.enable_telemetry();
            }
            let rounds = sim.run_until(spec.rounds, |s| s.census().active() == n);
            ctx.absorb(sim.take_telemetry());
            (
                rounds,
                sim.census().fraction_correct(Opinion::One),
                sim.metrics().messages_sent,
            )
        }
    };
    Ok(vec![
        ("rounds", rounds as f64),
        ("fraction_correct", fraction),
        ("messages_sent", messages as f64),
    ])
}

/// `rumor-zealot`: heterogeneous rumor spreading — `informed` honest agents
/// seed [`Opinion::One`] while a `zealots`-sized subpopulation pushes
/// [`Opinion::Zero`] every round and never listens.  Two strata on the
/// dense engine, the same split agent-by-agent on the reference engine, and
/// on `hybrid:k` the first `k` agents of the per-agent layout (honest
/// first, zealots last) tracked exactly against the stratified bulk.
fn run_rumor_zealot(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    if spec.rounds == 0 {
        return Err(SweepError::Spec(
            "`rumor-zealot` needs a round cap (`rounds` > 0)".into(),
        ));
    }
    let n = usize::try_from(spec.n())
        .map_err(|_| SweepError::Spec("`n` does not fit in usize".into()))?;
    let informed = spec.param_or("informed", 1.0) as u64;
    let zealots = spec.param_or("zealots", 0.0) as u64;
    if zealots == 0 {
        return Err(SweepError::Spec(
            "`rumor-zealot` needs `zealots` > 0 (use `rumor` for the homogeneous case)".into(),
        ));
    }
    if informed + zealots > spec.n() {
        return Err(SweepError::Spec(format!(
            "`informed` + `zealots` = {} exceeds n = {}",
            informed + zealots,
            spec.n()
        )));
    }
    let channel = BinarySymmetricChannel::from_epsilon(spec.epsilon())
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let config = SimulationConfig::new(n)
        .with_seed(spec.seed_for_trial(trial))
        .with_reference(Opinion::One)
        .with_threads(ctx.round_threads);
    let (rounds, fraction, messages) = match spec.backend {
        Backend::Dense => {
            let population = ZealotRumorProtocol::population(spec.n(), 0, informed, zealots);
            let mut sim = StratifiedSimulation::new(
                ZealotRumorProtocol,
                vec![channel; 2],
                population,
                config,
            )?;
            let rounds = sim.run_until(spec.rounds, |s| s.census().active() == n);
            (
                rounds,
                sim.census().fraction_correct(Opinion::One),
                sim.metrics().messages_sent,
            )
        }
        Backend::Agents => {
            let agents = ZealotAgent::population(n, 0, informed as usize, zealots as usize);
            let mut sim = Simulation::new(agents, channel, config)?;
            if ctx.telemetry_enabled() {
                sim.enable_telemetry();
            }
            let rounds = sim.run_until(spec.rounds, |s| s.census().active() == n);
            ctx.absorb(sim.take_telemetry());
            (
                rounds,
                sim.census().fraction_correct(Opinion::One),
                sim.metrics().messages_sent,
            )
        }
        Backend::Hybrid(k) => {
            let k = hybrid_tracked(k, n)?;
            let honest = n - zealots as usize;
            // First k agents of the per-agent layout: informed ones, then
            // undecided honest, then zealots.
            let tracked: Vec<ZealotAgent> =
                ZealotAgent::population(n, 0, informed as usize, zealots as usize)
                    .into_iter()
                    .take(k)
                    .collect();
            let tracked_ones = informed.min(k as u64);
            let tracked_undecided = (k as u64 - tracked_ones).min(honest as u64 - informed);
            let tracked_zealots = k as u64 - tracked_ones - tracked_undecided;
            let bulk = StratifiedPopulation::from_strata(vec![
                vec![
                    honest as u64 - informed - tracked_undecided,
                    0,
                    informed - tracked_ones,
                ],
                vec![zealots - tracked_zealots],
            ])
            .map_err(|e| SweepError::Spec(e.to_string()))?;
            let mut sim =
                HybridSimulation::new(tracked, ZealotRumorProtocol, channel, bulk, config)?;
            if ctx.telemetry_enabled() {
                sim.enable_telemetry();
            }
            let rounds = sim.run_until(spec.rounds, |s| s.census().active() == n);
            ctx.absorb(sim.take_telemetry());
            (
                rounds,
                sim.census().fraction_correct(Opinion::One),
                sim.metrics().messages_sent,
            )
        }
    };
    Ok(vec![
        ("rounds", rounds as f64),
        ("fraction_correct", fraction),
        ("messages_sent", messages as f64),
    ])
}

/// `majority-sampler`: dense Stage-II boost.  Param `initial_bias` sets the
/// whole-population bias towards the correct opinion; phase length is the
/// paper's odd `Θ(1/ε²)` and the phase count `2·⌈log₂ n⌉` (the E8-D
/// schedule).
fn run_majority_sampler(
    spec: &ScenarioSpec,
    trial: u64,
    _ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let epsilon = spec.epsilon();
    let n = spec.n();
    let bias = spec.param_or("initial_bias", 0.01);
    if !(-0.5..=0.5).contains(&bias) {
        return Err(SweepError::Spec(format!(
            "`initial_bias` must be in [-0.5, 0.5] (a whole-population bias), got {bias}"
        )));
    }
    let phase_len = ((2.0 / (epsilon * epsilon)).ceil() as u64) | 1;
    let phases = 2 * (n as f64).log2().ceil() as u64;
    let correct = (((0.5 + bias) * n as f64).round() as u64).min(n);
    let sampler = MajoritySamplerProtocol::new(phase_len);
    let population = sampler.population(n - correct, correct);
    let channel = BinarySymmetricChannel::from_epsilon(epsilon)
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let config = SimulationConfig::new(
        usize::try_from(n).map_err(|_| SweepError::Spec("`n` does not fit in usize".into()))?,
    )
    .with_seed(spec.seed_for_trial(trial))
    .with_reference(Opinion::One);
    let mut sim = DenseSimulation::new(sampler, channel, population, config)?;
    sim.run(phases * phase_len);
    let fraction = sim.census().fraction_correct(Opinion::One);
    Ok(vec![
        ("fraction_correct", fraction),
        ("majority_preserved", f64::from(u8::from(fraction > 0.5))),
        ("phases", phases as f64),
    ])
}

/// Shared setup for the consensus comparators: `(n, initially-correct
/// count, phase length)` from the `initial_bias` (default `0.1`) and
/// `phase_len` (default `15`) params, requiring a round cap.
fn consensus_setup(spec: &ScenarioSpec) -> Result<(usize, usize, u64), SweepError> {
    if spec.rounds == 0 {
        return Err(SweepError::Spec(format!(
            "`{}` needs a round cap (`rounds` > 0)",
            spec.protocol
        )));
    }
    let n = usize::try_from(spec.n())
        .map_err(|_| SweepError::Spec("`n` does not fit in usize".into()))?;
    let bias = spec.param_or("initial_bias", 0.1);
    if !(-0.5..=0.5).contains(&bias) {
        return Err(SweepError::Spec(format!(
            "`initial_bias` must be in [-0.5, 0.5] (a whole-population bias), got {bias}"
        )));
    }
    let correct = ((0.5 + bias) * n as f64).round() as usize;
    let phase_len = spec.param_or("phase_len", 15.0) as u64;
    if phase_len == 0 {
        return Err(SweepError::Spec("`phase_len` must be >= 1".into()));
    }
    Ok((n, correct.min(n), phase_len))
}

/// Counts `(honest agents, honest agents satisfying pred)` over a
/// per-agent simulation, skipping agents the fault plan marked faulty —
/// the E13 statistics are about what the *honest* population achieves
/// despite the faulty one, whose state is adversarial garbage.
fn honest_count<A: flip_model::Agent, C: flip_model::Channel>(
    sim: &Simulation<A, C>,
    pred: impl Fn(&A) -> bool,
) -> (usize, usize) {
    let mut honest = 0;
    let mut matching = 0;
    for (i, agent) in sim.agents().iter().enumerate() {
        if sim.fault_plan().is_some_and(|p| p.is_faulty(i)) {
            continue;
        }
        honest += 1;
        matching += usize::from(pred(agent));
    }
    (honest, matching)
}

/// The consensus engine config shared by the `ben-or`/`bv-broadcast`/
/// `safe-bbc`/`bft-compare` runners.
fn consensus_config(
    n: usize,
    seed: u64,
    round_threads: usize,
    fault: Option<FaultSpec>,
) -> SimulationConfig {
    with_faults(
        SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
            .with_threads(round_threads),
        fault,
    )
}

/// `ben-or`: gossip-adapted Ben-Or consensus, run until every honest agent
/// decides or the round cap.  Fault-capable; statistics are honest-only.
fn run_ben_or(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let (n, correct, phase_len) = consensus_setup(spec)?;
    let fault = fault_spec_for(spec)?;
    let channel = BinarySymmetricChannel::from_epsilon(spec.epsilon())
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let config = consensus_config(n, spec.seed_for_trial(trial), ctx.round_threads, fault);
    let agents = BenOrAgent::population(n, correct, phase_len);
    let mut sim = Simulation::new(agents, channel, config)?;
    if ctx.telemetry_enabled() {
        sim.enable_telemetry();
    }
    let rounds = sim.run_until(spec.rounds, |s| {
        s.agents()
            .iter()
            .enumerate()
            .all(|(i, a)| a.is_done() || s.fault_plan().is_some_and(|p| p.is_faulty(i)))
    });
    ctx.absorb(sim.take_telemetry());
    let (honest, correct_now) = honest_count(&sim, |a| a.opinion() == Some(Opinion::One));
    let (_, decided) = honest_count(&sim, |a| a.is_done());
    let (_, decided_correct) = honest_count(&sim, |a| a.decided() == Some(Opinion::One));
    let honest = honest.max(1) as f64;
    Ok(vec![
        ("rounds", rounds as f64),
        ("fraction_correct", correct_now as f64 / honest),
        ("decided_fraction", decided as f64 / honest),
        ("decided_correct_fraction", decided_correct as f64 / honest),
        ("messages_sent", sim.metrics().messages_sent as f64),
    ])
}

/// `bv-broadcast`: the BV primitive run for the full round cap; reports
/// which values achieved delivery among the honest agents.
fn run_bv_broadcast(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let (n, correct, phase_len) = consensus_setup(spec)?;
    let fault = fault_spec_for(spec)?;
    let channel = BinarySymmetricChannel::from_epsilon(spec.epsilon())
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let config = consensus_config(n, spec.seed_for_trial(trial), ctx.round_threads, fault);
    let agents = BvBroadcastAgent::population(n, correct, phase_len);
    let mut sim = Simulation::new(agents, channel, config)?;
    if ctx.telemetry_enabled() {
        sim.enable_telemetry();
    }
    sim.run(spec.rounds);
    ctx.absorb(sim.take_telemetry());
    let (honest, delivered_one) = honest_count(&sim, |a| a.bin_value(Opinion::One));
    let (_, delivered_zero) = honest_count(&sim, |a| a.bin_value(Opinion::Zero));
    let honest = honest.max(1) as f64;
    Ok(vec![
        ("rounds", spec.rounds as f64),
        ("delivered_one_fraction", delivered_one as f64 / honest),
        ("delivered_zero_fraction", delivered_zero as f64 / honest),
        ("messages_sent", sim.metrics().messages_sent as f64),
    ])
}

/// `safe-bbc`: the EST/AUX safe binary Byzantine consensus loop, run until
/// every honest agent decides or the round cap.  Honest-only statistics.
fn run_safe_bbc(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let (n, correct, phase_len) = consensus_setup(spec)?;
    let fault = fault_spec_for(spec)?;
    let channel = BinarySymmetricChannel::from_epsilon(spec.epsilon())
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let config = consensus_config(n, spec.seed_for_trial(trial), ctx.round_threads, fault);
    let agents = SafeBbcAgent::population(n, correct, phase_len);
    let mut sim = Simulation::new(agents, channel, config)?;
    if ctx.telemetry_enabled() {
        sim.enable_telemetry();
    }
    let rounds = sim.run_until(spec.rounds, |s| {
        s.agents()
            .iter()
            .enumerate()
            .all(|(i, a)| a.is_done() || s.fault_plan().is_some_and(|p| p.is_faulty(i)))
    });
    ctx.absorb(sim.take_telemetry());
    let (honest, correct_now) = honest_count(&sim, |a| a.opinion() == Some(Opinion::One));
    let (_, decided) = honest_count(&sim, |a| a.is_done());
    let (_, decided_correct) = honest_count(&sim, |a| a.decided() == Some(Opinion::One));
    let honest = honest.max(1) as f64;
    Ok(vec![
        ("rounds", rounds as f64),
        ("fraction_correct", correct_now as f64 / honest),
        ("decided_fraction", decided as f64 / honest),
        ("decided_correct_fraction", decided_correct as f64 / honest),
        ("messages_sent", sim.metrics().messages_sent as f64),
    ])
}

/// `bft-compare` (the E13 workload): one trial runs the paper's Stage-II
/// style majority boost *and* gossip-adapted Ben-Or over the same cell —
/// identical `n`, noise, fault directive and round cap — with the two
/// engines sub-seeded from the trial seed
/// ([`SimRng::stream_seed`]`(trial_seed, 0 | 1)`), so the comparison is
/// apples-to-apples per trial and remains thread-count-invariant.
fn run_bft_compare(
    spec: &ScenarioSpec,
    trial: u64,
    ctx: &TrialContext,
) -> Result<Vec<(&'static str, f64)>, SweepError> {
    let (n, correct, phase_len) = consensus_setup(spec)?;
    let fault = fault_spec_for(spec)?;
    let channel = BinarySymmetricChannel::from_epsilon(spec.epsilon())
        .map_err(|e| SweepError::Spec(e.to_string()))?;
    let trial_seed = spec.seed_for_trial(trial);

    let config = consensus_config(
        n,
        SimRng::stream_seed(trial_seed, 0),
        ctx.round_threads,
        fault,
    );
    let agents = MajorityBoostAgent::population(n, correct, phase_len);
    let mut majority = Simulation::new(agents, channel, config)?;
    if ctx.telemetry_enabled() {
        majority.enable_telemetry();
    }
    majority.run(spec.rounds);
    ctx.absorb(majority.take_telemetry());
    let (honest, majority_correct) = honest_count(&majority, |a| a.opinion() == Some(Opinion::One));

    let config = consensus_config(
        n,
        SimRng::stream_seed(trial_seed, 1),
        ctx.round_threads,
        fault,
    );
    let agents = BenOrAgent::population(n, correct, phase_len);
    let mut benor = Simulation::new(agents, channel, config)?;
    if ctx.telemetry_enabled() {
        benor.enable_telemetry();
    }
    let benor_rounds = benor.run_until(spec.rounds, |s| {
        s.agents()
            .iter()
            .enumerate()
            .all(|(i, a)| a.is_done() || s.fault_plan().is_some_and(|p| p.is_faulty(i)))
    });
    ctx.absorb(benor.take_telemetry());
    let (_, benor_correct) = honest_count(&benor, |a| a.opinion() == Some(Opinion::One));
    let (_, benor_decided) = honest_count(&benor, |a| a.is_done());

    let messages = majority.metrics().messages_sent + benor.metrics().messages_sent;
    let all_correct = honest > 0 && majority_correct == honest;
    let honest = honest.max(1) as f64;
    Ok(vec![
        (
            "majority_fraction_correct",
            majority_correct as f64 / honest,
        ),
        ("majority_all_correct", f64::from(u8::from(all_correct))),
        ("benor_fraction_correct", benor_correct as f64 / honest),
        ("benor_decided_fraction", benor_decided as f64 / honest),
        ("benor_rounds", benor_rounds as f64),
        ("messages_sent", messages as f64),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn cell(protocol: &str, backend: Backend, params: &[(&str, f64)]) -> ScenarioSpec {
        ScenarioSpec {
            protocol: protocol.into(),
            backend,
            trials: 2,
            base_seed: 11,
            point: 0,
            rounds: 200,
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect::<BTreeMap<_, _>>(),
            faults: String::new(),
        }
    }

    #[test]
    fn unknown_protocols_and_backends_fail_loudly() {
        let registry = ProtocolRegistry::builtin();
        let unknown = cell(
            "teleport",
            Backend::Agents,
            &[("n", 100.0), ("epsilon", 0.2)],
        );
        assert!(matches!(
            registry.resolve(&unknown),
            Err(SweepError::Protocol(_))
        ));
        let dense_broadcast = cell(
            "broadcast",
            Backend::Dense,
            &[("n", 100.0), ("epsilon", 0.2)],
        );
        let Err(err) = registry.resolve(&dense_broadcast) else {
            panic!("dense broadcast must be rejected");
        };
        assert!(err.to_string().contains("no `dense` variant"), "{err}");
    }

    #[test]
    fn listing_names_every_builtin() {
        let ids: Vec<String> = ProtocolRegistry::builtin()
            .list()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(
            ids,
            vec![
                "async-broadcast",
                "baseline-compare",
                "ben-or",
                "bft-compare",
                "broadcast",
                "broadcast-detailed",
                "bv-broadcast",
                "chain-relay",
                "majority-consensus",
                "majority-sampler",
                "mc-boost",
                "rumor",
                "rumor-zealot",
                "safe-bbc",
                "two-party-samples",
            ]
        );
    }

    #[test]
    fn broadcast_detailed_reports_per_level_statistics() {
        let registry = ProtocolRegistry::builtin();
        let spec = cell(
            "broadcast-detailed",
            Backend::Agents,
            &[("n", 300.0), ("epsilon", 0.3)],
        );
        let metrics = registry.run_trial(&spec, 0).unwrap();
        assert_eq!(metrics, registry.run_trial(&spec, 0).unwrap());
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric `{name}`"))
        };
        // The level-0 pair matches a direct run_detailed call.
        let params = Params::practical(300, 0.3).unwrap();
        let detailed = BroadcastProtocol::new(params, Opinion::One)
            .run_detailed(spec.seed_for_trial(0))
            .unwrap();
        assert_eq!(get("x0"), detailed.levels[0].activated as f64);
        assert_eq!(get("x0p1"), detailed.levels[0].activated as f64 + 1.0);
        assert_eq!(get("bias0"), detailed.levels[0].bias());
        assert_eq!(get("levels"), detailed.levels.len() as f64);
        assert_eq!(
            get("stage1_bias"),
            detailed.outcome.fraction_correct_after_stage1 - 0.5
        );
        // Phase trajectory covers every schedule phase.
        let phases = detailed.fraction_correct_after_phase.len();
        for phase in 0..phases {
            assert_eq!(
                get(&format!("phase_frac_{phase}")),
                detailed.fraction_correct_after_phase[phase]
            );
        }
        // Cumulative level sizes cover levels 0..levels-1.
        assert!(metrics.iter().any(|(k, _)| *k == "level_cum_0"));
    }

    #[test]
    fn mc_boost_reproduces_the_lemma_2_11_monte_carlo() {
        let registry = ProtocolRegistry::builtin();
        let mut spec = cell(
            "mc-boost",
            Backend::Agents,
            &[
                ("n", 1_000.0),
                ("epsilon", 0.2),
                ("delta", 0.1),
                ("mc_trials", 2_000.0),
            ],
        );
        spec.trials = 1;
        spec.point = 703;
        let metrics = registry.run_trial(&spec, 0).unwrap();
        assert_eq!(metrics, registry.run_trial(&spec, 0).unwrap());
        let measured = metrics[0].1;
        assert_eq!(metrics[0].0, "measured");
        assert!(measured > 0.6, "a 10% bias must boost past 0.6: {measured}");
        // Multi-trial specs are rejected loudly.
        spec.trials = 2;
        let err = registry.run_trial(&spec, 0).unwrap_err();
        assert!(err.to_string().contains("trials"), "{err}");
    }

    #[test]
    fn async_broadcast_runs_both_variants() {
        let registry = ProtocolRegistry::builtin();
        for variant in [0.0, 1.0] {
            let spec = cell(
                "async-broadcast",
                Backend::Agents,
                &[("n", 300.0), ("epsilon", 0.3), ("variant", variant)],
            );
            let trial0 = registry.run_trial(&spec, 0).unwrap();
            assert_eq!(trial0, registry.run_trial(&spec, 0).unwrap());
            let names: Vec<&str> = trial0.iter().map(|(k, _)| *k).collect();
            assert_eq!(
                names,
                vec![
                    "all_correct",
                    "sync_rounds",
                    "total_rounds",
                    "overhead_rounds"
                ],
                "variant {variant}"
            );
            // Later trials report the per-trial metric only.
            let trial1 = registry.run_trial(&spec, 1).unwrap();
            let names: Vec<&str> = trial1.iter().map(|(k, _)| *k).collect();
            assert_eq!(names, vec!["all_correct"], "variant {variant}");
        }
        let bad = cell(
            "async-broadcast",
            Backend::Agents,
            &[("n", 300.0), ("epsilon", 0.3), ("variant", 7.0)],
        );
        assert!(registry.run_trial(&bad, 0).is_err());
    }

    #[test]
    fn baseline_compare_dispatches_every_index() {
        let registry = ProtocolRegistry::builtin();
        for baseline in 0..6 {
            let spec = cell(
                "baseline-compare",
                Backend::Agents,
                &[
                    ("n", 200.0),
                    ("epsilon", 0.2),
                    ("baseline", baseline as f64),
                ],
            );
            let metrics = registry.run_trial(&spec, 0).unwrap();
            assert_eq!(metrics, registry.run_trial(&spec, 0).unwrap(), "{baseline}");
            let names: Vec<&str> = metrics.iter().map(|(k, _)| *k).collect();
            assert_eq!(names, vec!["fraction_correct", "all_correct"], "{baseline}");
        }
        let bad = cell(
            "baseline-compare",
            Backend::Agents,
            &[("n", 200.0), ("epsilon", 0.2), ("baseline", 6.0)],
        );
        let err = registry.run_trial(&bad, 0).unwrap_err();
        assert!(err.to_string().contains("0..=5"), "{err}");
    }

    #[test]
    fn chain_relay_matches_the_direct_simulation() {
        let registry = ProtocolRegistry::builtin();
        let mut spec = cell(
            "chain-relay",
            Backend::Agents,
            &[
                ("n", 1.0),
                ("epsilon", 0.3),
                ("hops", 3.0),
                ("samples", 5_000.0),
            ],
        );
        spec.trials = 1;
        spec.point = 1_103;
        let metrics = registry.run_trial(&spec, 0).unwrap();
        // The legacy seed derivation: hops-keyed, epsilon-independent.
        let seed = SimRng::stream_seed(SimRng::stream_seed(spec.base_seed, 1_100), 3);
        let direct = simulate_chain(0.3, 3, 5_000, seed).unwrap();
        assert_eq!(metrics, vec![("measured", direct)]);
    }

    #[test]
    fn two_party_samples_is_deterministic_and_monotone() {
        let registry = ProtocolRegistry::builtin();
        let mut needed = Vec::new();
        for epsilon in [0.1, 0.2, 0.4] {
            let mut spec = cell(
                "two-party-samples",
                Backend::Agents,
                &[("n", 1.0), ("epsilon", epsilon)],
            );
            spec.trials = 1;
            let metrics = registry.run_trial(&spec, 0).unwrap();
            assert_eq!(metrics[0].0, "samples");
            assert_eq!(metrics[0].1, samples_for_confidence(epsilon, 0.99) as f64);
            needed.push(metrics[0].1);
        }
        assert!(needed[0] > needed[1] && needed[1] > needed[2]);
    }

    #[test]
    fn fault_directives_are_rejected_for_non_capable_protocols() {
        let registry = ProtocolRegistry::builtin();
        let mut spec = cell(
            "broadcast",
            Backend::Agents,
            &[("n", 100.0), ("epsilon", 0.2)],
        );
        spec.faults = "byz:0.2".into();
        let Err(err) = registry.resolve(&spec) else {
            panic!("broadcast must reject fault directives");
        };
        let message = err.to_string();
        assert!(
            message.contains("broadcast") && message.contains("byz:0.2"),
            "{message}"
        );
    }

    #[test]
    fn fault_fraction_param_overrides_the_directive() {
        let mut spec = cell("rumor", Backend::Agents, &[("n", 100.0), ("epsilon", 0.2)]);
        spec.faults = "byz:0.2".into();
        // No override: the directive stands.
        let base = fault_spec_for(&spec).unwrap().unwrap();
        assert_eq!(base.fraction, 0.2);
        // Override replaces the fraction but keeps the kind.
        spec.params.insert("fault_fraction".into(), 0.05);
        let overridden = fault_spec_for(&spec).unwrap().unwrap();
        assert_eq!(overridden.kind, base.kind);
        assert_eq!(overridden.fraction, 0.05);
        // Zero means fault-free — the honest baseline cell of a sweep axis.
        spec.params.insert("fault_fraction".into(), 0.0);
        assert_eq!(fault_spec_for(&spec).unwrap(), None);
        // An override without a base directive has no kind to apply to.
        spec.faults = String::new();
        spec.params.insert("fault_fraction".into(), 0.1);
        let err = fault_spec_for(&spec).unwrap_err();
        assert!(err.to_string().contains("fault_fraction"), "{err}");
        // And an out-of-range override fails like a bad directive.
        spec.faults = "byz:0.2".into();
        spec.params.insert("fault_fraction".into(), 1.5);
        assert!(fault_spec_for(&spec).is_err());
    }

    #[test]
    fn faulty_rumor_runs_deterministically_and_differs_from_honest() {
        let registry = ProtocolRegistry::builtin();
        for backend in [Backend::Agents, Backend::Hybrid(64)] {
            let honest = cell(
                "rumor",
                backend,
                &[("n", 400.0), ("epsilon", 0.25), ("informed", 10.0)],
            );
            let mut faulty = honest.clone();
            faulty.faults = "byz:0.1".into();
            let a = registry.run_trial(&faulty, 0).unwrap();
            let b = registry.run_trial(&faulty, 0).unwrap();
            assert_eq!(a, b, "same seed must reproduce ({backend})");
            assert_ne!(
                a,
                registry.run_trial(&honest, 0).unwrap(),
                "Byzantine agents must perturb the run ({backend})"
            );
        }
    }

    #[test]
    fn dense_rumor_rejects_fault_directives() {
        let registry = ProtocolRegistry::builtin();
        let mut spec = cell(
            "rumor",
            Backend::Dense,
            &[("n", 400.0), ("epsilon", 0.25), ("informed", 10.0)],
        );
        spec.faults = "byz:0.1".into();
        let Err(err) = registry.run_trial(&spec, 0) else {
            panic!("dense + faults must be rejected");
        };
        assert!(err.to_string().contains("dense"), "{err}");
    }

    #[test]
    fn consensus_protocols_run_and_report_their_metrics() {
        let registry = ProtocolRegistry::builtin();
        let expectations: [(&str, &[&str]); 3] = [
            (
                "ben-or",
                &[
                    "rounds",
                    "fraction_correct",
                    "decided_fraction",
                    "decided_correct_fraction",
                    "messages_sent",
                ],
            ),
            (
                "bv-broadcast",
                &[
                    "rounds",
                    "delivered_one_fraction",
                    "delivered_zero_fraction",
                    "messages_sent",
                ],
            ),
            (
                "safe-bbc",
                &[
                    "rounds",
                    "fraction_correct",
                    "decided_fraction",
                    "decided_correct_fraction",
                    "messages_sent",
                ],
            ),
        ];
        for (protocol, expected) in expectations {
            let spec = cell(
                protocol,
                Backend::Agents,
                &[("n", 300.0), ("epsilon", 0.3), ("initial_bias", 0.2)],
            );
            let a = registry.run_trial(&spec, 0).unwrap();
            assert_eq!(a, registry.run_trial(&spec, 0).unwrap(), "{protocol}");
            let names: Vec<&str> = a.iter().map(|(k, _)| *k).collect();
            assert_eq!(names, expected, "{protocol}");
        }
    }

    #[test]
    fn bft_compare_reports_honest_statistics_under_faults() {
        let registry = ProtocolRegistry::builtin();
        let mut spec = cell(
            "bft-compare",
            Backend::Agents,
            &[("n", 300.0), ("epsilon", 0.3), ("initial_bias", 0.2)],
        );
        spec.rounds = 120;
        spec.faults = "byz:0.1".into();
        let metrics = registry.run_trial(&spec, 0).unwrap();
        assert_eq!(metrics, registry.run_trial(&spec, 0).unwrap());
        let names: Vec<&str> = metrics.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            names,
            vec![
                "majority_fraction_correct",
                "majority_all_correct",
                "benor_fraction_correct",
                "benor_decided_fraction",
                "benor_rounds",
                "messages_sent",
            ]
        );
        let get = |name: &str| metrics.iter().find(|(k, _)| *k == name).unwrap().1;
        for name in ["majority_fraction_correct", "benor_fraction_correct"] {
            let value = get(name);
            assert!((0.0..=1.0).contains(&value), "{name} = {value}");
        }
        // The 70/30 start under moderate noise: the majority dynamic must
        // hold its ground for the honest agents even with 10% Byzantine.
        assert!(get("majority_fraction_correct") > 0.5);
        // The faulty twin must differ from the honest run.
        let mut honest = spec.clone();
        honest.faults = String::new();
        assert_ne!(metrics, registry.run_trial(&honest, 0).unwrap());
    }

    #[test]
    fn rumor_zealot_runs_on_every_engine_family() {
        let registry = ProtocolRegistry::builtin();
        for backend in Backend::ALL {
            let spec = cell(
                "rumor-zealot",
                backend,
                &[
                    ("n", 400.0),
                    ("epsilon", 0.25),
                    ("informed", 10.0),
                    ("zealots", 40.0),
                ],
            );
            let a = registry.run_trial(&spec, 0).unwrap();
            let b = registry.run_trial(&spec, 0).unwrap();
            assert_eq!(a, b, "same seed must reproduce ({backend})");
            let names: Vec<&str> = a.iter().map(|(k, _)| *k).collect();
            assert_eq!(names, vec!["rounds", "fraction_correct", "messages_sent"]);
        }
    }

    #[test]
    fn rumor_zealot_requires_a_zealot_subpopulation() {
        let registry = ProtocolRegistry::builtin();
        let spec = cell(
            "rumor-zealot",
            Backend::Dense,
            &[("n", 400.0), ("epsilon", 0.25), ("informed", 10.0)],
        );
        let Err(err) = registry.run_trial(&spec, 0) else {
            panic!("zealots = 0 must be rejected");
        };
        assert!(err.to_string().contains("`zealots`"), "{err}");
    }

    #[test]
    fn hybrid_rejects_a_tracked_count_that_swallows_the_population() {
        let registry = ProtocolRegistry::builtin();
        let spec = cell(
            "rumor",
            Backend::Hybrid(500),
            &[("n", 300.0), ("epsilon", 0.25), ("informed", 10.0)],
        );
        let Err(err) = registry.run_trial(&spec, 0) else {
            panic!("hybrid:500 at n = 300 must be rejected");
        };
        assert!(err.to_string().contains("no dense bulk"), "{err}");
    }

    #[test]
    fn rumor_runs_on_both_engines_and_is_seed_deterministic() {
        let registry = ProtocolRegistry::builtin();
        for backend in Backend::ALL {
            let spec = cell(
                "rumor",
                backend,
                &[("n", 300.0), ("epsilon", 0.25), ("informed", 10.0)],
            );
            let a = registry.run_trial(&spec, 0).unwrap();
            let b = registry.run_trial(&spec, 0).unwrap();
            assert_eq!(a, b, "same seed must reproduce ({backend})");
            let c = registry.run_trial(&spec, 1).unwrap();
            assert_ne!(a, c, "different trials use different seeds ({backend})");
            let names: Vec<&str> = a.iter().map(|(k, _)| *k).collect();
            assert_eq!(names, vec!["rounds", "fraction_correct", "messages_sent"]);
        }
    }

    #[test]
    fn round_threads_cannot_change_rumor_metrics() {
        // The budget knob trades wall-clock for cores only: on both
        // backends a trial granted extra intra-round lanes must report
        // bit-identical metrics to the sequential run (the parallel router
        // is bit-identical by construction, and dense ignores the knob).
        let registry = ProtocolRegistry::builtin();
        for backend in Backend::ALL {
            let spec = cell(
                "rumor",
                backend,
                &[("n", 400.0), ("epsilon", 0.25), ("informed", 3.0)],
            );
            let sequential = registry.run_trial_with_threads(&spec, 0, 1).unwrap();
            for round_threads in [2, 4, 7] {
                let threaded = registry
                    .run_trial_with_threads(&spec, 0, round_threads)
                    .unwrap();
                assert_eq!(
                    threaded, sequential,
                    "round_threads={round_threads} ({backend})"
                );
            }
            // The two-arg convenience wrapper is the sequential case.
            assert_eq!(registry.run_trial(&spec, 0).unwrap(), sequential);
        }
    }

    #[test]
    fn rumor_requires_a_round_cap() {
        let registry = ProtocolRegistry::builtin();
        let mut spec = cell("rumor", Backend::Agents, &[("n", 100.0), ("epsilon", 0.2)]);
        spec.rounds = 0;
        assert!(registry.run_trial(&spec, 0).is_err());
    }

    #[test]
    fn broadcast_reports_the_legacy_outcome_metrics() {
        let registry = ProtocolRegistry::builtin();
        let spec = cell(
            "broadcast",
            Backend::Agents,
            &[("n", 300.0), ("epsilon", 0.3)],
        );
        let metrics = registry.run_trial(&spec, 0).unwrap();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("total_rounds") > get("stage1_rounds"));
        assert!(get("fraction_correct") > 0.9);
        assert!(get("messages_sent") > 0.0);
        // Reproduces the protocol run directly (the migration contract).
        let params = Params::practical(300, 0.3).unwrap();
        let outcome = BroadcastProtocol::new(params, Opinion::One)
            .run_with_seed(spec.seed_for_trial(0))
            .unwrap();
        assert_eq!(get("fraction_correct"), outcome.fraction_correct);
        assert_eq!(get("messages_sent"), outcome.messages_sent as f64);
    }

    #[test]
    fn gamma_multiplier_override_reaches_params() {
        let registry = ProtocolRegistry::builtin();
        let starved = cell(
            "broadcast",
            Backend::Agents,
            &[("n", 300.0), ("epsilon", 0.3), ("gamma_mult", 0.25)],
        );
        // Must match a direct with_multipliers construction trial-for-trial.
        let multipliers = Multipliers {
            gamma_mult: 0.25,
            ..Multipliers::practical()
        };
        let params = Params::with_multipliers(300, 0.3, multipliers).unwrap();
        let outcome = BroadcastProtocol::new(params, Opinion::One)
            .run_with_seed(starved.seed_for_trial(1))
            .unwrap();
        let metrics = registry.run_trial(&starved, 1).unwrap();
        let fraction = metrics
            .iter()
            .find(|(k, _)| *k == "fraction_correct")
            .unwrap()
            .1;
        assert_eq!(fraction, outcome.fraction_correct);
    }

    #[test]
    fn majority_sampler_boosts_bias_on_the_dense_engine() {
        let registry = ProtocolRegistry::builtin();
        let spec = cell(
            "majority-sampler",
            Backend::Dense,
            &[("n", 50_000.0), ("epsilon", 0.3), ("initial_bias", 0.05)],
        );
        let metrics = registry.run_trial(&spec, 0).unwrap();
        let fraction = metrics
            .iter()
            .find(|(k, _)| *k == "fraction_correct")
            .unwrap()
            .1;
        assert!(fraction > 0.8, "boost should amplify a 5% edge: {fraction}");
    }

    #[test]
    fn majority_sampler_rejects_impossible_biases() {
        // A typo'd bias (> 0.5) must fail loudly, not wrap `n - correct`
        // into a garbage population that exports plausible-looking numbers.
        let registry = ProtocolRegistry::builtin();
        for bad in [0.6, -0.7, 5.0] {
            let spec = cell(
                "majority-sampler",
                Backend::Dense,
                &[("n", 10_000.0), ("epsilon", 0.3), ("initial_bias", bad)],
            );
            let err = registry.run_trial(&spec, 0).unwrap_err();
            assert!(err.to_string().contains("initial_bias"), "{bad}: {err}");
        }
        // The boundary itself is fine: bias 0.5 = everyone starts correct.
        let spec = cell(
            "majority-sampler",
            Backend::Dense,
            &[("n", 10_000.0), ("epsilon", 0.3), ("initial_bias", 0.5)],
        );
        assert!(registry.run_trial(&spec, 0).is_ok());
    }

    #[test]
    fn custom_protocols_can_be_registered() {
        let mut registry = ProtocolRegistry::new();
        registry.register(
            "constant",
            &[Backend::Agents],
            Box::new(|spec, trial, _ctx| Ok(vec![("value", spec.n() as f64 + trial as f64)])),
        );
        let spec = cell(
            "constant",
            Backend::Agents,
            &[("n", 10.0), ("epsilon", 0.2)],
        );
        assert_eq!(registry.run_trial(&spec, 5).unwrap(), vec![("value", 15.0)]);
    }

    #[test]
    fn telemetry_context_collects_profiles_without_changing_metrics() {
        use crate::observe::{TelemetryHub, TrialContext};
        use telemetry::Phase;

        let registry = ProtocolRegistry::builtin();
        for backend in [Backend::Agents, Backend::Hybrid(64)] {
            let spec = cell(
                "rumor",
                backend,
                &[("n", 400.0), ("epsilon", 0.25), ("informed", 10.0)],
            );
            let plain = registry.run_trial(&spec, 0).unwrap();
            let hub = TelemetryHub::new();
            let ctx = TrialContext::sequential().with_hub(&hub);
            let observed = registry.run_trial_with_context(&spec, 0, &ctx).unwrap();
            assert_eq!(
                plain, observed,
                "telemetry must be metric-neutral ({backend})"
            );
            let recorder = hub.take();
            let steps = recorder.phases().get(Phase::ProtocolStep).count;
            assert!(steps > 0, "engine phases reach the hub ({backend})");
        }
        // The breathe wrappers (`broadcast`, `majority-consensus`) build
        // their engines internally; the split construction
        // (`build_simulation` + `run_simulation`) still reaches the hub.
        let broadcast = cell(
            "broadcast",
            Backend::Agents,
            &[("n", 200.0), ("epsilon", 0.3)],
        );
        let plain = registry.run_trial(&broadcast, 0).unwrap();
        let hub = TelemetryHub::new();
        let ctx = TrialContext::sequential().with_hub(&hub);
        let observed = registry
            .run_trial_with_context(&broadcast, 0, &ctx)
            .unwrap();
        assert_eq!(
            plain, observed,
            "telemetry must be metric-neutral (broadcast)"
        );
        assert!(
            hub.take().phases().get(Phase::ProtocolStep).count > 0,
            "broadcast engine phases reach the hub"
        );

        // Counts-only backends have no engine telemetry; the hub stays empty.
        let dense = cell(
            "rumor",
            Backend::Dense,
            &[("n", 400.0), ("epsilon", 0.25), ("informed", 10.0)],
        );
        let hub = TelemetryHub::new();
        let ctx = TrialContext::sequential().with_hub(&hub);
        registry.run_trial_with_context(&dense, 0, &ctx).unwrap();
        assert!(hub.take().is_empty());
    }
}
