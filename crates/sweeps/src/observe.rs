//! Sweep-level observability: the trial-side telemetry plumbing, per-cell
//! telemetry records for the JSONL telemetry shards, and the live progress
//! reporter.
//!
//! Telemetry rides *next to* the result store, never inside it: profiles are
//! advisory wall-clock data, so they live in their own `telemetry/` directory
//! (see [`crate::SweepStore::open_telemetry_shards`]) and a missing or
//! partial telemetry record never invalidates a persisted cell.  The write
//! order in the orchestrator guarantees a killed run leaves at most a torn
//! final line per shard, which the loader drops — exactly the contract of the
//! result shards.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use telemetry::{Event, Phase, PhaseStat, Recorder, TelemetrySink};

use crate::json::{parse, Json};

/// A thread-safe collection point for [`Recorder`]s produced by the trials
/// of one cell (or one whole run).
///
/// Trials run on the [`crate::TrialRunner`] fan-out, so each finished
/// simulation folds its recorder in under a mutex; the lock is taken once
/// per *trial*, never on the simulation hot path.
#[derive(Debug, Default)]
pub struct TelemetryHub {
    recorder: Mutex<Recorder>,
}

impl TelemetryHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trial's recorder into the hub.
    pub fn absorb(&self, recorder: &Recorder) {
        self.recorder
            .lock()
            .expect("telemetry hub lock")
            .merge(recorder);
    }

    /// Takes the accumulated recorder, leaving the hub empty.
    #[must_use]
    pub fn take(&self) -> Recorder {
        std::mem::take(&mut *self.recorder.lock().expect("telemetry hub lock"))
    }

    /// A copy of the accumulated recorder.
    #[must_use]
    pub fn snapshot(&self) -> Recorder {
        self.recorder.lock().expect("telemetry hub lock").clone()
    }
}

/// Per-trial execution context handed to every protocol runner.
///
/// Carries the round-level thread budget (what the bare `usize` parameter
/// used to be) plus the optional telemetry hub.  Runners that construct an
/// instrumentable engine check [`TrialContext::telemetry_enabled`], switch
/// the engine's recorder on, and hand the result back through
/// [`TrialContext::absorb`]; runners on counts-only backends ignore the hub
/// and cost nothing.
#[derive(Debug, Clone, Copy)]
pub struct TrialContext<'a> {
    /// Worker threads each trial's simulation may use for its rounds.
    pub round_threads: usize,
    hub: Option<&'a TelemetryHub>,
}

impl<'a> TrialContext<'a> {
    /// A context with the given round-thread budget and no telemetry.
    #[must_use]
    pub fn new(round_threads: usize) -> Self {
        Self {
            round_threads,
            hub: None,
        }
    }

    /// The single-threaded, telemetry-off context.
    #[must_use]
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Attaches a telemetry hub; trial recorders folded via
    /// [`TrialContext::absorb`] accumulate there.
    #[must_use]
    pub fn with_hub(mut self, hub: &'a TelemetryHub) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Whether runners should enable engine telemetry.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.hub.is_some()
    }

    /// Folds a finished trial's recorder (if any) into the attached hub.
    pub fn absorb(&self, recorder: Option<Recorder>) {
        if let (Some(hub), Some(recorder)) = (self.hub, recorder) {
            hub.absorb(&recorder);
        }
    }
}

/// One cell's telemetry: the merged recorder of all its trials plus enough
/// identity (cell hash, point) to join it back onto the result shards.
///
/// Serialized one-per-line into `telemetry/telemetry-GGGG-WW.jsonl` shards;
/// the JSONL round-trip is exact for every counter and nanosecond field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTelemetry {
    /// The cell's spec hash (joins onto [`crate::CellRecord::hash`]).
    pub hash: String,
    /// The cell's point number within the sweep grid.
    pub point: u64,
    /// The orchestrator worker that ran the cell.
    pub worker: u64,
    /// Trials merged into [`CellTelemetry::recorder`].
    pub trials: u64,
    /// Wall-clock nanoseconds the cell took end to end.
    pub elapsed_ns: u64,
    /// The merged phase/event/lane recorder for the cell.
    pub recorder: Recorder,
}

impl CellTelemetry {
    /// Serializes to the canonical single-line JSON form.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let stat = self.recorder.phases().get(phase);
            if stat.count == 0 {
                continue;
            }
            phases.push((
                phase.name().to_string(),
                Json::object(vec![
                    ("count".into(), Json::UInt(stat.count)),
                    ("total_ns".into(), Json::UInt(stat.total_ns)),
                    ("min_ns".into(), Json::UInt(stat.min_ns)),
                    ("max_ns".into(), Json::UInt(stat.max_ns)),
                ]),
            ));
        }
        let events: Vec<(String, Json)> = Event::ALL
            .into_iter()
            .filter(|&e| self.recorder.event(e) > 0)
            .map(|e| (e.name().to_string(), Json::UInt(self.recorder.event(e))))
            .collect();
        let lanes: Vec<Json> = self
            .recorder
            .lane_nanos()
            .iter()
            .enumerate()
            .filter(|&(_, &ns)| ns > 0)
            .map(|(lane, &ns)| Json::Array(vec![Json::UInt(lane as u64), Json::UInt(ns)]))
            .collect();
        Json::object(vec![
            ("hash".into(), Json::Str(self.hash.clone())),
            ("point".into(), Json::UInt(self.point)),
            ("worker".into(), Json::UInt(self.worker)),
            ("trials".into(), Json::UInt(self.trials)),
            ("elapsed_ns".into(), Json::UInt(self.elapsed_ns)),
            ("phases".into(), Json::Object(phases)),
            ("events".into(), Json::Object(events)),
            ("lanes".into(), Json::Array(lanes)),
        ])
        .to_string()
    }

    /// Parses one shard line.
    ///
    /// Phase and event names that this build does not know are skipped, not
    /// rejected: telemetry is advisory, and a shard written by a newer build
    /// must not brick `sweep report` on an older one.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let doc = parse(line)?;
        let field_u64 = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or invalid `{key}`"))
        };
        let hash = doc
            .get("hash")
            .and_then(Json::as_str)
            .ok_or("missing or invalid `hash`")?
            .to_string();
        let mut recorder = Recorder::new();
        if let Some(Json::Object(pairs)) = doc.get("phases") {
            for (name, value) in pairs {
                let Some(phase) = Phase::from_name(name) else {
                    continue;
                };
                let stat_u64 = |key: &str| {
                    value
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("phase `{name}`: missing or invalid `{key}`"))
                };
                let stat = PhaseStat {
                    count: stat_u64("count")?,
                    total_ns: stat_u64("total_ns")?,
                    min_ns: stat_u64("min_ns")?,
                    max_ns: stat_u64("max_ns")?,
                };
                recorder.absorb_phase(phase, &stat);
            }
        }
        if let Some(Json::Object(pairs)) = doc.get("events") {
            for (name, value) in pairs {
                let Some(event) = Event::from_name(name) else {
                    continue;
                };
                let count = value
                    .as_u64()
                    .ok_or_else(|| format!("event `{name}`: invalid count"))?;
                if event.is_high_water() {
                    recorder.observe_max(event, count);
                } else {
                    recorder.add_event(event, count);
                }
            }
        }
        if let Some(lanes) = doc.get("lanes").and_then(Json::as_array) {
            for entry in lanes {
                let pair = entry.as_array().ok_or("lanes: entry is not a pair")?;
                let (lane, ns) = match pair {
                    [lane, ns] => (
                        lane.as_u64().ok_or("lanes: invalid lane index")?,
                        ns.as_u64().ok_or("lanes: invalid lane nanos")?,
                    ),
                    _ => return Err("lanes: entry is not a pair".into()),
                };
                recorder.record_lane(lane as usize, ns);
            }
        }
        Ok(Self {
            hash,
            point: field_u64("point")?,
            worker: field_u64("worker")?,
            trials: field_u64("trials")?,
            elapsed_ns: field_u64("elapsed_ns")?,
            recorder,
        })
    }
}

/// The live progress reporter: cells/sec, trials/sec and an ETA, one stderr
/// line per completed cell.
///
/// All counters are atomics so every orchestrator worker reports through one
/// shared instance; a disabled reporter still counts (the totals feed
/// [`crate::SweepOutcome`]) but never writes.
#[derive(Debug)]
pub struct ProgressReporter {
    enabled: bool,
    total: usize,
    skipped: usize,
    started: Instant,
    cells_done: AtomicUsize,
    trials_done: AtomicU64,
}

impl ProgressReporter {
    /// A reporter over `total` pending cells (`skipped` already persisted).
    #[must_use]
    pub fn new(enabled: bool, total: usize, skipped: usize) -> Self {
        Self {
            enabled,
            total,
            skipped,
            started: Instant::now(),
            cells_done: AtomicUsize::new(0),
            trials_done: AtomicU64::new(0),
        }
    }

    /// Records one finished cell and, when enabled, writes its progress
    /// line to stderr.
    pub fn cell_finished(&self, worker: usize, point: u64, trials: u64, cell_elapsed: Duration) {
        let done = self.cells_done.fetch_add(1, Ordering::Relaxed) + 1;
        let trials_done = self.trials_done.fetch_add(trials, Ordering::Relaxed) + trials;
        if self.enabled {
            let line = progress_line(
                done,
                self.total,
                self.skipped,
                point,
                worker,
                trials,
                cell_elapsed.as_secs_f64(),
                trials_done,
                self.started.elapsed().as_secs_f64(),
            );
            eprintln!("{line}");
        }
    }
}

/// Formats one progress line (pure, so the layout is unit-testable).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub(crate) fn progress_line(
    done: usize,
    total: usize,
    skipped: usize,
    point: u64,
    worker: usize,
    trials: u64,
    cell_secs: f64,
    trials_done: u64,
    elapsed_secs: f64,
) -> String {
    let mut line = format!(
        "[sweep] cell {done}/{total} point {point:04} worker {worker}: {trials} trials in {cell_secs:.2}s"
    );
    if elapsed_secs > 0.0 {
        let cells_per_sec = done as f64 / elapsed_secs;
        let trials_per_sec = trials_done as f64 / elapsed_secs;
        let _ = write!(
            line,
            " | {cells_per_sec:.2} cells/s, {trials_per_sec:.1} trials/s"
        );
        if done < total {
            let eta = (total - done) as f64 / cells_per_sec;
            let _ = write!(line, " | ETA {}", format_eta(eta));
        }
    }
    if skipped > 0 {
        let _ = write!(line, " ({skipped} resumed)");
    }
    line
}

/// Renders a duration in seconds as a compact `47s` / `3m12s` / `1h02m`.
#[must_use]
pub(crate) fn format_eta(secs: f64) -> String {
    let secs = secs.max(0.0).round() as u64;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.record_phase(Phase::ProtocolStep, 1_000);
        r.record_phase(Phase::ProtocolStep, 3_000);
        r.record_phase(Phase::NoiseMerge, 500);
        r.add_event(Event::LemireRedraws, 7);
        r.observe_max(Event::StagingHighWater, 12);
        r.record_lane(0, 900);
        r.record_lane(3, 4_200);
        r
    }

    #[test]
    fn cell_telemetry_round_trips_exactly() {
        let cell = CellTelemetry {
            hash: "abcd".into(),
            point: 42,
            worker: 3,
            trials: 5,
            elapsed_ns: 123_456_789,
            recorder: busy_recorder(),
        };
        let line = cell.to_json_line();
        assert!(!line.contains('\n'), "single line");
        let back = CellTelemetry::from_json_line(&line).expect("parses");
        assert_eq!(back, cell);
        // And the canonical form is stable.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn unknown_phase_and_event_names_are_skipped() {
        let line = "{\"hash\":\"x\",\"point\":0,\"worker\":0,\"trials\":1,\"elapsed_ns\":9,\
                    \"phases\":{\"warp_drive\":{\"count\":1,\"total_ns\":2,\"min_ns\":2,\"max_ns\":2}},\
                    \"events\":{\"tachyon_leaks\":3},\"lanes\":[]}";
        let cell = CellTelemetry::from_json_line(line).expect("advisory data parses");
        assert!(cell.recorder.is_empty(), "unknown names contribute nothing");
    }

    #[test]
    fn malformed_lines_name_the_field() {
        for (line, needle) in [
            ("{\"point\":0}", "hash"),
            (
                "{\"hash\":\"x\",\"worker\":0,\"trials\":1,\"elapsed_ns\":9}",
                "point",
            ),
            (
                "{\"hash\":\"x\",\"point\":0,\"worker\":0,\"trials\":1,\"elapsed_ns\":9,\
                 \"phases\":{\"protocol_step\":{\"count\":1}}}",
                "total_ns",
            ),
            ("not json", "byte"),
        ] {
            let err = CellTelemetry::from_json_line(line).expect_err(line);
            assert!(err.contains(needle), "`{err}` should mention {needle}");
        }
    }

    #[test]
    fn hub_merges_across_threads_and_drains() {
        let hub = TelemetryHub::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| hub.absorb(&busy_recorder()));
            }
        });
        let merged = hub.snapshot();
        assert_eq!(merged.phases().get(Phase::ProtocolStep).count, 8);
        assert_eq!(merged.event(Event::LemireRedraws), 28);
        assert_eq!(
            merged.event(Event::StagingHighWater),
            12,
            "high-water merges with max, not sum"
        );
        assert_eq!(hub.take(), merged, "take drains the accumulated recorder");
        assert!(hub.snapshot().is_empty());
    }

    #[test]
    fn context_routes_recorders_only_when_hubbed() {
        let hub = TelemetryHub::new();
        let off = TrialContext::new(2);
        assert!(!off.telemetry_enabled());
        assert_eq!(off.round_threads, 2);
        off.absorb(Some(busy_recorder())); // no hub: dropped, not panicked
        assert!(hub.snapshot().is_empty());

        let on = TrialContext::sequential().with_hub(&hub);
        assert!(on.telemetry_enabled());
        on.absorb(None); // engine telemetry disabled upstream: a no-op
        on.absorb(Some(busy_recorder()));
        assert_eq!(hub.snapshot().event(Event::LemireRedraws), 7);
    }

    #[test]
    fn progress_lines_carry_rates_and_eta() {
        let line = progress_line(2, 10, 3, 7, 1, 5, 0.5, 10, 4.0);
        assert!(line.contains("cell 2/10"), "{line}");
        assert!(line.contains("point 0007"), "{line}");
        assert!(line.contains("worker 1"), "{line}");
        assert!(line.contains("0.50 cells/s"), "{line}");
        assert!(line.contains("2.5 trials/s"), "{line}");
        assert!(line.contains("ETA 16s"), "{line}");
        assert!(line.contains("(3 resumed)"), "{line}");
        // The final cell has no ETA.
        let done = progress_line(10, 10, 0, 9, 0, 5, 0.5, 50, 20.0);
        assert!(!done.contains("ETA"), "{done}");
    }

    #[test]
    fn eta_formatting_scales_units() {
        assert_eq!(format_eta(0.4), "0s");
        assert_eq!(format_eta(59.0), "59s");
        assert_eq!(format_eta(192.0), "3m12s");
        assert_eq!(format_eta(3_726.0), "1h02m");
    }
}
