//! The sweep orchestrator: executes a grid of cells across threads,
//! checkpointing each completed cell to the shard store.
//!
//! # Execution model
//!
//! Cells are handed out from a shared atomic counter — dynamic load
//! balancing, so a slow cell (large `n`) never stalls the queue behind it
//! the way static chunking would.  Inside a cell, trials fan out over the
//! lock-free [`TrialRunner`], and each trial in turn receives the leftover
//! [`TrialRunner::round_threads`] as intra-round worker lanes; all three
//! levels share the one thread budget
//! (`outer × trial_workers × round_threads ≤ threads`), so small grids with
//! heavy cells still saturate the machine without oversubscribing it.
//!
//! # Determinism and resume
//!
//! A cell's record depends only on its hash-addressed spec: seeds derive
//! from `(base_seed, point, trial)`, the [`TrialRunner`] returns results in
//! trial order for any thread count, and aggregation folds sequentially.
//! Scheduling therefore cannot influence results — which is what makes
//! `resume` (skip persisted cells, run the rest) produce byte-identical
//! exports to an uninterrupted run.
//!
//! # Observability
//!
//! With [`SweepRunner::with_telemetry`] each cell runs under a fresh
//! [`TelemetryHub`]: engine-level phase timers and event counters from every
//! trial merge there, stream into a per-cell [`CellTelemetry`] line in the
//! store's `telemetry/` shards (same checkpoint-per-cell, torn-tail-tolerant
//! contract as the result shards), and fold into the sweep-wide
//! [`SweepOutcome::telemetry`] recorder.  Timing reads the monotonic clock,
//! never a simulation RNG, so results stay bit-identical with telemetry on.
//! [`SweepRunner::with_progress`] streams one stderr line per completed cell
//! (cells/sec, trials/sec, ETA) through [`ProgressReporter`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use telemetry::Recorder;

use crate::aggregate::CellRecord;
use crate::error::SweepError;
use crate::observe::{CellTelemetry, ProgressReporter, TelemetryHub, TrialContext};
use crate::registry::ProtocolRegistry;
use crate::runner::{default_threads, TrialRunner};
use crate::spec::{ScenarioSpec, SweepSpec};
use crate::store::{ShardWriter, SweepStore, TelemetryShardWriter};

/// Result of one [`SweepRunner::run`] call.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every available cell record (persisted + newly run), in grid order.
    /// Complete exactly when `completed`.
    pub cells: Vec<CellRecord>,
    /// Cells executed by this call.
    pub executed: usize,
    /// Cells skipped because the store already held them.
    pub skipped: usize,
    /// Cells in the full grid.
    pub total: usize,
    /// Whether every grid cell now has a record.
    pub completed: bool,
    /// The merged telemetry recorder over every cell this call executed
    /// (`None` unless [`SweepRunner::with_telemetry`] was set).
    pub telemetry: Option<Recorder>,
}

/// Orchestrates one sweep: expansion, scheduling, checkpointing.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    max_cells: Option<usize>,
    telemetry: bool,
    progress: bool,
}

impl SweepRunner {
    /// A runner with the default thread budget ([`default_threads`]:
    /// `FLIP_THREADS` override or machine width).
    #[must_use]
    pub fn new() -> Self {
        Self {
            threads: default_threads(),
            max_cells: None,
            telemetry: false,
            progress: false,
        }
    }

    /// Overrides the total thread budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Stops after executing at most `max_cells` new cells (grid order).
    ///
    /// This is the deterministic stand-in for "kill the process mid-sweep"
    /// used by the interruption tests and the CI smoke leg; a real kill
    /// behaves the same except that its cut-off point is arbitrary.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// Enables per-cell telemetry collection (phase profiles, event
    /// counters), telemetry shards when a store is attached, and the merged
    /// [`SweepOutcome::telemetry`] recorder.  Results are bit-identical
    /// either way.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables the live stderr progress reporter (one line per completed
    /// cell: cells/sec, trials/sec, ETA).
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `spec`, skipping cells already persisted in `store`, appending
    /// each newly completed cell to the store as it finishes.  Pass
    /// `store = None` for a purely in-memory run (the thin experiment
    /// binaries do this).
    ///
    /// # Errors
    ///
    /// Returns the first error hit: spec expansion, registry resolution,
    /// simulation failure, or store I/O.  Cells completed before the error
    /// remain persisted — a failed run resumes like a killed one.
    pub fn run(
        &self,
        spec: &SweepSpec,
        registry: &ProtocolRegistry,
        store: Option<&SweepStore>,
    ) -> Result<SweepOutcome, SweepError> {
        let grid = spec.expand()?;
        // Resolve every cell up front so an unknown protocol or a bad
        // backend fails before any compute is spent.
        for cell in &grid {
            registry.resolve(cell)?;
        }
        let persisted = match store {
            Some(store) => store.load_cells()?,
            None => std::collections::BTreeMap::new(),
        };

        let pending: Vec<(usize, &ScenarioSpec)> = grid
            .iter()
            .enumerate()
            .filter(|(_, cell)| !persisted.contains_key(&cell.hash_hex()))
            .take(self.max_cells.unwrap_or(usize::MAX))
            .collect();
        let skipped = persisted.len().min(grid.len());

        let outer = self.threads.min(pending.len()).max(1);
        let inner = (self.threads / outer).max(1);
        let mut shards = match store {
            Some(store) if !pending.is_empty() => store.open_shards(outer)?,
            _ => Vec::new(),
        };
        let mut tele_shards = match store {
            Some(store) if self.telemetry && !pending.is_empty() => {
                store.open_telemetry_shards(outer)?
            }
            _ => Vec::new(),
        };
        let sweep_hub = if self.telemetry {
            Some(TelemetryHub::new())
        } else {
            None
        };
        let progress = ProgressReporter::new(self.progress, pending.len(), skipped);

        let next = AtomicUsize::new(0);
        // First error wins and aborts the queue: workers check the flag
        // before pulling another cell, so a failure on cell 3 of 1000 does
        // not burn hours finishing the other 997 before reporting.
        let abort = AtomicBool::new(false);
        let pending_ref = &pending;
        let next_ref = &next;
        let abort_ref = &abort;
        let sweep_hub_ref = sweep_hub.as_ref();
        let progress_ref = &progress;
        let telemetry_on = self.telemetry;
        let mut fresh: Vec<(usize, CellRecord)> = Vec::with_capacity(pending.len());
        let mut first_error: Option<SweepError> = None;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..outer)
                .map(|worker| {
                    let mut shard = shards.pop();
                    let mut tele_shard = tele_shards.pop();
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, CellRecord)> = Vec::new();
                        let run = |cell: &ScenarioSpec,
                                   shard: Option<&mut ShardWriter>,
                                   tele_shard: Option<&mut TelemetryShardWriter>|
                         -> Result<CellRecord, SweepError> {
                            let cell_start = Instant::now();
                            let hub = telemetry_on.then(TelemetryHub::new);
                            let record = run_cell(cell, registry, inner, hub.as_ref())?;
                            // The result record is the checkpoint; telemetry
                            // rides behind it so a kill in between loses a
                            // profile, never duplicates one.
                            if let Some(writer) = shard {
                                writer.append(&record)?;
                            }
                            if let Some(hub) = &hub {
                                let recorder = hub.take();
                                if let Some(writer) = tele_shard {
                                    writer.append(&CellTelemetry {
                                        hash: record.hash.clone(),
                                        point: record.point,
                                        worker: worker as u64,
                                        trials: u64::from(cell.trials),
                                        elapsed_ns: cell_start.elapsed().as_nanos() as u64,
                                        recorder: recorder.clone(),
                                    })?;
                                }
                                if let Some(sweep_hub) = sweep_hub_ref {
                                    sweep_hub.absorb(&recorder);
                                }
                            }
                            progress_ref.cell_finished(
                                worker,
                                record.point,
                                u64::from(cell.trials),
                                cell_start.elapsed(),
                            );
                            Ok(record)
                        };
                        loop {
                            if abort_ref.load(Ordering::Relaxed) {
                                return Ok(mine);
                            }
                            let slot = next_ref.fetch_add(1, Ordering::Relaxed);
                            let Some(&(grid_index, cell)) = pending_ref.get(slot) else {
                                return Ok(mine);
                            };
                            match run(cell, shard.as_mut(), tele_shard.as_mut()) {
                                Ok(record) => mine.push((grid_index, record)),
                                Err(err) => {
                                    abort_ref.store(true, Ordering::Relaxed);
                                    return Err(err);
                                }
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                match handle.join().expect("sweep worker panicked") {
                    Ok(mine) => fresh.extend(mine),
                    Err(err) => {
                        if first_error.is_none() {
                            first_error = Some(err);
                        }
                    }
                }
            }
        });
        if let Some(err) = first_error {
            return Err(err);
        }

        let executed = fresh.len();
        let mut by_index: std::collections::BTreeMap<usize, CellRecord> =
            fresh.into_iter().collect();
        let mut cells = Vec::with_capacity(grid.len());
        for (i, cell) in grid.iter().enumerate() {
            if let Some(record) = by_index.remove(&i) {
                cells.push(record);
            } else if let Some(record) = persisted.get(&cell.hash_hex()) {
                cells.push(record.clone());
            }
        }
        let completed = cells.len() == grid.len();
        Ok(SweepOutcome {
            cells,
            executed,
            skipped,
            total: grid.len(),
            completed,
            telemetry: sweep_hub.map(|hub| hub.take()),
        })
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs every trial of one cell (fanning out over `inner_threads`) and folds
/// the per-trial metrics into a record, in trial order.
///
/// Threads left over after the trial fan-out ([`TrialRunner::round_threads`])
/// are granted to each trial as intra-round worker lanes, so a cell with few
/// trials but a huge `n` still uses its whole share of the budget —
/// `trial_workers × round_threads` never exceeds `inner_threads`.
fn run_cell(
    cell: &ScenarioSpec,
    registry: &ProtocolRegistry,
    inner_threads: usize,
    hub: Option<&TelemetryHub>,
) -> Result<CellRecord, SweepError> {
    let runner = TrialRunner::new(u64::from(cell.trials)).with_threads(inner_threads);
    let round_threads = runner.round_threads();
    let results = runner.run(|trial| {
        let mut context = TrialContext::new(round_threads);
        if let Some(hub) = hub {
            context = context.with_hub(hub);
        }
        registry.run_trial_with_context(cell, trial, &context)
    });
    let mut trials = Vec::with_capacity(results.len());
    for result in results {
        trials.push(result?);
    }
    Ok(CellRecord::from_trials(
        cell.hash_hex(),
        cell.point,
        &trials,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use flip_model::Backend;
    use std::collections::BTreeMap;

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            name: "orchestrator-demo".into(),
            protocol: "rumor".into(),
            backend: Backend::Agents,
            trials: 3,
            base_seed: 21,
            point_base: 10,
            rounds: 150,
            faults: String::new(),
            defaults: BTreeMap::from([
                ("epsilon".to_string(), 0.25),
                ("informed".to_string(), 5.0),
            ]),
            axes: vec![Axis {
                key: "n".into(),
                values: vec![80.0, 120.0, 160.0],
            }],
        }
    }

    #[test]
    fn in_memory_runs_cover_the_grid_in_order() {
        let outcome = SweepRunner::new()
            .with_threads(4)
            .run(&tiny_sweep(), &ProtocolRegistry::builtin(), None)
            .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.executed, 3);
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.total, 3);
        let points: Vec<u64> = outcome.cells.iter().map(|c| c.point).collect();
        assert_eq!(points, vec![10, 11, 12]);
        for cell in &outcome.cells {
            assert_eq!(cell.trials, 3);
            assert!(cell.metrics.contains_key("rounds"));
        }
    }

    #[test]
    fn scheduling_cannot_change_results() {
        let registry = ProtocolRegistry::builtin();
        let spec = tiny_sweep();
        let single = SweepRunner::new()
            .with_threads(1)
            .run(&spec, &registry, None)
            .unwrap();
        for threads in [2, 3, 8] {
            let parallel = SweepRunner::new()
                .with_threads(threads)
                .run(&spec, &registry, None)
                .unwrap();
            assert_eq!(parallel.cells, single.cells, "threads = {threads}");
        }
    }

    #[test]
    fn max_cells_executes_a_prefix_and_reports_incomplete() {
        let outcome = SweepRunner::new()
            .with_threads(2)
            .with_max_cells(2)
            .run(&tiny_sweep(), &ProtocolRegistry::builtin(), None)
            .unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.executed, 2);
        assert_eq!(outcome.cells.len(), 2);
    }

    #[test]
    fn a_cell_error_aborts_the_queue_instead_of_draining_it() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let executed = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&executed);
        let mut registry = crate::ProtocolRegistry::new();
        registry.register(
            "fail-second",
            &[Backend::Agents],
            Box::new(move |spec, _trial, _ctx| {
                seen.fetch_add(1, Ordering::Relaxed);
                if spec.point == 1 {
                    Err(crate::SweepError::Simulation("boom".into()))
                } else {
                    Ok(vec![("x", 1.0)])
                }
            }),
        );
        let mut spec = tiny_sweep();
        spec.protocol = "fail-second".into();
        spec.point_base = 0;
        spec.trials = 1;
        spec.axes[0].values = (0..20).map(|i| 100.0 + f64::from(i)).collect();

        let err = SweepRunner::new()
            .with_threads(1)
            .run(&spec, &registry, None)
            .unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
        // Sequentially, the failure on cell 1 must stop the queue: cells
        // 2..20 never run.
        assert_eq!(executed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn telemetry_runs_match_plain_runs_and_persist_profile_shards() {
        use crate::store::SweepStore;
        use telemetry::Phase;

        let dir = std::env::temp_dir().join(format!(
            "sweep-orchestrator-telemetry-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_sweep();
        let registry = ProtocolRegistry::builtin();

        let plain = SweepRunner::new()
            .with_threads(2)
            .run(&spec, &registry, None)
            .unwrap();
        assert!(plain.telemetry.is_none(), "off by default");

        let store = SweepStore::create(&dir, &spec).unwrap();
        let observed = SweepRunner::new()
            .with_threads(2)
            .with_telemetry(true)
            .run(&spec, &registry, Some(&store))
            .unwrap();
        assert_eq!(
            observed.cells, plain.cells,
            "telemetry must never perturb results"
        );

        let aggregate = observed.telemetry.expect("telemetry recorder");
        let rounds_timed = aggregate.phases().get(Phase::ProtocolStep).count;
        assert!(rounds_timed > 0, "engine phases reach the sweep aggregate");

        // One telemetry line per cell, joinable onto the result records,
        // and their merge reproduces the sweep-wide aggregate exactly.
        let profiles = store.load_telemetry().unwrap();
        assert_eq!(profiles.len(), observed.cells.len());
        let mut merged = telemetry::Recorder::new();
        for cell in &observed.cells {
            let profile = profiles.get(&cell.hash).expect("profile per cell");
            assert_eq!(profile.point, cell.point);
            assert_eq!(profile.trials, u64::from(spec.trials));
            assert!(profile.elapsed_ns > 0);
            merged.merge(&profile.recorder);
        }
        assert_eq!(merged, aggregate);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_survives_interruption_and_resume() {
        use crate::store::SweepStore;

        let dir = std::env::temp_dir().join(format!(
            "sweep-orchestrator-tele-resume-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_sweep();
        let registry = ProtocolRegistry::builtin();
        let store = SweepStore::create(&dir, &spec).unwrap();

        let partial = SweepRunner::new()
            .with_threads(1)
            .with_telemetry(true)
            .with_max_cells(2)
            .run(&spec, &registry, Some(&store))
            .unwrap();
        assert!(!partial.completed);
        assert_eq!(store.load_telemetry().unwrap().len(), 2);

        let resumed = SweepRunner::new()
            .with_threads(1)
            .with_telemetry(true)
            .run(&spec, &registry, Some(&store))
            .unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.executed, 1, "only the missing cell re-runs");
        // The resumed generation's shard joins the first one's: every grid
        // cell now has exactly one profile.
        let profiles = store.load_telemetry().unwrap();
        assert_eq!(profiles.len(), 3);
        for cell in &resumed.cells {
            assert!(profiles.contains_key(&cell.hash));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_specs_fail_before_any_compute() {
        let mut spec = tiny_sweep();
        spec.protocol = "no-such-protocol".into();
        let err = SweepRunner::new()
            .run(&spec, &ProtocolRegistry::builtin(), None)
            .unwrap_err();
        assert!(matches!(err, SweepError::Protocol(_)));
        let mut spec = tiny_sweep();
        spec.backend = Backend::Dense;
        spec.protocol = "broadcast".into();
        assert!(SweepRunner::new()
            .run(&spec, &ProtocolRegistry::builtin(), None)
            .is_err());
    }
}
