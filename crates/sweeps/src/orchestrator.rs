//! The sweep orchestrator: executes a grid of cells across threads,
//! checkpointing each completed cell to the shard store.
//!
//! # Execution model
//!
//! Cells are handed out from a shared atomic counter — dynamic load
//! balancing, so a slow cell (large `n`) never stalls the queue behind it
//! the way static chunking would.  Inside a cell, trials fan out over the
//! lock-free [`TrialRunner`], and each trial in turn receives the leftover
//! [`TrialRunner::round_threads`] as intra-round worker lanes; all three
//! levels share the one thread budget
//! (`outer × trial_workers × round_threads ≤ threads`), so small grids with
//! heavy cells still saturate the machine without oversubscribing it.
//!
//! # Determinism and resume
//!
//! A cell's record depends only on its hash-addressed spec: seeds derive
//! from `(base_seed, point, trial)`, the [`TrialRunner`] returns results in
//! trial order for any thread count, and aggregation folds sequentially.
//! Scheduling therefore cannot influence results — which is what makes
//! `resume` (skip persisted cells, run the rest) produce byte-identical
//! exports to an uninterrupted run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::aggregate::CellRecord;
use crate::error::SweepError;
use crate::registry::ProtocolRegistry;
use crate::runner::{default_threads, TrialRunner};
use crate::spec::{ScenarioSpec, SweepSpec};
use crate::store::{ShardWriter, SweepStore};

/// Result of one [`SweepRunner::run`] call.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every available cell record (persisted + newly run), in grid order.
    /// Complete exactly when `completed`.
    pub cells: Vec<CellRecord>,
    /// Cells executed by this call.
    pub executed: usize,
    /// Cells skipped because the store already held them.
    pub skipped: usize,
    /// Cells in the full grid.
    pub total: usize,
    /// Whether every grid cell now has a record.
    pub completed: bool,
}

/// Orchestrates one sweep: expansion, scheduling, checkpointing.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    max_cells: Option<usize>,
}

impl SweepRunner {
    /// A runner with the default thread budget ([`default_threads`]:
    /// `FLIP_THREADS` override or machine width).
    #[must_use]
    pub fn new() -> Self {
        Self {
            threads: default_threads(),
            max_cells: None,
        }
    }

    /// Overrides the total thread budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Stops after executing at most `max_cells` new cells (grid order).
    ///
    /// This is the deterministic stand-in for "kill the process mid-sweep"
    /// used by the interruption tests and the CI smoke leg; a real kill
    /// behaves the same except that its cut-off point is arbitrary.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// The configured thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `spec`, skipping cells already persisted in `store`, appending
    /// each newly completed cell to the store as it finishes.  Pass
    /// `store = None` for a purely in-memory run (the thin experiment
    /// binaries do this).
    ///
    /// # Errors
    ///
    /// Returns the first error hit: spec expansion, registry resolution,
    /// simulation failure, or store I/O.  Cells completed before the error
    /// remain persisted — a failed run resumes like a killed one.
    pub fn run(
        &self,
        spec: &SweepSpec,
        registry: &ProtocolRegistry,
        store: Option<&SweepStore>,
    ) -> Result<SweepOutcome, SweepError> {
        let grid = spec.expand()?;
        // Resolve every cell up front so an unknown protocol or a bad
        // backend fails before any compute is spent.
        for cell in &grid {
            registry.resolve(cell)?;
        }
        let persisted = match store {
            Some(store) => store.load_cells()?,
            None => std::collections::BTreeMap::new(),
        };

        let pending: Vec<(usize, &ScenarioSpec)> = grid
            .iter()
            .enumerate()
            .filter(|(_, cell)| !persisted.contains_key(&cell.hash_hex()))
            .take(self.max_cells.unwrap_or(usize::MAX))
            .collect();
        let skipped = persisted.len().min(grid.len());

        let outer = self.threads.min(pending.len()).max(1);
        let inner = (self.threads / outer).max(1);
        let mut shards = match store {
            Some(store) if !pending.is_empty() => store.open_shards(outer)?,
            _ => Vec::new(),
        };

        let next = AtomicUsize::new(0);
        // First error wins and aborts the queue: workers check the flag
        // before pulling another cell, so a failure on cell 3 of 1000 does
        // not burn hours finishing the other 997 before reporting.
        let abort = AtomicBool::new(false);
        let pending_ref = &pending;
        let next_ref = &next;
        let abort_ref = &abort;
        let mut fresh: Vec<(usize, CellRecord)> = Vec::with_capacity(pending.len());
        let mut first_error: Option<SweepError> = None;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..outer)
                .map(|_| {
                    let mut shard = shards.pop();
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, CellRecord)> = Vec::new();
                        let run = |cell: &ScenarioSpec,
                                   shard: Option<&mut ShardWriter>|
                         -> Result<CellRecord, SweepError> {
                            let record = run_cell(cell, registry, inner)?;
                            if let Some(writer) = shard {
                                writer.append(&record)?;
                            }
                            Ok(record)
                        };
                        loop {
                            if abort_ref.load(Ordering::Relaxed) {
                                return Ok(mine);
                            }
                            let slot = next_ref.fetch_add(1, Ordering::Relaxed);
                            let Some(&(grid_index, cell)) = pending_ref.get(slot) else {
                                return Ok(mine);
                            };
                            match run(cell, shard.as_mut()) {
                                Ok(record) => mine.push((grid_index, record)),
                                Err(err) => {
                                    abort_ref.store(true, Ordering::Relaxed);
                                    return Err(err);
                                }
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                match handle.join().expect("sweep worker panicked") {
                    Ok(mine) => fresh.extend(mine),
                    Err(err) => {
                        if first_error.is_none() {
                            first_error = Some(err);
                        }
                    }
                }
            }
        });
        if let Some(err) = first_error {
            return Err(err);
        }

        let executed = fresh.len();
        let mut by_index: std::collections::BTreeMap<usize, CellRecord> =
            fresh.into_iter().collect();
        let mut cells = Vec::with_capacity(grid.len());
        for (i, cell) in grid.iter().enumerate() {
            if let Some(record) = by_index.remove(&i) {
                cells.push(record);
            } else if let Some(record) = persisted.get(&cell.hash_hex()) {
                cells.push(record.clone());
            }
        }
        let completed = cells.len() == grid.len();
        Ok(SweepOutcome {
            cells,
            executed,
            skipped,
            total: grid.len(),
            completed,
        })
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs every trial of one cell (fanning out over `inner_threads`) and folds
/// the per-trial metrics into a record, in trial order.
///
/// Threads left over after the trial fan-out ([`TrialRunner::round_threads`])
/// are granted to each trial as intra-round worker lanes, so a cell with few
/// trials but a huge `n` still uses its whole share of the budget —
/// `trial_workers × round_threads` never exceeds `inner_threads`.
fn run_cell(
    cell: &ScenarioSpec,
    registry: &ProtocolRegistry,
    inner_threads: usize,
) -> Result<CellRecord, SweepError> {
    let runner = TrialRunner::new(u64::from(cell.trials)).with_threads(inner_threads);
    let round_threads = runner.round_threads();
    let results = runner.run(|trial| registry.run_trial_with_threads(cell, trial, round_threads));
    let mut trials = Vec::with_capacity(results.len());
    for result in results {
        trials.push(result?);
    }
    Ok(CellRecord::from_trials(
        cell.hash_hex(),
        cell.point,
        &trials,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use flip_model::Backend;
    use std::collections::BTreeMap;

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            name: "orchestrator-demo".into(),
            protocol: "rumor".into(),
            backend: Backend::Agents,
            trials: 3,
            base_seed: 21,
            point_base: 10,
            rounds: 150,
            faults: String::new(),
            defaults: BTreeMap::from([
                ("epsilon".to_string(), 0.25),
                ("informed".to_string(), 5.0),
            ]),
            axes: vec![Axis {
                key: "n".into(),
                values: vec![80.0, 120.0, 160.0],
            }],
        }
    }

    #[test]
    fn in_memory_runs_cover_the_grid_in_order() {
        let outcome = SweepRunner::new()
            .with_threads(4)
            .run(&tiny_sweep(), &ProtocolRegistry::builtin(), None)
            .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.executed, 3);
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.total, 3);
        let points: Vec<u64> = outcome.cells.iter().map(|c| c.point).collect();
        assert_eq!(points, vec![10, 11, 12]);
        for cell in &outcome.cells {
            assert_eq!(cell.trials, 3);
            assert!(cell.metrics.contains_key("rounds"));
        }
    }

    #[test]
    fn scheduling_cannot_change_results() {
        let registry = ProtocolRegistry::builtin();
        let spec = tiny_sweep();
        let single = SweepRunner::new()
            .with_threads(1)
            .run(&spec, &registry, None)
            .unwrap();
        for threads in [2, 3, 8] {
            let parallel = SweepRunner::new()
                .with_threads(threads)
                .run(&spec, &registry, None)
                .unwrap();
            assert_eq!(parallel.cells, single.cells, "threads = {threads}");
        }
    }

    #[test]
    fn max_cells_executes_a_prefix_and_reports_incomplete() {
        let outcome = SweepRunner::new()
            .with_threads(2)
            .with_max_cells(2)
            .run(&tiny_sweep(), &ProtocolRegistry::builtin(), None)
            .unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.executed, 2);
        assert_eq!(outcome.cells.len(), 2);
    }

    #[test]
    fn a_cell_error_aborts_the_queue_instead_of_draining_it() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let executed = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&executed);
        let mut registry = crate::ProtocolRegistry::new();
        registry.register(
            "fail-second",
            &[Backend::Agents],
            Box::new(move |spec, _trial, _round_threads| {
                seen.fetch_add(1, Ordering::Relaxed);
                if spec.point == 1 {
                    Err(crate::SweepError::Simulation("boom".into()))
                } else {
                    Ok(vec![("x", 1.0)])
                }
            }),
        );
        let mut spec = tiny_sweep();
        spec.protocol = "fail-second".into();
        spec.point_base = 0;
        spec.trials = 1;
        spec.axes[0].values = (0..20).map(|i| 100.0 + f64::from(i)).collect();

        let err = SweepRunner::new()
            .with_threads(1)
            .run(&spec, &registry, None)
            .unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
        // Sequentially, the failure on cell 1 must stop the queue: cells
        // 2..20 never run.
        assert_eq!(executed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn bad_specs_fail_before_any_compute() {
        let mut spec = tiny_sweep();
        spec.protocol = "no-such-protocol".into();
        let err = SweepRunner::new()
            .run(&spec, &ProtocolRegistry::builtin(), None)
            .unwrap_err();
        assert!(matches!(err, SweepError::Protocol(_)));
        let mut spec = tiny_sweep();
        spec.backend = Backend::Dense;
        spec.protocol = "broadcast".into();
        assert!(SweepRunner::new()
            .run(&spec, &ProtocolRegistry::builtin(), None)
            .is_err());
    }
}
