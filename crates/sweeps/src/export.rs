//! Deterministic CSV / JSON exports of a sweep's aggregates.
//!
//! Exports walk cells in **grid order** (the [`crate::SweepSpec::expand`]
//! order), never in completion or shard order, and format floats with Rust's
//! shortest round-trip form — so two stores holding the same records export
//! byte-identical documents no matter how the sweep was scheduled, killed or
//! resumed.
//!
//! * **CSV** — one row per cell: identity columns (`point`, `protocol`,
//!   `backend`, `trials`, `rounds`, then every parameter in sorted order)
//!   followed, for each metric in sorted order, by
//!   `mean`/`std`/`min`/`max`/`p10`/`p50`/`p90`.  A summary for people and
//!   spreadsheets; lossy (sketch internals are dropped).
//! * **JSON** — the full aggregate schema, including quantile-sketch state;
//!   [`parse_export_json`] round-trips it losslessly back into
//!   [`CellRecord`]s.

use std::collections::BTreeMap;

use crate::aggregate::CellRecord;
use crate::error::SweepError;
use crate::json::{parse, Json};
use crate::spec::{ScenarioSpec, SweepSpec};

/// Pairs every grid cell with its persisted record, in grid order.
///
/// Returns the pairs plus the number of missing cells (0 means complete);
/// callers decide whether partial is acceptable.
///
/// # Errors
///
/// Returns [`SweepError::Spec`] when the spec fails to expand.
pub fn ordered_cells(
    spec: &SweepSpec,
    records: &BTreeMap<String, CellRecord>,
) -> Result<(Vec<(ScenarioSpec, CellRecord)>, usize), SweepError> {
    let grid = spec.expand()?;
    let mut pairs = Vec::with_capacity(grid.len());
    let mut missing = 0usize;
    for cell in grid {
        match records.get(&cell.hash_hex()) {
            Some(record) => pairs.push((cell, record.clone())),
            None => missing += 1,
        }
    }
    Ok((pairs, missing))
}

/// The union of parameter keys across cells, sorted (CSV column stability).
fn param_columns(cells: &[(ScenarioSpec, CellRecord)]) -> Vec<String> {
    let mut keys: Vec<String> = cells
        .iter()
        .flat_map(|(spec, _)| spec.params.keys().cloned())
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// The union of metric names across cells, sorted.
fn metric_columns(cells: &[(ScenarioSpec, CellRecord)]) -> Vec<String> {
    let mut names: Vec<String> = cells
        .iter()
        .flat_map(|(_, record)| record.metrics.keys().cloned())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Shortest-round-trip float formatting (`{:?}`), the byte-stable form.
fn fmt(value: f64) -> String {
    format!("{value:?}")
}

/// Renders the summary CSV (see the module docs for the column layout).
#[must_use]
pub fn export_csv(cells: &[(ScenarioSpec, CellRecord)]) -> String {
    let params = param_columns(cells);
    let metrics = metric_columns(cells);
    let mut out = String::new();
    out.push_str("point,protocol,backend,trials,rounds");
    for key in &params {
        out.push(',');
        out.push_str(key);
    }
    for name in &metrics {
        for stat in ["mean", "std", "min", "max", "p10", "p50", "p90"] {
            out.push(',');
            out.push_str(name);
            out.push('_');
            out.push_str(stat);
        }
    }
    out.push('\n');
    for (spec, record) in cells {
        out.push_str(&format!(
            "{},{},{},{},{}",
            record.point, spec.protocol, spec.backend, record.trials, spec.rounds
        ));
        for key in &params {
            out.push(',');
            if let Some(v) = spec.params.get(key) {
                out.push_str(&fmt(*v));
            }
        }
        for name in &metrics {
            match record.metrics.get(name) {
                Some(agg) => {
                    let m = &agg.moments;
                    for v in [
                        m.mean(),
                        m.std_dev(),
                        m.min,
                        m.max,
                        agg.quantile(0),
                        agg.quantile(1),
                        agg.quantile(2),
                    ] {
                        out.push(',');
                        out.push_str(&fmt(v));
                    }
                }
                None => out.push_str(",,,,,,,"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the lossless JSON export: sweep identity plus every cell's full
/// aggregate state (spec echo included).
#[must_use]
pub fn export_json(spec: &SweepSpec, cells: &[(ScenarioSpec, CellRecord)]) -> String {
    let cell_docs: Vec<Json> = cells
        .iter()
        .map(|(cell_spec, record)| {
            Json::object(vec![
                ("spec".into(), cell_spec.canonical_json()),
                (
                    "record".into(),
                    parse(&record.to_json_line()).expect("records serialize to valid JSON"),
                ),
            ])
        })
        .collect();
    Json::object(vec![
        ("name".into(), Json::Str(spec.name.clone())),
        ("sweep_hash".into(), Json::Str(spec.hash_hex())),
        ("cells".into(), Json::Array(cell_docs)),
    ])
    .to_string()
}

/// Parses an [`export_json`] document back into `(spec, record)` pairs —
/// the lossless round trip the export tests pin down.
///
/// # Errors
///
/// Returns [`SweepError::Store`] on malformed documents.
pub fn parse_export_json(text: &str) -> Result<Vec<(ScenarioSpec, CellRecord)>, SweepError> {
    let doc = parse(text).map_err(SweepError::Store)?;
    doc.get("cells")
        .and_then(Json::as_array)
        .ok_or_else(|| SweepError::Store("export has no `cells` array".into()))?
        .iter()
        .map(|cell| {
            let spec = ScenarioSpec::from_json(
                cell.get("spec")
                    .ok_or_else(|| SweepError::Store("cell has no `spec`".into()))?,
            )?;
            let record = CellRecord::from_json_line(
                &cell
                    .get("record")
                    .ok_or_else(|| SweepError::Store("cell has no `record`".into()))?
                    .to_string(),
            )?;
            Ok((spec, record))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ProtocolRegistry;
    use crate::spec::Axis;
    use crate::SweepRunner;
    use flip_model::Backend;

    fn run_demo() -> (SweepSpec, Vec<(ScenarioSpec, CellRecord)>) {
        let spec = SweepSpec {
            name: "export-demo".into(),
            protocol: "rumor".into(),
            backend: Backend::Agents,
            trials: 3,
            base_seed: 9,
            point_base: 0,
            rounds: 120,
            faults: String::new(),
            defaults: BTreeMap::from([
                ("epsilon".to_string(), 0.25),
                ("informed".to_string(), 4.0),
            ]),
            axes: vec![Axis {
                key: "n".into(),
                values: vec![60.0, 90.0],
            }],
        };
        let outcome = SweepRunner::new()
            .with_threads(2)
            .run(&spec, &ProtocolRegistry::builtin(), None)
            .unwrap();
        let records: BTreeMap<String, CellRecord> = outcome
            .cells
            .into_iter()
            .map(|r| (r.hash.clone(), r))
            .collect();
        let (pairs, missing) = ordered_cells(&spec, &records).unwrap();
        assert_eq!(missing, 0);
        (spec, pairs)
    }

    #[test]
    fn csv_has_one_row_per_cell_with_stable_columns() {
        let (_, pairs) = run_demo();
        let csv = export_csv(&pairs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 cells");
        let header = lines[0];
        assert!(header.starts_with("point,protocol,backend,trials,rounds,epsilon,informed,n"));
        assert!(header.contains("rounds_mean"));
        assert!(header.contains("fraction_correct_p50"));
        let columns = header.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        }
        assert!(lines[1].starts_with("0,rumor,agents,3,120,0.25,4.0,60.0"));
    }

    #[test]
    fn json_export_round_trips_losslessly() {
        let (spec, pairs) = run_demo();
        let exported = export_json(&spec, &pairs);
        let parsed = parse_export_json(&exported).unwrap();
        assert_eq!(parsed, pairs);
        // Re-export of the parsed document is byte-identical.
        assert_eq!(export_json(&spec, &parsed), exported);
    }

    #[test]
    fn missing_cells_are_counted_not_invented() {
        let (spec, pairs) = run_demo();
        let mut records: BTreeMap<String, CellRecord> = pairs
            .iter()
            .map(|(_, r)| (r.hash.clone(), r.clone()))
            .collect();
        records.remove(&pairs[0].1.hash);
        let (partial, missing) = ordered_cells(&spec, &records).unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(missing, 1);
    }

    #[test]
    fn malformed_exports_fail_loudly() {
        assert!(parse_export_json("{}").is_err());
        assert!(parse_export_json("{\"cells\":[{}]}").is_err());
        assert!(parse_export_json("nope").is_err());
    }
}
