//! The error type of the sweep subsystem.

use std::fmt;

/// Everything that can go wrong while parsing, running, persisting or
/// exporting a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// A spec document failed to parse or validate.
    Spec(String),
    /// An unknown protocol id, or a protocol/backend combination the
    /// registry rejects.
    Protocol(String),
    /// Reading or writing the result store failed.
    Io(std::io::Error),
    /// A persisted document (manifest or shard line) is malformed.
    Store(String),
    /// An export was requested from a store that has not finished the grid.
    Incomplete {
        /// Cells with persisted results.
        done: usize,
        /// Cells in the full grid.
        total: usize,
    },
    /// A simulation inside a cell failed.
    Simulation(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Spec(msg) => write!(f, "invalid sweep spec: {msg}"),
            SweepError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            SweepError::Io(err) => write!(f, "store I/O error: {err}"),
            SweepError::Store(msg) => write!(f, "corrupt result store: {msg}"),
            SweepError::Incomplete { done, total } => write!(
                f,
                "sweep incomplete: {done}/{total} cells persisted (run `sweep resume` first, \
                 or export with --partial)"
            ),
            SweepError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(err: std::io::Error) -> Self {
        SweepError::Io(err)
    }
}

impl From<flip_model::FlipError> for SweepError {
    fn from(err: flip_model::FlipError) -> Self {
        SweepError::Simulation(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failure() {
        assert!(SweepError::Spec("missing `protocol`".into())
            .to_string()
            .contains("missing `protocol`"));
        assert!(SweepError::Incomplete { done: 2, total: 9 }
            .to_string()
            .contains("2/9"));
        let io: SweepError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }
}
