//! The synchronous round engine driving agents over the Flip model.

use crate::agent::{Agent, Round};
use crate::channel::Channel;
use crate::config::SimulationConfig;
use crate::error::FlipError;
use crate::faults::{FaultPlan, FaultRole};
use crate::metrics::{Metrics, RoundMetrics};
use crate::opinion::Opinion;
use crate::pool::RoundPool;
use crate::population::Census;
use crate::rng::{BernoulliSkip, SimRng};
use crate::scheduler::{GossipScheduler, RoundRouting, RADIX_MIN_N};
use crate::trace::TraceRecorder;
use telemetry::{Event, Phase, Recorder, Telemetry};

/// How the engine applies channel noise to accepted messages.
///
/// Resolved once at construction from [`Channel::fixed_crossover`].
#[derive(Debug, Clone, Copy)]
enum NoiseMode {
    /// The channel never flips: skip noise entirely.
    Noiseless,
    /// Fixed crossover `p`: geometric skip-sampling positions the flipped
    /// messages directly in the accepted stream (exact for i.i.d.
    /// Bernoulli(`p`) flips), costing one logarithm per flip instead of one
    /// draw per message.
    Fused(BernoulliSkip),
    /// Message-dependent noise: fall back to one [`Channel::transmit`] call
    /// per accepted message.
    PerMessage,
}

impl NoiseMode {
    fn for_channel<C: Channel>(channel: &C) -> Self {
        match channel.fixed_crossover() {
            Some(p) => match BernoulliSkip::new(p) {
                Some(skip) => NoiseMode::Fused(skip),
                // The skip-sampler rejects p ≤ 0 and p too small to ever
                // flip in a finite stream — genuinely noiseless — but also
                // p ≥ 1 and NaN, which must keep the exact per-message path
                // (a hypothetical always-flip channel would otherwise be
                // silently treated as never flipping).
                None if (0.0..0.5).contains(&p) || p <= 0.0 => NoiseMode::Noiseless,
                None => NoiseMode::PerMessage,
            },
            None => NoiseMode::PerMessage,
        }
    }
}

/// Summary of a single executed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Counters for the round.
    pub metrics: RoundMetrics,
    /// Census taken after the round completed.
    pub census_active: usize,
    /// Agents holding the reference opinion after the round, if configured.
    pub census_correct: Option<usize>,
}

/// A synchronous Flip-model simulation over a homogeneous population of agents.
///
/// The engine owns the agents, the gossip scheduler, the noise channel, the
/// metrics and the trace.  Each call to [`Simulation::step`] executes one
/// round with exactly the semantics of paper §1.3.2; [`Simulation::run`] and
/// [`Simulation::run_until`] execute many.
///
/// See the crate-level documentation for a complete example.
///
/// # Hot-path design
///
/// The round loop is allocation-free after the first round: the send buffer
/// and the [`RoundRouting`] are pre-sized to the population and reused every
/// step.  The census is *incremental* — the engine folds the
/// [`OpinionDelta`](crate::OpinionDelta)s returned by
/// [`Agent::deliver`]/[`Agent::end_round`] into a running [`Census`] in
/// O(changes), instead of recounting all `n` agents each round — and channel
/// noise for fixed-crossover channels is fused into delivery by geometric
/// skip-sampling (see [`Channel::fixed_crossover`]).
#[derive(Debug)]
pub struct Simulation<A, C> {
    agents: Vec<A>,
    channel: C,
    scheduler: GossipScheduler,
    rng: SimRng,
    round: Round,
    metrics: Metrics,
    trace: TraceRecorder,
    reference: Option<Opinion>,
    noise: NoiseMode,
    /// Running opinion counts, maintained from agent-reported deltas.
    census: Census,
    /// Set by [`Simulation::agents_mut`]: the caller may have changed
    /// opinions behind the engine's back, so the next census read recounts.
    census_dirty: bool,
    send_buffer: Vec<(u32, Opinion)>,
    routing: RoundRouting,
    /// Flip positions of the current round's fused noise (reused; sized to
    /// the population so even an everyone-flips round cannot reallocate).
    flip_buffer: Vec<u32>,
    /// Persistent worker pool for intra-round parallel routing, present
    /// when [`SimulationConfig::with_threads`] asked for more than one
    /// lane.  Spawned once here (warm-up) so rounds stay allocation-free;
    /// parallel rounds are bit-identical to sequential ones, so the pool
    /// never affects seeded results.
    pool: Option<RoundPool>,
    /// Per-agent fault roles, sampled once at construction when the config
    /// injects faults ([`SimulationConfig::with_faults`]); `None` keeps the
    /// fault-free hot path (and RNG stream) untouched.
    faults: Option<FaultPlan>,
    /// Phase timers and event counters; off by default (no recorder, no
    /// clock reads) until [`Simulation::enable_telemetry`].  Timing never
    /// touches the RNG stream, so enabled runs stay bit-identical.
    telemetry: Telemetry,
}

impl<A: Agent, C: Channel> Simulation<A, C> {
    /// Creates a simulation over the given agents.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if fewer than two agents are
    /// supplied, or [`FlipError::InvalidParameter`] if the configured
    /// population size does not match `agents.len()`.
    pub fn new(agents: Vec<A>, channel: C, config: SimulationConfig) -> Result<Self, FlipError> {
        if agents.len() < 2 {
            return Err(FlipError::PopulationTooSmall { n: agents.len() });
        }
        if config.population() != agents.len() {
            return Err(FlipError::InvalidParameter {
                name: "population",
                message: format!(
                    "config says {} agents but {} were supplied",
                    config.population(),
                    agents.len()
                ),
            });
        }
        let n = agents.len();
        let mut scheduler = GossipScheduler::new(n)?;
        let trace = TraceRecorder::new(n, config.trace_options(), config.reference());
        let census = Census::of_agents(&agents);
        let mut routing = RoundRouting::with_capacity(n);
        let pool = (config.threads() > 1).then(|| RoundPool::new(config.threads()));
        if let Some(pool) = &pool {
            if n >= RADIX_MIN_N {
                // Pre-size the parallel path's staging and bookkeeping for
                // the worst-case (all-send) round, so warmed-up parallel
                // rounds never allocate.  Below the radix crossover the
                // parallel dispatch falls back to single-pass routing and
                // needs none of it.
                scheduler.reserve_parallel(pool.workers());
                routing.reserve_parallel(n, pool.workers());
            }
        }
        // Fault roles are drawn from the engine's own stream *before* any
        // round runs, via one reserved block: thread-count-invariant, and a
        // fault-free config draws nothing at all, keeping every pre-fault
        // seeded result byte-identical.
        let mut rng = SimRng::from_seed(config.seed());
        let faults = config
            .faults()
            .map(|spec| FaultPlan::sample(&spec, n, &mut rng));
        Ok(Self {
            agents,
            noise: NoiseMode::for_channel(&channel),
            channel,
            scheduler,
            rng,
            round: 0,
            metrics: Metrics::new(),
            trace,
            reference: config.reference(),
            census,
            census_dirty: false,
            send_buffer: Vec::with_capacity(n),
            routing,
            flip_buffer: Vec::with_capacity(n),
            pool,
            faults,
            telemetry: Telemetry::off(),
        })
    }

    /// Turns on phase timing and event counting (and, when a worker pool is
    /// present, per-lane busy-time accounting).
    ///
    /// Purely observational: telemetry reads the monotonic clock and adds
    /// integers the round loop already computed, never the RNG stream, so an
    /// instrumented run's deliveries, metrics and traces are bit-identical
    /// to an uninstrumented one.
    pub fn enable_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
        if let Some(pool) = &self.pool {
            pool.set_timing(true);
        }
    }

    /// The telemetry recorder accumulated so far, when enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Recorder> {
        self.telemetry.recorder()
    }

    /// Takes the telemetry recorder out, disabling further recording.
    pub fn take_telemetry(&mut self) -> Option<Recorder> {
        if let Some(pool) = &self.pool {
            pool.set_timing(false);
        }
        self.telemetry.take()
    }

    /// Executes one synchronous round and returns its summary.
    pub fn step(&mut self) -> RoundSummary {
        if self.census_dirty {
            let span = self.telemetry.begin();
            self.census = Census::of_agents(&self.agents);
            self.census_dirty = false;
            self.telemetry.end(Phase::CensusApply, span);
        }
        let round = self.round;

        // Phase 1: collect sends.  With a fault plan, faulty roles override
        // their agent: Byzantine roles inject their bit without consulting
        // (or advancing) the agent, crashed agents fall silent, and
        // adaptive-flip agents run their protocol but transmit its negation.
        let span = self.telemetry.begin();
        let mut forced_sends = 0u64;
        self.send_buffer.clear();
        match &self.faults {
            None => {
                for (idx, agent) in self.agents.iter_mut().enumerate() {
                    if let Some(message) = agent.send(round, &mut self.rng) {
                        self.send_buffer.push((idx as u32, message));
                    }
                }
            }
            Some(plan) => {
                for (idx, agent) in self.agents.iter_mut().enumerate() {
                    let message = match plan.forced_send(idx, round) {
                        Some(forced) => {
                            forced_sends += 1;
                            forced
                        }
                        None => {
                            let sent = agent.send(round, &mut self.rng);
                            if plan.role(idx) == FaultRole::ByzantineAdaptiveFlip {
                                sent.map(Opinion::flipped)
                            } else {
                                sent
                            }
                        }
                    };
                    if let Some(message) = message {
                        self.send_buffer.push((idx as u32, message));
                    }
                }
            }
        }
        self.telemetry.end(Phase::ProtocolStep, span);
        self.telemetry.add(Event::FaultForcedSends, forced_sends);

        // Phase 2: route into the reused buffer, then corrupt + deliver.
        // The parallel and sequential routes are bit-identical; the pool
        // only changes which cores do the work.
        match &self.pool {
            Some(pool) => {
                self.scheduler.route_into_parallel_with(
                    &self.send_buffer,
                    &mut self.rng,
                    &mut self.routing,
                    pool,
                    &mut self.telemetry,
                );
                if pool.timing_enabled() {
                    let tel = &mut self.telemetry;
                    pool.drain_lane_nanos(|lane, ns| tel.record_lane(lane, ns));
                }
            }
            None => self.scheduler.route_into_with(
                &self.send_buffer,
                &mut self.rng,
                &mut self.routing,
                &mut self.telemetry,
            ),
        }

        // Split borrows: the routing buffer is read while agents, census,
        // trace and rng are written.
        let noise = self.noise;
        let (agents, routing, rng, trace, census, channel, flip_buffer, faults, tel) = (
            &mut self.agents,
            &self.routing,
            &mut self.rng,
            &mut self.trace,
            &mut self.census,
            &self.channel,
            &mut self.flip_buffer,
            self.faults.as_ref(),
            &mut self.telemetry,
        );
        // A message routed to a deaf role dies at the recipient, not in the
        // scheduler: its slot, flip position and (per-message) corruption
        // draw are consumed exactly as for an honest recipient, so honest
        // agents observe the same stream whether or not faulty peers exist.
        let deaf = |recipient: usize| {
            faults.is_some_and(|plan| !plan.role(recipient).accepts_delivery(round))
        };

        // Noise is fused into the delivery walk: payloads are corrupted in
        // registers on their way into `deliver`, so the accepted buffer is
        // traversed exactly once per round (the former corrupt-in-place
        // pre-pass re-streamed it through the cache for nothing).  The
        // activation-trace flag is loop-invariant, letting the compiler
        // unswitch the untraced (default) path into tight loops.
        let record_activations = trace.options().record_activations;
        let accepted = routing.accepted();
        let mut flips = 0u64;
        let mut suppressed = 0u64;
        let span = tel.begin();
        match noise {
            NoiseMode::Noiseless => {
                for delivery in accepted {
                    let recipient = delivery.recipient.index();
                    if deaf(recipient) {
                        suppressed += 1;
                        continue;
                    }
                    if record_activations {
                        trace.on_delivery(recipient, round);
                    }
                    census.apply(agents[recipient].deliver(round, delivery.payload, rng));
                }
            }
            NoiseMode::Fused(skip) => {
                // Geometric skip-sampling positions the flips (gaps
                // batch-drawn, before any delivery, so the RNG stream
                // matches the standalone sampler exactly), and the delivery
                // walk merges them in with a two-pointer scan.
                flip_buffer.clear();
                skip.for_each_success(rng, accepted.len(), |position| {
                    flip_buffer.push(position as u32);
                });
                flips = flip_buffer.len() as u64;
                let mut next_flip = flip_buffer.iter();
                let mut flip_at = next_flip.next().copied().unwrap_or(u32::MAX);
                for (i, delivery) in accepted.iter().enumerate() {
                    let mut payload = delivery.payload;
                    if i as u32 == flip_at {
                        payload = payload.flipped();
                        flip_at = next_flip.next().copied().unwrap_or(u32::MAX);
                    }
                    let recipient = delivery.recipient.index();
                    if deaf(recipient) {
                        suppressed += 1;
                        continue;
                    }
                    if record_activations {
                        trace.on_delivery(recipient, round);
                    }
                    census.apply(agents[recipient].deliver(round, payload, rng));
                }
            }
            NoiseMode::PerMessage => {
                for delivery in accepted {
                    let corrupted = channel.transmit(delivery.payload, rng);
                    flips += u64::from(corrupted != delivery.payload);
                    let recipient = delivery.recipient.index();
                    if deaf(recipient) {
                        suppressed += 1;
                        continue;
                    }
                    if record_activations {
                        trace.on_delivery(recipient, round);
                    }
                    census.apply(agents[recipient].deliver(round, corrupted, rng));
                }
            }
        }
        tel.end(Phase::NoiseMerge, span);
        if matches!(noise, NoiseMode::PerMessage) {
            tel.add(Event::PerMessageFallbacks, accepted.len() as u64);
        }
        tel.add(Event::FaultSuppressedDeliveries, suppressed);

        // Phase 3: end-of-round hooks (statically skipped for agent types
        // that declare the hook unused).
        if A::USES_END_ROUND {
            let span = tel.begin();
            match faults {
                None => {
                    for agent in agents.iter_mut() {
                        census.apply(agent.end_round(round, rng));
                    }
                }
                Some(plan) => {
                    // A deaf role's protocol is frozen: its hook neither
                    // runs nor draws from the stream.
                    for (idx, agent) in agents.iter_mut().enumerate() {
                        if plan.role(idx).runs_protocol(round) {
                            census.apply(agent.end_round(round, rng));
                        }
                    }
                }
            }
            tel.end(Phase::ProtocolStep, span);
        }

        let round_metrics = RoundMetrics {
            round,
            messages_sent: self.routing.sent,
            messages_accepted: self.routing.accepted().len() as u64,
            messages_collided: self.routing.collided,
            bits_flipped: flips,
            forced_sends,
            suppressed_deliveries: suppressed,
            crashed_agents: self
                .faults
                .as_ref()
                .map_or(0, |plan| plan.crashed_count(round) as u64),
        };
        self.metrics.absorb_round(&round_metrics);

        // The trace consumes the maintained census; no O(n) recount.
        self.trace
            .on_round_end(round, &self.census, self.routing.sent);
        self.round += 1;

        // Debug builds periodically audit the incremental census against a
        // full recount, which catches agents that misreport deltas (or
        // change opinions inside `send`).
        #[cfg(debug_assertions)]
        if round.is_multiple_of(64) {
            debug_assert_eq!(
                self.census,
                Census::of_agents(&self.agents),
                "incremental census diverged from a full recount at round {round}"
            );
        }

        RoundSummary {
            metrics: round_metrics,
            census_active: self.census.active(),
            census_correct: self.reference.map(|r| self.census.holding(r)),
        }
    }

    /// Executes `rounds` rounds and returns the accumulated metrics.
    pub fn run(&mut self, rounds: u64) -> &Metrics {
        for _ in 0..rounds {
            self.step();
        }
        &self.metrics
    }

    /// Executes rounds until `predicate` returns `true` (checked after every
    /// round) or `max_rounds` rounds have been executed, whichever comes first.
    ///
    /// Returns the number of rounds executed by this call.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut predicate: F) -> u64
    where
        F: FnMut(&Self) -> bool,
    {
        let mut executed = 0;
        while executed < max_rounds {
            self.step();
            executed += 1;
            if predicate(self) {
                break;
            }
        }
        executed
    }

    /// The agents, in population order.
    #[must_use]
    pub fn agents(&self) -> &[A] {
        &self.agents
    }

    /// Mutable access to the agents (useful for seeding initial opinions).
    ///
    /// Marks the maintained census dirty: the engine recounts once on the
    /// next [`census`](Simulation::census) read or [`step`](Simulation::step).
    #[must_use]
    pub fn agents_mut(&mut self) -> &mut [A] {
        self.census_dirty = true;
        &mut self.agents
    }

    /// A census of the current population.
    ///
    /// O(1): returns the incrementally maintained counts.  After
    /// [`agents_mut`](Simulation::agents_mut) the maintained counts are
    /// stale, and every `census` call until the next
    /// [`step`](Simulation::step) recounts the population in O(n) (`step`
    /// resynchronises the maintained counts once).
    #[must_use]
    pub fn census(&self) -> Census {
        if self.census_dirty {
            Census::of_agents(&self.agents)
        } else {
            self.census
        }
    }

    /// The accumulated metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The recorded trace.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The next round index to be executed (equals rounds executed so far).
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The noise channel in use.
    #[must_use]
    pub fn channel(&self) -> &C {
        &self.channel
    }

    /// The fault plan sampled at construction, when faults are configured.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Consumes the simulation, returning the agents, metrics and trace.
    #[must_use]
    pub fn into_parts(self) -> (Vec<A>, Metrics, TraceRecorder) {
        (self.agents, self.metrics, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::OpinionDelta;
    use crate::channel::{AdversarialCapChannel, BinarySymmetricChannel, NoiselessChannel};

    /// An agent that always sends its fixed opinion.
    struct Beacon(Opinion);

    impl Agent for Beacon {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            Some(self.0)
        }
        fn deliver(&mut self, _round: Round, _message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
            OpinionDelta::NONE
        }
        fn opinion(&self) -> Option<Opinion> {
            Some(self.0)
        }
    }

    /// An agent that adopts the first message it hears and then repeats it.
    struct Adopter {
        opinion: Option<Opinion>,
    }

    impl Agent for Adopter {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            self.opinion
        }
        fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
            if self.opinion.is_none() {
                self.opinion = Some(message);
                OpinionDelta::adopted(message)
            } else {
                OpinionDelta::NONE
            }
        }
        fn opinion(&self) -> Option<Opinion> {
            self.opinion
        }
    }

    fn adopters(n: usize, informed: usize) -> Vec<Adopter> {
        (0..n)
            .map(|i| Adopter {
                opinion: (i < informed).then_some(Opinion::One),
            })
            .collect()
    }

    #[test]
    fn rejects_mismatched_population() {
        let agents = adopters(10, 1);
        let config = SimulationConfig::new(11);
        assert!(Simulation::new(agents, NoiselessChannel, config).is_err());
    }

    #[test]
    fn rejects_tiny_population() {
        let agents = adopters(1, 1);
        let config = SimulationConfig::new(1);
        assert!(matches!(
            Simulation::new(agents, NoiselessChannel, config),
            Err(FlipError::PopulationTooSmall { n: 1 })
        ));
    }

    #[test]
    fn step_counts_messages_and_rounds() {
        let agents = vec![Beacon(Opinion::One), Beacon(Opinion::Zero)];
        let config = SimulationConfig::new(2).with_seed(3);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let summary = sim.step();
        assert_eq!(summary.metrics.messages_sent, 2);
        // With two agents, each message must go to the other agent; both accept one.
        assert_eq!(summary.metrics.messages_accepted, 2);
        assert_eq!(sim.metrics().rounds, 1);
        assert_eq!(sim.round(), 1);
    }

    #[test]
    fn rumor_spreads_in_noiseless_network() {
        let agents = adopters(200, 1);
        let config = SimulationConfig::new(200).with_seed(5);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let executed = sim.run_until(5_000, |s| s.census().active() == 200);
        assert!(executed < 5_000, "rumor should spread quickly");
        assert!(sim.census().is_unanimous(Opinion::One));
    }

    #[test]
    fn run_until_stops_at_max_rounds() {
        let agents = adopters(10, 0); // nobody informed, nothing ever happens
        let config = SimulationConfig::new(10).with_seed(5);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let executed = sim.run_until(17, |_| false);
        assert_eq!(executed, 17);
        assert_eq!(sim.metrics().rounds, 17);
        assert_eq!(sim.metrics().messages_sent, 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let agents = adopters(100, 1);
            let config = SimulationConfig::new(100)
                .with_seed(seed)
                .with_history(true);
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim = Simulation::new(agents, channel, config).unwrap();
            sim.run(50);
            let history: Vec<(usize, u64)> = sim
                .trace()
                .history()
                .iter()
                .map(|s| (s.active, s.messages_sent))
                .collect();
            (history, sim.metrics().clone())
        };
        let (h1, m1) = run(99);
        let (h2, m2) = run(99);
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
        let (h3, _) = run(100);
        assert_ne!(h1, h3, "different seeds should (almost surely) differ");
    }

    #[test]
    fn noise_flips_are_counted() {
        let agents = vec![Beacon(Opinion::One), Beacon(Opinion::One)];
        let config = SimulationConfig::new(2).with_seed(8);
        let channel = BinarySymmetricChannel::new(0.5).unwrap();
        let mut sim = Simulation::new(agents, channel, config).unwrap();
        sim.run(1_000);
        let rate = sim.metrics().empirical_flip_rate().unwrap();
        assert!((rate - 0.5).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn trace_reference_counts_correct_agents() {
        let agents = adopters(50, 5);
        let config = SimulationConfig::new(50)
            .with_seed(2)
            .with_reference(Opinion::One)
            .with_history(true)
            .with_activation_trace(true);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let summary = sim.step();
        assert_eq!(
            summary.census_correct,
            Some(sim.census().holding(Opinion::One))
        );
        assert!(!sim.trace().history().is_empty());
    }

    #[test]
    fn maintained_census_matches_full_recount_every_round() {
        let agents = adopters(150, 3);
        let config = SimulationConfig::new(150).with_seed(13);
        let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
        let mut sim = Simulation::new(agents, channel, config).unwrap();
        for _ in 0..80 {
            sim.step();
            assert_eq!(sim.census(), Census::of_agents(sim.agents()));
        }
    }

    #[test]
    fn agents_mut_invalidates_the_maintained_census() {
        let agents = adopters(10, 0);
        let config = SimulationConfig::new(10).with_seed(1);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        assert_eq!(sim.census().active(), 0);
        sim.agents_mut()[4].opinion = Some(Opinion::One);
        // The census read after external mutation must reflect it ...
        assert_eq!(sim.census().active(), 1);
        assert_eq!(sim.census().holding(Opinion::One), 1);
        // ... and stepping resynchronises the maintained counts.
        sim.step();
        assert_eq!(sim.census(), Census::of_agents(sim.agents()));
    }

    #[test]
    fn fused_noise_flip_rate_matches_crossover() {
        // Same statistical check as `noise_flips_are_counted`, but at a
        // crossover where skips are long enough to exercise multi-message
        // gaps (p = 0.1) and over a larger population.
        let agents: Vec<Beacon> = (0..100).map(|_| Beacon(Opinion::One)).collect();
        let config = SimulationConfig::new(100).with_seed(17);
        let channel = BinarySymmetricChannel::new(0.1).unwrap();
        let mut sim = Simulation::new(agents, channel, config).unwrap();
        sim.run(1_000);
        let rate = sim.metrics().empirical_flip_rate().unwrap();
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn out_of_range_fixed_crossover_keeps_the_per_message_path() {
        // A (contract-stretching) channel reporting a fixed crossover of 1.0
        // must not be fused into "noiseless": the engine has to fall back to
        // per-message transmit, which flips every bit.
        struct AlwaysFlip;
        impl Channel for AlwaysFlip {
            fn transmit(&self, message: Opinion, _rng: &mut SimRng) -> Opinion {
                message.flipped()
            }
            fn crossover(&self) -> f64 {
                1.0
            }
            fn fixed_crossover(&self) -> Option<f64> {
                Some(1.0)
            }
        }
        let agents = vec![Beacon(Opinion::One), Beacon(Opinion::One)];
        let config = SimulationConfig::new(2).with_seed(23);
        let mut sim = Simulation::new(agents, AlwaysFlip, config).unwrap();
        sim.run(100);
        let rate = sim.metrics().empirical_flip_rate().unwrap();
        assert!((rate - 1.0).abs() < f64::EPSILON, "rate = {rate}");
    }

    #[test]
    fn per_message_fallback_matches_mean_crossover() {
        // An AdversarialCapChannel with a genuine interval cannot be fused;
        // its empirical flip rate must match the interval mean.
        let agents: Vec<Beacon> = (0..100).map(|_| Beacon(Opinion::One)).collect();
        let config = SimulationConfig::new(100).with_seed(19);
        let channel = AdversarialCapChannel::new(0.1, 0.3).unwrap();
        let mut sim = Simulation::new(agents, channel, config).unwrap();
        sim.run(1_000);
        let rate = sim.metrics().empirical_flip_rate().unwrap();
        assert!((rate - 0.2).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn byzantine_constant_agents_flood_the_wrong_bit() {
        // Half the population is Byzantine-constant (pushing Zero) among
        // adopters seeded with One: adopters must end up hearing plenty of
        // zeros, while the Byzantine agents themselves never adopt anything.
        let spec: crate::FaultSpec = "byz:0.5".parse().unwrap();
        let agents = adopters(400, 10);
        let config = SimulationConfig::new(400).with_seed(31).with_faults(spec);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let plan = sim.fault_plan().expect("faults configured").clone();
        assert!(plan.faulty_count() > 100, "half the population is faulty");
        sim.run(60);
        let zeros = sim.census().holding(Opinion::Zero);
        assert!(zeros > 0, "Byzantine zeros must infect the population");
        // Byzantine-constant agents ignore deliveries: a faulty adopter that
        // started uninformed stays uninformed forever.
        for (idx, agent) in sim.agents().iter().enumerate() {
            if plan.is_faulty(idx) && idx >= 10 {
                assert_eq!(agent.opinion(), None, "agent {idx} must stay deaf");
            }
        }
    }

    #[test]
    fn crashed_agents_freeze_at_their_crash_round() {
        // Everyone crashes at round 0: nothing is ever sent or delivered.
        let spec: crate::FaultSpec = "crash:0.999999@0".parse().unwrap();
        let mut all_faulty = None;
        for seed in 0..50 {
            let agents = adopters(50, 5);
            let config = SimulationConfig::new(50).with_seed(seed).with_faults(spec);
            let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
            if sim.fault_plan().unwrap().faulty_count() == 50 {
                sim.run(20);
                assert_eq!(sim.metrics().messages_sent, 0);
                assert_eq!(sim.census().active(), 5, "no one adopts after a crash");
                all_faulty = Some(seed);
                break;
            }
        }
        assert!(all_faulty.is_some(), "some seed crashes everyone");
    }

    #[test]
    fn fault_free_configs_share_the_stream_with_pre_fault_builds() {
        // A config without faults must not consume any RNG words for fault
        // machinery: its history equals the plain run digit for digit.
        let run = |faulty: bool| {
            let agents = adopters(100, 1);
            let mut config = SimulationConfig::new(100).with_seed(99).with_history(true);
            if faulty {
                config = config.with_faults("byz:0.2".parse().unwrap());
            }
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim = Simulation::new(agents, channel, config).unwrap();
            sim.run(50);
            let history: Vec<(usize, u64)> = sim
                .trace()
                .history()
                .iter()
                .map(|s| (s.active, s.messages_sent))
                .collect();
            (history, sim.metrics().clone())
        };
        let (h_clean, m_clean) = run(false);
        let (h_again, m_again) = run(false);
        assert_eq!(h_clean, h_again);
        assert_eq!(m_clean, m_again);
        let (h_faulty, _) = run(true);
        assert_ne!(h_clean, h_faulty, "faults must actually perturb the run");
    }

    #[test]
    fn adaptive_flip_agents_invert_their_own_sends() {
        // Two agents that always send One and remember the last bit heard.
        // With n = 2 every message reaches the other agent, so when exactly
        // one agent is adaptive-flipped its peer hears Zero (the inverted
        // send) while the flipped agent still hears the honest One.
        struct Echo {
            heard: Option<Opinion>,
        }
        impl Agent for Echo {
            fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
                Some(Opinion::One)
            }
            fn deliver(
                &mut self,
                _round: Round,
                message: Opinion,
                _rng: &mut SimRng,
            ) -> OpinionDelta {
                let before = self.heard;
                self.heard = Some(message);
                OpinionDelta::between(before, self.heard)
            }
            fn opinion(&self) -> Option<Opinion> {
                self.heard
            }
        }
        // Find a seed whose sampled plan flips exactly one of the two.
        for seed in 0..50 {
            let config = SimulationConfig::new(2)
                .with_seed(seed)
                .with_faults("flip:0.5".parse().unwrap());
            let agents = vec![Echo { heard: None }, Echo { heard: None }];
            let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
            let plan = sim.fault_plan().unwrap();
            if plan.faulty_count() != 1 {
                continue;
            }
            let faulty = usize::from(!plan.is_faulty(0));
            sim.run(10);
            assert_eq!(
                sim.agents()[1 - faulty].heard,
                Some(Opinion::Zero),
                "the honest agent hears the inverted send"
            );
            assert_eq!(
                sim.agents()[faulty].heard,
                Some(Opinion::One),
                "the flipped agent still receives honestly"
            );
            // The inversion happens at the sender, not on the wire.
            assert_eq!(sim.metrics().bits_flipped, 0);
            return;
        }
        panic!("no seed flipped exactly one of two agents");
    }

    #[test]
    fn into_parts_returns_state() {
        let agents = adopters(10, 1);
        let config = SimulationConfig::new(10).with_seed(2);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        sim.run(3);
        let (agents, metrics, _trace) = sim.into_parts();
        assert_eq!(agents.len(), 10);
        assert_eq!(metrics.rounds, 3);
    }
}
