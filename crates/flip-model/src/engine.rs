//! The synchronous round engine driving agents over the Flip model.

use crate::agent::{Agent, Round};
use crate::channel::Channel;
use crate::config::SimulationConfig;
use crate::error::FlipError;
use crate::metrics::{Metrics, RoundMetrics};
use crate::opinion::Opinion;
use crate::population::Census;
use crate::rng::SimRng;
use crate::scheduler::GossipScheduler;
use crate::trace::TraceRecorder;

/// Summary of a single executed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Counters for the round.
    pub metrics: RoundMetrics,
    /// Census taken after the round completed.
    pub census_active: usize,
    /// Agents holding the reference opinion after the round, if configured.
    pub census_correct: Option<usize>,
}

/// A synchronous Flip-model simulation over a homogeneous population of agents.
///
/// The engine owns the agents, the gossip scheduler, the noise channel, the
/// metrics and the trace.  Each call to [`Simulation::step`] executes one
/// round with exactly the semantics of paper §1.3.2; [`Simulation::run`] and
/// [`Simulation::run_until`] execute many.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Simulation<A, C> {
    agents: Vec<A>,
    channel: C,
    scheduler: GossipScheduler,
    rng: SimRng,
    round: Round,
    metrics: Metrics,
    trace: TraceRecorder,
    reference: Option<Opinion>,
    send_buffer: Vec<(usize, Opinion)>,
}

impl<A: Agent, C: Channel> Simulation<A, C> {
    /// Creates a simulation over the given agents.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if fewer than two agents are
    /// supplied, or [`FlipError::InvalidParameter`] if the configured
    /// population size does not match `agents.len()`.
    pub fn new(agents: Vec<A>, channel: C, config: SimulationConfig) -> Result<Self, FlipError> {
        if agents.len() < 2 {
            return Err(FlipError::PopulationTooSmall { n: agents.len() });
        }
        if config.population() != agents.len() {
            return Err(FlipError::InvalidParameter {
                name: "population",
                message: format!(
                    "config says {} agents but {} were supplied",
                    config.population(),
                    agents.len()
                ),
            });
        }
        let scheduler = GossipScheduler::new(agents.len())?;
        let trace = TraceRecorder::new(agents.len(), config.trace_options(), config.reference());
        Ok(Self {
            agents,
            channel,
            scheduler,
            rng: SimRng::from_seed(config.seed()),
            round: 0,
            metrics: Metrics::new(),
            trace,
            reference: config.reference(),
            send_buffer: Vec::new(),
        })
    }

    /// Executes one synchronous round and returns its summary.
    pub fn step(&mut self) -> RoundSummary {
        let round = self.round;

        // Phase 1: collect sends.
        self.send_buffer.clear();
        for (idx, agent) in self.agents.iter_mut().enumerate() {
            if let Some(message) = agent.send(round, &mut self.rng) {
                self.send_buffer.push((idx, message));
            }
        }

        // Phase 2: route, corrupt, deliver.
        let routing = self.scheduler.route(&self.send_buffer, &mut self.rng);
        let mut flips = 0u64;
        for delivery in &routing.accepted {
            let corrupted = self.channel.transmit(delivery.payload, &mut self.rng);
            if corrupted != delivery.payload {
                flips += 1;
            }
            let recipient = delivery.recipient.index();
            self.trace.on_delivery(recipient, round);
            self.agents[recipient].deliver(round, corrupted, &mut self.rng);
        }

        // Phase 3: end-of-round hooks.
        for agent in &mut self.agents {
            agent.end_round(round, &mut self.rng);
        }

        let round_metrics = RoundMetrics {
            round,
            messages_sent: routing.sent,
            messages_accepted: routing.accepted.len() as u64,
            messages_collided: routing.collided,
            bits_flipped: flips,
        };
        self.metrics.absorb_round(&round_metrics);

        let census = Census::of_agents(&self.agents);
        self.trace.on_round_end(round, &census, routing.sent);
        self.round += 1;

        RoundSummary {
            metrics: round_metrics,
            census_active: census.active(),
            census_correct: self.reference.map(|r| census.holding(r)),
        }
    }

    /// Executes `rounds` rounds and returns the accumulated metrics.
    pub fn run(&mut self, rounds: u64) -> &Metrics {
        for _ in 0..rounds {
            self.step();
        }
        &self.metrics
    }

    /// Executes rounds until `predicate` returns `true` (checked after every
    /// round) or `max_rounds` rounds have been executed, whichever comes first.
    ///
    /// Returns the number of rounds executed by this call.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut predicate: F) -> u64
    where
        F: FnMut(&Self) -> bool,
    {
        let mut executed = 0;
        while executed < max_rounds {
            self.step();
            executed += 1;
            if predicate(self) {
                break;
            }
        }
        executed
    }

    /// The agents, in population order.
    #[must_use]
    pub fn agents(&self) -> &[A] {
        &self.agents
    }

    /// Mutable access to the agents (useful for seeding initial opinions).
    #[must_use]
    pub fn agents_mut(&mut self) -> &mut [A] {
        &mut self.agents
    }

    /// A census of the current population.
    #[must_use]
    pub fn census(&self) -> Census {
        Census::of_agents(&self.agents)
    }

    /// The accumulated metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The recorded trace.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The next round index to be executed (equals rounds executed so far).
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The noise channel in use.
    #[must_use]
    pub fn channel(&self) -> &C {
        &self.channel
    }

    /// Consumes the simulation, returning the agents, metrics and trace.
    #[must_use]
    pub fn into_parts(self) -> (Vec<A>, Metrics, TraceRecorder) {
        (self.agents, self.metrics, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BinarySymmetricChannel, NoiselessChannel};

    /// An agent that always sends its fixed opinion.
    struct Beacon(Opinion);

    impl Agent for Beacon {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            Some(self.0)
        }
        fn deliver(&mut self, _round: Round, _message: Opinion, _rng: &mut SimRng) {}
        fn opinion(&self) -> Option<Opinion> {
            Some(self.0)
        }
    }

    /// An agent that adopts the first message it hears and then repeats it.
    struct Adopter {
        opinion: Option<Opinion>,
    }

    impl Agent for Adopter {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            self.opinion
        }
        fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) {
            if self.opinion.is_none() {
                self.opinion = Some(message);
            }
        }
        fn opinion(&self) -> Option<Opinion> {
            self.opinion
        }
    }

    fn adopters(n: usize, informed: usize) -> Vec<Adopter> {
        (0..n)
            .map(|i| Adopter {
                opinion: (i < informed).then_some(Opinion::One),
            })
            .collect()
    }

    #[test]
    fn rejects_mismatched_population() {
        let agents = adopters(10, 1);
        let config = SimulationConfig::new(11);
        assert!(Simulation::new(agents, NoiselessChannel, config).is_err());
    }

    #[test]
    fn rejects_tiny_population() {
        let agents = adopters(1, 1);
        let config = SimulationConfig::new(1);
        assert!(matches!(
            Simulation::new(agents, NoiselessChannel, config),
            Err(FlipError::PopulationTooSmall { n: 1 })
        ));
    }

    #[test]
    fn step_counts_messages_and_rounds() {
        let agents = vec![Beacon(Opinion::One), Beacon(Opinion::Zero)];
        let config = SimulationConfig::new(2).with_seed(3);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let summary = sim.step();
        assert_eq!(summary.metrics.messages_sent, 2);
        // With two agents, each message must go to the other agent; both accept one.
        assert_eq!(summary.metrics.messages_accepted, 2);
        assert_eq!(sim.metrics().rounds, 1);
        assert_eq!(sim.round(), 1);
    }

    #[test]
    fn rumor_spreads_in_noiseless_network() {
        let agents = adopters(200, 1);
        let config = SimulationConfig::new(200).with_seed(5);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let executed = sim.run_until(5_000, |s| s.census().active() == 200);
        assert!(executed < 5_000, "rumor should spread quickly");
        assert!(sim.census().is_unanimous(Opinion::One));
    }

    #[test]
    fn run_until_stops_at_max_rounds() {
        let agents = adopters(10, 0); // nobody informed, nothing ever happens
        let config = SimulationConfig::new(10).with_seed(5);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let executed = sim.run_until(17, |_| false);
        assert_eq!(executed, 17);
        assert_eq!(sim.metrics().rounds, 17);
        assert_eq!(sim.metrics().messages_sent, 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let agents = adopters(100, 1);
            let config = SimulationConfig::new(100)
                .with_seed(seed)
                .with_history(true);
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim = Simulation::new(agents, channel, config).unwrap();
            sim.run(50);
            let history: Vec<(usize, u64)> = sim
                .trace()
                .history()
                .iter()
                .map(|s| (s.active, s.messages_sent))
                .collect();
            (history, sim.metrics().clone())
        };
        let (h1, m1) = run(99);
        let (h2, m2) = run(99);
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
        let (h3, _) = run(100);
        assert_ne!(h1, h3, "different seeds should (almost surely) differ");
    }

    #[test]
    fn noise_flips_are_counted() {
        let agents = vec![Beacon(Opinion::One), Beacon(Opinion::One)];
        let config = SimulationConfig::new(2).with_seed(8);
        let channel = BinarySymmetricChannel::new(0.5).unwrap();
        let mut sim = Simulation::new(agents, channel, config).unwrap();
        sim.run(1_000);
        let rate = sim.metrics().empirical_flip_rate().unwrap();
        assert!((rate - 0.5).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn trace_reference_counts_correct_agents() {
        let agents = adopters(50, 5);
        let config = SimulationConfig::new(50)
            .with_seed(2)
            .with_reference(Opinion::One)
            .with_history(true)
            .with_activation_trace(true);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        let summary = sim.step();
        assert_eq!(
            summary.census_correct,
            Some(sim.census().holding(Opinion::One))
        );
        assert!(!sim.trace().history().is_empty());
    }

    #[test]
    fn into_parts_returns_state() {
        let agents = adopters(10, 1);
        let config = SimulationConfig::new(10).with_seed(2);
        let mut sim = Simulation::new(agents, NoiselessChannel, config).unwrap();
        sim.run(3);
        let (agents, metrics, _trace) = sim.into_parts();
        assert_eq!(agents.len(), 10);
        assert_eq!(metrics.rounds, 3);
    }
}
