//! The dense, counts-based population engine.
//!
//! The per-agent [`Simulation`](crate::Simulation) stores one heap object per
//! agent and dispatches trait calls per agent per round, which caps practical
//! experiments near `n ≈ 10⁴`.  The paper's claims, however, are asymptotic in
//! `n`; reaching the `n = 10⁶–10⁷` regime needs an engine whose per-round cost
//! is independent of `n`.
//!
//! This module provides that engine.  A homogeneous population is represented
//! as packed per-state **counts** ([`DensePopulation`]) — a protocol is a
//! finite state machine over a small state space ([`DenseProtocol`]) and a
//! round is executed by sampling **aggregate transition counts**: one binomial
//! draw per (state, received-symbol) cell via the vendored
//! [`rand::distributions::Binomial`], so a round costs `O(#states)` instead of
//! `O(n)`.  [`OpinionBitmap`] complements the counts with a bit-packed
//! struct-of-arrays opinion/activity view for seeding populations from
//! explicit per-agent assignments and for cheap whole-population censuses.
//!
//! # Exactness
//!
//! Sends, channel noise and state transitions are sampled from their exact
//! aggregate distributions.  The one approximation is collision resolution:
//! the per-agent engine throws `M` messages into mailboxes chosen uniformly
//! among each sender's `n − 1` peers and keeps one per non-empty mailbox (an
//! occupancy process with mild negative correlation between mailboxes and
//! no self-delivery), while the dense engine lets every agent receive
//! independently with the occupancy marginal `p = 1 − (1 − 1/(n−1))^M`.
//! Per-round means agree with the per-agent engine up to `O(1/n)` relative
//! error (the self-exclusion term a sender's own message contributes) and
//! fluctuations agree to `O(1)`; the two backends are therefore
//! *distributionally equivalent* for population-level statistics (and exactly
//! equal in every degenerate case where the dynamics are deterministic — see
//! `tests/dense_equivalence.rs`).
//!
//! # Example
//!
//! ```
//! use flip_model::{
//!     BinarySymmetricChannel, DensePopulation, DenseSimulation, RumorProtocol,
//!     SimulationConfig,
//! };
//!
//! # fn main() -> Result<(), flip_model::FlipError> {
//! // One million agents, one thousand informed: far beyond the per-agent engine.
//! let population = RumorProtocol::population(1_000_000, 0, 1_000);
//! let channel = BinarySymmetricChannel::from_epsilon(0.3)?;
//! let config = SimulationConfig::new(1_000_000).with_seed(7);
//! let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config)?;
//! sim.run(100);
//! assert!(sim.census().active() > 990_000);
//! # Ok(())
//! # }
//! ```

use crate::agent::Round;
use crate::channel::Channel;
use crate::config::SimulationConfig;
use crate::engine::RoundSummary;
use crate::error::FlipError;
use crate::metrics::Metrics;
use crate::opinion::Opinion;
use crate::population::Census;
use crate::stratified::{StratifiedPopulation, StratifiedSimulation};

/// A protocol expressed as a finite state machine over a small state space,
/// runnable by [`DenseSimulation`] in `O(#states)` per round.
///
/// States are indices in `0..state_count()`.  All agents in the same state are
/// interchangeable (the population is homogeneous and anonymous), which is
/// what lets the engine track counts instead of agents.  Transitions may
/// depend on the global round, so phase-based protocols can encode their
/// schedule without enlarging the state space.
pub trait DenseProtocol {
    /// Number of states in the machine (must be at least 1 and constant).
    fn state_count(&self) -> usize;

    /// Send behaviour of a state: `Some((symbol, probability))` when agents in
    /// `state` push `symbol` with the given probability this round, `None`
    /// when they stay silent ("breathe").
    fn send(&self, state: usize, round: Round) -> Option<(Opinion, f64)>;

    /// Successor state for an agent in `state` that accepts `heard` this round.
    fn on_receive(&self, state: usize, heard: Opinion, round: Round) -> usize;

    /// End-of-round successor, applied to every agent *after* reception (the
    /// dense analogue of [`Agent::end_round`](crate::Agent::end_round)).
    /// Defaults to the identity.
    fn on_round_end(&self, state: usize, round: Round) -> usize {
        let _ = round;
        state
    }

    /// The opinion agents in `state` hold, or `None` when undecided.
    fn opinion_of(&self, state: usize) -> Option<Opinion>;
}

/// A population stored as packed per-state counts.
///
/// # Example
///
/// ```
/// use flip_model::{DensePopulation, Opinion, RumorProtocol};
///
/// let population = DensePopulation::from_counts(vec![97, 1, 2]).unwrap();
/// assert_eq!(population.n(), 100);
/// let census = population.census(&RumorProtocol);
/// assert_eq!(census.active(), 3);
/// assert_eq!(census.holding(Opinion::One), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensePopulation {
    pub(crate) counts: Vec<u64>,
    n: u64,
}

impl DensePopulation {
    /// Builds one stratum of a [`StratifiedPopulation`] from raw counts,
    /// skipping the two-agent minimum: individual strata may be empty; only
    /// the stratified total is subject to the push-gossip size floor.
    pub(crate) fn stratum_from_counts(counts: Vec<u64>) -> Self {
        let n: u64 = counts.iter().sum();
        Self { counts, n }
    }

    /// Builds a population from per-state counts (`counts[s]` agents in state `s`).
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if the counts sum to fewer
    /// than two agents.
    pub fn from_counts(counts: Vec<u64>) -> Result<Self, FlipError> {
        let n: u64 = counts.iter().sum();
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n: n as usize });
        }
        Ok(Self { counts, n })
    }

    /// Builds a population from a bit-packed per-agent view, mapping each
    /// agent's `(active, opinion)` pair to a state via `state_for`.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] for bitmaps with fewer than
    /// two agents, or [`FlipError::InvalidParameter`] if `state_for` returns
    /// an index at or above `state_count`.
    pub fn from_bitmap<F>(
        bitmap: &OpinionBitmap,
        state_count: usize,
        state_for: F,
    ) -> Result<Self, FlipError>
    where
        F: Fn(Option<Opinion>) -> usize,
    {
        let mut counts = vec![0u64; state_count];
        for idx in 0..bitmap.len() {
            let state = state_for(bitmap.get(idx));
            if state >= state_count {
                return Err(FlipError::InvalidParameter {
                    name: "state_for",
                    message: format!("mapped agent {idx} to state {state} >= {state_count}"),
                });
            }
            counts[state] += 1;
        }
        Self::from_counts(counts)
    }

    /// Total number of agents.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of agents currently in `state`.
    #[must_use]
    pub fn count(&self, state: usize) -> u64 {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// All per-state counts, indexed by state.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// A census of the population under the given protocol's state→opinion map.
    #[must_use]
    pub fn census<P: DenseProtocol>(&self, protocol: &P) -> Census {
        let mut holding = [0u64; 2];
        for (state, &count) in self.counts.iter().enumerate() {
            if let Some(op) = protocol.opinion_of(state) {
                holding[op.index()] += count;
            }
        }
        Census::from_counts(holding[0] as usize, holding[1] as usize, self.n as usize)
    }
}

/// A bit-packed per-agent opinion/activity view (struct of arrays).
///
/// Two parallel bit vectors store, for each agent, whether it is active
/// (holds an opinion) and which opinion it holds; an inactive agent's opinion
/// bit is meaningless and kept at zero.  At 2 bits per agent — a quarter of a
/// niche-optimized `Vec<Option<Opinion>>`'s byte per agent — a 10⁷-agent view
/// costs 2.5 MB and censuses run at popcount speed.
///
/// # Example
///
/// ```
/// use flip_model::{Opinion, OpinionBitmap};
///
/// let mut bitmap = OpinionBitmap::new(100);
/// bitmap.set(3, Some(Opinion::One));
/// bitmap.set(64, Some(Opinion::Zero));
/// assert_eq!(bitmap.get(3), Some(Opinion::One));
/// assert_eq!(bitmap.get(0), None);
/// let census = bitmap.census();
/// assert_eq!(census.active(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpinionBitmap {
    active_bits: Vec<u64>,
    opinion_bits: Vec<u64>,
    len: usize,
}

impl OpinionBitmap {
    /// Creates a bitmap of `len` inactive agents.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64);
        Self {
            active_bits: vec![0; words],
            opinion_bits: vec![0; words],
            len,
        }
    }

    /// Number of agents in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets agent `idx`'s opinion (`None` deactivates it).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn set(&mut self, idx: usize, opinion: Option<Opinion>) {
        assert!(
            idx < self.len,
            "agent index {idx} out of range {}",
            self.len
        );
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        match opinion {
            Some(op) => {
                self.active_bits[word] |= bit;
                if op == Opinion::One {
                    self.opinion_bits[word] |= bit;
                } else {
                    self.opinion_bits[word] &= !bit;
                }
            }
            None => {
                self.active_bits[word] &= !bit;
                self.opinion_bits[word] &= !bit;
            }
        }
    }

    /// Agent `idx`'s opinion, or `None` if it is inactive.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<Opinion> {
        assert!(
            idx < self.len,
            "agent index {idx} out of range {}",
            self.len
        );
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if self.active_bits[word] & bit == 0 {
            None
        } else {
            Some(Opinion::from_bit(u8::from(
                self.opinion_bits[word] & bit != 0,
            )))
        }
    }

    /// A census of the view, computed with word-level popcounts.
    #[must_use]
    pub fn census(&self) -> Census {
        let mut ones = 0usize;
        let mut active = 0usize;
        for (a, o) in self.active_bits.iter().zip(&self.opinion_bits) {
            // Inactive agents' opinion bits are kept at zero, so masking with
            // the activity word is redundant but cheap insurance.
            ones += (a & o).count_ones() as usize;
            active += a.count_ones() as usize;
        }
        Census::from_counts(active - ones, ones, self.len)
    }
}

/// A synchronous Flip-model simulation over per-state counts.
///
/// The dense counterpart of [`Simulation`](crate::Simulation): it shares the
/// same [`RoundSummary`]/[`Metrics`] reporting surface, runs the same
/// push-gossip/collision/noise round structure, but executes each round with
/// `O(#states)` binomial draws, so `n = 10⁶` costs the same per round as
/// `n = 100`.  See the module docs for the exactness contract.
///
/// Since the stratified generalization landed this is a thin wrapper over a
/// single-stratum [`StratifiedSimulation`]; the stratified engine draws the
/// same variates in the same order, so seeded dense runs are bit-identical
/// to what this type produced when it owned the round loop
/// (`tests/dense_golden.rs` pins the stream).
#[derive(Debug)]
pub struct DenseSimulation<P, C> {
    inner: StratifiedSimulation<P, C>,
}

impl<P: DenseProtocol, C: Channel> DenseSimulation<P, C> {
    /// Creates a dense simulation over the given population.
    ///
    /// Populations of fewer than two agents are unrepresentable here: every
    /// [`DensePopulation`] constructor already rejects them.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if the configured population
    /// size disagrees with the counts, the protocol declares no states, or
    /// the counts vector is longer than the declared state count.
    pub fn new(
        protocol: P,
        channel: C,
        population: DensePopulation,
        config: SimulationConfig,
    ) -> Result<Self, FlipError> {
        let inner = StratifiedSimulation::new(
            protocol,
            vec![channel],
            StratifiedPopulation::single(population),
            config,
        )?;
        Ok(Self { inner })
    }

    /// Executes one synchronous round and returns its summary.
    pub fn step(&mut self) -> RoundSummary {
        self.inner.step()
    }

    /// Executes `rounds` rounds and returns the accumulated metrics.
    pub fn run(&mut self, rounds: u64) -> &Metrics {
        self.inner.run(rounds)
    }

    /// Executes rounds until `predicate` returns `true` (checked after every
    /// round) or `max_rounds` rounds have been executed, whichever comes first.
    ///
    /// Returns the number of rounds executed by this call.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut predicate: F) -> u64
    where
        F: FnMut(&Self) -> bool,
    {
        let mut executed = 0;
        while executed < max_rounds {
            self.step();
            executed += 1;
            if predicate(self) {
                break;
            }
        }
        executed
    }

    /// The current per-state population counts.
    #[must_use]
    pub fn population(&self) -> &DensePopulation {
        self.inner.population().stratum(0)
    }

    /// A census of the current population.
    #[must_use]
    pub fn census(&self) -> Census {
        self.inner.census()
    }

    /// The accumulated metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        self.inner.metrics()
    }

    /// The next round index to be executed (equals rounds executed so far).
    #[must_use]
    pub fn round(&self) -> Round {
        self.inner.round()
    }

    /// The protocol state machine in use.
    #[must_use]
    pub fn protocol(&self) -> &P {
        self.inner.protocol()
    }

    /// The noise channel in use.
    #[must_use]
    pub fn channel(&self) -> &C {
        &self.inner.channels()[0]
    }

    /// Consumes the simulation, returning the final population and metrics.
    #[must_use]
    pub fn into_parts(self) -> (DensePopulation, Metrics) {
        let (_, _, population, metrics) = self.inner.into_raw_parts();
        (population.into_stratum0(), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BinarySymmetricChannel, NoiselessChannel};
    use crate::dense_protocols::{RumorProtocol, VoterProtocol};

    #[test]
    fn rejects_bad_constructions() {
        assert!(DensePopulation::from_counts(vec![1]).is_err());
        assert!(DensePopulation::from_counts(vec![0, 0]).is_err());

        let population = DensePopulation::from_counts(vec![5, 5]).unwrap();
        let config = SimulationConfig::new(11);
        assert!(matches!(
            DenseSimulation::new(VoterProtocol, NoiselessChannel, population, config),
            Err(FlipError::InvalidParameter { .. })
        ));

        // Counts vector longer than the protocol's state space.
        let population = DensePopulation::from_counts(vec![5, 5, 5, 5]).unwrap();
        let config = SimulationConfig::new(20);
        assert!(DenseSimulation::new(VoterProtocol, NoiselessChannel, population, config).is_err());
    }

    #[test]
    fn short_counts_vectors_are_padded() {
        // A rumor population seeded with only the undecided slot filled.
        let population = DensePopulation::from_counts(vec![10]).unwrap();
        let config = SimulationConfig::new(10);
        let sim =
            DenseSimulation::new(RumorProtocol, NoiselessChannel, population, config).unwrap();
        assert_eq!(sim.population().counts().len(), 3);
    }

    #[test]
    fn silent_population_never_changes() {
        let population = RumorProtocol::population(100, 0, 0);
        let config = SimulationConfig::new(100).with_seed(1);
        let mut sim =
            DenseSimulation::new(RumorProtocol, NoiselessChannel, population, config).unwrap();
        let summary = sim.step();
        assert_eq!(summary.metrics.messages_sent, 0);
        assert_eq!(summary.census_active, 0);
        sim.run(10);
        assert_eq!(sim.metrics().messages_sent, 0);
        assert_eq!(sim.census().active(), 0);
        assert_eq!(sim.round(), 11);
    }

    #[test]
    fn unanimous_population_is_a_fixed_point() {
        let population = RumorProtocol::population(1_000, 0, 1_000);
        let config = SimulationConfig::new(1_000).with_seed(2);
        let mut sim =
            DenseSimulation::new(RumorProtocol, NoiselessChannel, population, config).unwrap();
        for _ in 0..20 {
            let summary = sim.step();
            assert_eq!(summary.census_active, 1_000);
            assert_eq!(summary.metrics.messages_sent, 1_000);
        }
        assert!(sim.census().is_unanimous(Opinion::One));
    }

    #[test]
    fn rumor_spreads_densely() {
        let population = RumorProtocol::population(100_000, 0, 10);
        let config = SimulationConfig::new(100_000)
            .with_seed(3)
            .with_reference(Opinion::One);
        let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
        let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config).unwrap();
        let executed = sim.run_until(1_000, |s| s.census().active() == 100_000);
        assert!(executed < 100, "rumor should spread in O(log n) rounds");
        // With noise, both opinions circulate among the activated agents.
        assert!(sim.census().holding(Opinion::One) > 0);
        assert!(sim.census().holding(Opinion::Zero) > 0);
    }

    #[test]
    fn metrics_balance_and_flip_rate_is_calibrated() {
        let population = DensePopulation::from_counts(vec![500, 500]).unwrap();
        let config = SimulationConfig::new(1_000).with_seed(4);
        let channel = BinarySymmetricChannel::new(0.25).unwrap();
        let mut sim = DenseSimulation::new(VoterProtocol, channel, population, config).unwrap();
        sim.run(500);
        let m = sim.metrics();
        assert_eq!(m.messages_sent, m.messages_accepted + m.messages_collided);
        assert_eq!(m.rounds, 500);
        let rate = m.empirical_flip_rate().unwrap();
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
        // Roughly 1 - 1/e of the population receives per round when everyone sends.
        let accept_rate = m.messages_accepted as f64 / m.messages_sent as f64;
        assert!(
            (accept_rate - 0.632).abs() < 0.02,
            "accept rate = {accept_rate}"
        );
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let population = RumorProtocol::population(10_000, 5, 5);
            let config = SimulationConfig::new(10_000).with_seed(seed);
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config).unwrap();
            let summaries: Vec<(usize, u64)> = (0..50)
                .map(|_| {
                    let s = sim.step();
                    (s.census_active, s.metrics.messages_sent)
                })
                .collect();
            (summaries, sim.metrics().clone())
        };
        let (s1, m1) = run(77);
        let (s2, m2) = run(77);
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
        let (s3, _) = run(78);
        assert_ne!(s1, s3, "different seeds should (almost surely) differ");
    }

    #[test]
    fn reference_is_reported_in_summaries() {
        let population = RumorProtocol::population(100, 10, 20);
        let config = SimulationConfig::new(100)
            .with_seed(5)
            .with_reference(Opinion::One);
        let mut sim =
            DenseSimulation::new(RumorProtocol, NoiselessChannel, population, config).unwrap();
        let summary = sim.step();
        assert_eq!(
            summary.census_correct,
            Some(sim.census().holding(Opinion::One))
        );
        let (population, metrics) = sim.into_parts();
        assert_eq!(population.n(), 100);
        assert_eq!(metrics.rounds, 1);
    }
}
