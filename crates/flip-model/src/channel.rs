//! Noise channels applied to every accepted message.

use std::cell::Cell;

use crate::error::FlipError;
use crate::opinion::Opinion;
use crate::rng::SimRng;

/// A point-to-point channel through which every accepted message passes.
///
/// The Flip model specifies a binary symmetric channel whose crossover
/// probability is *at most* `1/2 − ε`; this trait lets experiments plug in the
/// exact-worst-case channel ([`BinarySymmetricChannel`]), a noiseless control
/// ([`NoiselessChannel`]) or a heterogeneous cap-respecting channel
/// ([`AdversarialCapChannel`]).
pub trait Channel {
    /// Transmits one bit, possibly corrupting it.
    fn transmit(&self, message: Opinion, rng: &mut SimRng) -> Opinion;

    /// The probability that [`transmit`](Channel::transmit) flips the bit
    /// (an upper bound for channels whose noise varies per message).
    fn crossover(&self) -> f64;

    /// The noise margin `ε = 1/2 − crossover`.
    fn epsilon(&self) -> f64 {
        0.5 - self.crossover()
    }

    /// The *expected* per-message flip probability, used by the dense engine
    /// to sample aggregate flip counts.  Defaults to [`crossover`]
    /// (exact for channels with a fixed flip rate); channels whose noise
    /// varies per message must override it with the mean rate.
    ///
    /// [`crossover`]: Channel::crossover
    fn mean_crossover(&self) -> f64 {
        self.crossover()
    }

    /// The single fixed per-message flip probability of this channel, or
    /// `None` when the flip probability depends on the message.
    ///
    /// When this returns `Some(p)` the engine *fuses* noise into routing: it
    /// geometric-skip-samples the positions of flipped messages directly in
    /// the accepted stream (exact for i.i.d. Bernoulli(`p`) flips, one `ln`
    /// per flip instead of one draw per message) and never calls
    /// [`transmit`](Channel::transmit).  Channels with message-dependent
    /// noise return `None` (the default) and keep the per-message path.
    fn fixed_crossover(&self) -> Option<f64> {
        None
    }
}

/// The binary symmetric channel with a fixed crossover probability `p ∈ [0, 1/2]`.
///
/// This is the worst case permitted by the Flip model when constructed via
/// [`BinarySymmetricChannel::from_epsilon`], which sets `p = 1/2 − ε` exactly.
///
/// # Example
///
/// ```
/// use flip_model::{BinarySymmetricChannel, Channel};
///
/// # fn main() -> Result<(), flip_model::FlipError> {
/// let channel = BinarySymmetricChannel::from_epsilon(0.1)?;
/// assert!((channel.crossover() - 0.4).abs() < 1e-12);
/// assert!((channel.epsilon() - 0.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinarySymmetricChannel {
    crossover: f64,
}

impl BinarySymmetricChannel {
    /// Creates a channel that flips each bit with probability `crossover`.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidCrossover`] if `crossover` is not in `[0, 1/2]`
    /// or is not finite.
    pub fn new(crossover: f64) -> Result<Self, FlipError> {
        if !crossover.is_finite() || !(0.0..=0.5).contains(&crossover) {
            return Err(FlipError::InvalidCrossover {
                probability: crossover,
            });
        }
        Ok(Self { crossover })
    }

    /// Creates the worst-case channel of the Flip model: crossover `1/2 − ε`.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidEpsilon`] if `ε` is not in `(0, 1/2]` or is
    /// not finite.
    pub fn from_epsilon(epsilon: f64) -> Result<Self, FlipError> {
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon > 0.5 {
            return Err(FlipError::InvalidEpsilon { epsilon });
        }
        Ok(Self {
            crossover: 0.5 - epsilon,
        })
    }
}

impl Channel for BinarySymmetricChannel {
    fn transmit(&self, message: Opinion, rng: &mut SimRng) -> Opinion {
        if rng.chance(self.crossover) {
            message.flipped()
        } else {
            message
        }
    }

    fn crossover(&self) -> f64 {
        self.crossover
    }

    fn fixed_crossover(&self) -> Option<f64> {
        Some(self.crossover)
    }
}

/// A channel that never corrupts messages (`ε = 1/2`).
///
/// Useful as a control in experiments: with this channel the noisy broadcast
/// problem collapses to classical rumor spreading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoiselessChannel;

impl Channel for NoiselessChannel {
    fn transmit(&self, message: Opinion, _rng: &mut SimRng) -> Opinion {
        message
    }

    fn crossover(&self) -> f64 {
        0.0
    }

    fn fixed_crossover(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// A channel whose per-message flip probability varies but never exceeds a cap.
///
/// The Flip model only promises that the flip probability is *at most*
/// `1/2 − ε`; protocols must therefore tolerate message-dependent noise below
/// the cap.  This channel draws, for every message, a flip probability
/// uniformly from `[low, cap]`, which is useful for robustness tests.
///
/// An optional **flip budget** ([`AdversarialCapChannel::with_flip_budget`])
/// models an adversary with finitely many corruptions to spend: while the
/// budget lasts, the channel behaves exactly like its unbudgeted twin (same
/// RNG draws, same flips); once exhausted, every message passes through
/// untouched without consuming any RNG at all.  A budget of `0` is therefore
/// precisely the noiseless channel, and a budget at or above the number of
/// messages transmitted never binds.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialCapChannel {
    low: f64,
    cap: f64,
    /// Remaining adversarial flips, shared across the per-message delivery
    /// walk of one round via interior mutability (`transmit` takes `&self`).
    budget: Option<Cell<u64>>,
}

impl AdversarialCapChannel {
    /// Creates a channel whose per-message crossover is drawn uniformly from `[low, cap]`.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidCrossover`] if `cap` is not in `[0, 1/2]` or
    /// [`FlipError::InvalidParameter`] if `low` is negative or exceeds `cap`.
    pub fn new(low: f64, cap: f64) -> Result<Self, FlipError> {
        if !cap.is_finite() || !(0.0..=0.5).contains(&cap) {
            return Err(FlipError::InvalidCrossover { probability: cap });
        }
        if !low.is_finite() || low < 0.0 || low > cap {
            return Err(FlipError::InvalidParameter {
                name: "low",
                message: format!("lower bound {low} must lie in [0, cap = {cap}]"),
            });
        }
        Ok(Self {
            low,
            cap,
            budget: None,
        })
    }

    /// Caps the total number of flips the channel may ever produce.
    ///
    /// Both engines meter the same budget through [`Channel::transmit`]:
    /// per-agent deliveries and the hybrid tracked path decrement one shared
    /// counter, so `flips ≤ budget` holds for a whole run regardless of
    /// backend.
    #[must_use]
    pub fn with_flip_budget(mut self, flips: u64) -> Self {
        self.budget = Some(Cell::new(flips));
        self
    }

    /// The remaining flip budget, when one was configured.
    #[must_use]
    pub fn flip_budget_remaining(&self) -> Option<u64> {
        self.budget.as_ref().map(Cell::get)
    }
}

impl Channel for AdversarialCapChannel {
    fn transmit(&self, message: Opinion, rng: &mut SimRng) -> Opinion {
        use rand::Rng;
        // An exhausted budget passes the bit through without touching the
        // RNG: budget 0 is *exactly* the noiseless channel, stream included.
        if let Some(budget) = &self.budget {
            if budget.get() == 0 {
                return message;
            }
        }
        let p = if (self.cap - self.low).abs() < f64::EPSILON {
            self.cap
        } else {
            rng.gen_range(self.low..=self.cap)
        };
        if rng.chance(p) {
            if let Some(budget) = &self.budget {
                budget.set(budget.get() - 1);
            }
            message.flipped()
        } else {
            message
        }
    }

    fn crossover(&self) -> f64 {
        self.cap
    }

    fn mean_crossover(&self) -> f64 {
        // The per-message rate is uniform on [low, cap].
        0.5 * (self.low + self.cap)
    }

    fn fixed_crossover(&self) -> Option<f64> {
        // A budgeted channel is stateful — the engine must call `transmit`
        // for every message or the budget would never be metered.  Without
        // a budget, a collapsed interval is a fixed-rate channel; anything
        // wider has message-dependent noise and keeps the per-message path.
        if self.budget.is_some() {
            return None;
        }
        ((self.cap - self.low).abs() < f64::EPSILON).then_some(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn bsc_rejects_invalid_crossover() {
        assert!(BinarySymmetricChannel::new(0.7).is_err());
        assert!(BinarySymmetricChannel::new(-0.1).is_err());
        assert!(BinarySymmetricChannel::new(f64::NAN).is_err());
        assert!(BinarySymmetricChannel::new(0.5).is_ok());
        assert!(BinarySymmetricChannel::new(0.0).is_ok());
    }

    #[test]
    fn bsc_rejects_invalid_epsilon() {
        assert!(BinarySymmetricChannel::from_epsilon(0.0).is_err());
        assert!(BinarySymmetricChannel::from_epsilon(0.6).is_err());
        assert!(BinarySymmetricChannel::from_epsilon(f64::INFINITY).is_err());
        assert!(BinarySymmetricChannel::from_epsilon(0.5).is_ok());
    }

    #[test]
    fn epsilon_and_crossover_are_consistent() {
        let c = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
        assert!((c.crossover() - 0.3).abs() < 1e-12);
        assert!((c.epsilon() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empirical_flip_rate_matches_crossover() {
        let c = BinarySymmetricChannel::new(0.3).unwrap();
        let mut rng = SimRng::from_seed(17);
        let flips = (0..20_000)
            .filter(|_| c.transmit(Opinion::One, &mut rng) == Opinion::Zero)
            .count();
        let rate = flips as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn zero_crossover_never_flips() {
        let c = BinarySymmetricChannel::new(0.0).unwrap();
        let mut rng = SimRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(c.transmit(Opinion::Zero, &mut rng), Opinion::Zero);
        }
    }

    #[test]
    fn noiseless_channel_is_identity() {
        let c = NoiselessChannel;
        let mut rng = SimRng::from_seed(1);
        for op in Opinion::ALL {
            assert_eq!(c.transmit(op, &mut rng), op);
        }
        assert_eq!(c.crossover(), 0.0);
        assert_eq!(c.epsilon(), 0.5);
    }

    #[test]
    fn adversarial_cap_channel_validates_bounds() {
        assert!(AdversarialCapChannel::new(0.0, 0.4).is_ok());
        assert!(AdversarialCapChannel::new(0.2, 0.1).is_err());
        assert!(AdversarialCapChannel::new(-0.1, 0.4).is_err());
        assert!(AdversarialCapChannel::new(0.0, 0.6).is_err());
    }

    #[test]
    fn fixed_crossover_reports_fusable_channels() {
        assert_eq!(
            BinarySymmetricChannel::new(0.3).unwrap().fixed_crossover(),
            Some(0.3)
        );
        assert_eq!(NoiselessChannel.fixed_crossover(), Some(0.0));
        // A genuinely varying channel must keep the per-message path ...
        assert_eq!(
            AdversarialCapChannel::new(0.1, 0.4)
                .unwrap()
                .fixed_crossover(),
            None
        );
        // ... but a collapsed interval is a fixed-rate channel.
        assert_eq!(
            AdversarialCapChannel::new(0.4, 0.4)
                .unwrap()
                .fixed_crossover(),
            Some(0.4)
        );
    }

    #[test]
    fn zero_flip_budget_behaves_as_noiseless() {
        // Budget 0 must be indistinguishable from NoiselessChannel: no
        // flips, and — crucially — no RNG consumption either.
        let c = AdversarialCapChannel::new(0.1, 0.4)
            .unwrap()
            .with_flip_budget(0);
        let mut rng = SimRng::from_seed(5);
        for op in Opinion::ALL {
            for _ in 0..100 {
                assert_eq!(c.transmit(op, &mut rng), op);
            }
        }
        let mut untouched = SimRng::from_seed(5);
        assert_eq!(rng.next_u64(), untouched.next_u64(), "no RNG draws spent");
        assert_eq!(c.flip_budget_remaining(), Some(0));
        assert_eq!(c.fixed_crossover(), None, "budgeted channels are stateful");
    }

    #[test]
    fn unbinding_flip_budget_matches_the_unbudgeted_channel() {
        // A budget at (or above) the number of messages never binds: the
        // budgeted channel must replay the unbudgeted channel's outputs and
        // RNG stream exactly, message for message.
        let plain = AdversarialCapChannel::new(0.1, 0.4).unwrap();
        let budgeted = plain.clone().with_flip_budget(20_000);
        let mut rng_plain = SimRng::from_seed(11);
        let mut rng_budget = SimRng::from_seed(11);
        let mut flips = 0u64;
        for _ in 0..20_000 {
            let a = plain.transmit(Opinion::One, &mut rng_plain);
            let b = budgeted.transmit(Opinion::One, &mut rng_budget);
            assert_eq!(a, b);
            flips += u64::from(b == Opinion::Zero);
        }
        assert_eq!(rng_plain.next_u64(), rng_budget.next_u64());
        assert_eq!(budgeted.flip_budget_remaining(), Some(20_000 - flips));
        assert!(flips > 0, "the cap channel must actually flip sometimes");
    }

    #[test]
    fn flip_budget_stops_flipping_once_spent() {
        let c = AdversarialCapChannel::new(0.5, 0.5)
            .unwrap()
            .with_flip_budget(3);
        let mut rng = SimRng::from_seed(2);
        let flips = (0..1_000)
            .filter(|_| c.transmit(Opinion::One, &mut rng) == Opinion::Zero)
            .count();
        // A p = 1/2 channel flips well over 3 times in 1000 messages
        // unbudgeted; the budget must clamp it to exactly 3.
        assert_eq!(flips, 3);
        assert_eq!(c.flip_budget_remaining(), Some(0));
    }

    #[test]
    fn adversarial_cap_channel_flips_at_most_at_cap_rate() {
        let c = AdversarialCapChannel::new(0.0, 0.25).unwrap();
        let mut rng = SimRng::from_seed(9);
        let flips = (0..20_000)
            .filter(|_| c.transmit(Opinion::One, &mut rng) == Opinion::Zero)
            .count();
        let rate = flips as f64 / 20_000.0;
        // Expected rate is the mean of U[0, 0.25] = 0.125; it must stay below the cap.
        assert!(rate < 0.25, "rate = {rate}");
        assert!(rate > 0.05, "rate = {rate}");
    }
}
