//! Selection between the per-agent, dense, and hybrid simulation engines.

use std::fmt;
use std::str::FromStr;

use crate::error::FlipError;

/// Default tracked-subpopulation size for [`Backend::Hybrid`] when a caller
/// wants "a hybrid backend" without caring about the exact split (used by
/// [`Backend::ALL`] and registry capability lists).
pub const DEFAULT_HYBRID_TRACKED: u32 = 16;

/// Which simulation engine executes a workload.
///
/// * [`Backend::Agents`] — the per-agent [`Simulation`](crate::Simulation):
///   one state machine object per agent, exact collision resolution, per-agent
///   traces.  The reference semantics; practical up to `n ≈ 10⁴–10⁵`.
/// * [`Backend::Dense`] — the counts-based
///   [`DenseSimulation`](crate::DenseSimulation) /
///   [`StratifiedSimulation`](crate::StratifiedSimulation): `O(#strata ×
///   #states)` per round, distributionally equivalent at the population
///   level; practical to `n = 10⁷` and beyond.
/// * [`Backend::Hybrid`] — the [`HybridSimulation`](crate::HybridSimulation):
///   `k` tracked agents simulated exactly (per-message channel noise,
///   per-agent state) against a dense bulk, exchanging aggregate send counts
///   and sampled deliveries each round.
///
/// Experiment binaries select the backend with
/// `--backend agents|dense|hybrid:k`.
///
/// # Example
///
/// ```
/// use flip_model::Backend;
///
/// assert_eq!("dense".parse::<Backend>().unwrap(), Backend::Dense);
/// assert_eq!("hybrid:32".parse::<Backend>().unwrap(), Backend::Hybrid(32));
/// assert_eq!(Backend::Hybrid(32).to_string(), "hybrid:32");
/// assert_eq!(Backend::Agents.to_string(), "agents");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The per-agent reference engine.
    #[default]
    Agents,
    /// The dense counts-based engine (stratified under the hood).
    Dense,
    /// The hybrid engine: this many tracked agents against a dense bulk.
    Hybrid(u32),
}

impl Backend {
    /// One representative of every backend family, in default-first order.
    pub const ALL: [Backend; 3] = [
        Backend::Agents,
        Backend::Dense,
        Backend::Hybrid(DEFAULT_HYBRID_TRACKED),
    ];

    /// The canonical command-line family name of the backend (the part
    /// before any `:k` suffix — see [`Display`](fmt::Display) for the full
    /// round-trippable form).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Agents => "agents",
            Backend::Dense => "dense",
            Backend::Hybrid(_) => "hybrid",
        }
    }

    /// Whether two backends belong to the same engine family, ignoring
    /// per-variant parameters (any two `Hybrid(k)` values match).  Registry
    /// capability lists are family-level: a protocol that supports
    /// `hybrid:16` supports every `hybrid:k`.
    #[must_use]
    pub fn same_family(self, other: Backend) -> bool {
        std::mem::discriminant(&self) == std::mem::discriminant(&other)
    }

    /// The tracked-subpopulation size, when this is a hybrid backend.
    #[must_use]
    pub fn tracked(self) -> Option<u32> {
        match self {
            Backend::Hybrid(k) => Some(k),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Hybrid(k) => write!(f, "hybrid:{k}"),
            other => f.write_str(other.as_str()),
        }
    }
}

impl FromStr for Backend {
    type Err = FlipError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if let Some(suffix) = lower.strip_prefix("hybrid") {
            let spec = suffix.strip_prefix(':');
            return match spec {
                None if suffix.is_empty() => Err(FlipError::InvalidParameter {
                    name: "backend",
                    message: "backend `hybrid` needs a tracked subpopulation size: \
                              write `hybrid:k` with k >= 1 (e.g. `hybrid:16`)"
                        .into(),
                }),
                None => Err(unknown_backend(&lower)),
                Some(raw) => match raw.parse::<u32>() {
                    Ok(0) => Err(FlipError::InvalidParameter {
                        name: "backend",
                        message: "backend `hybrid:0` tracks no agents; \
                                  the tracked subpopulation size k must be >= 1"
                            .into(),
                    }),
                    Ok(k) => Ok(Backend::Hybrid(k)),
                    Err(_) => Err(FlipError::InvalidParameter {
                        name: "backend",
                        message: format!(
                            "backend `hybrid:{raw}` has a malformed tracked subpopulation \
                             size; write `hybrid:k` with k >= 1 (e.g. `hybrid:16`)"
                        ),
                    }),
                },
            };
        }
        match lower.as_str() {
            "agents" | "agent" | "per-agent" => Ok(Backend::Agents),
            "dense" | "counts" => Ok(Backend::Dense),
            other => Err(unknown_backend(other)),
        }
    }
}

fn unknown_backend(other: &str) -> FlipError {
    FlipError::InvalidParameter {
        name: "backend",
        message: format!("unknown backend `{other}`; expected `agents`, `dense`, or `hybrid:k`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_spellings() {
        assert_eq!("agents".parse::<Backend>().unwrap(), Backend::Agents);
        assert_eq!("per-agent".parse::<Backend>().unwrap(), Backend::Agents);
        assert_eq!("DENSE".parse::<Backend>().unwrap(), Backend::Dense);
        assert_eq!("counts".parse::<Backend>().unwrap(), Backend::Dense);
        assert_eq!("hybrid:1".parse::<Backend>().unwrap(), Backend::Hybrid(1));
        assert_eq!(
            "HYBRID:200".parse::<Backend>().unwrap(),
            Backend::Hybrid(200)
        );
        assert!("gpu".parse::<Backend>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for backend in Backend::ALL {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!(
            Backend::Hybrid(1024)
                .to_string()
                .parse::<Backend>()
                .unwrap(),
            Backend::Hybrid(1024)
        );
    }

    #[test]
    fn hybrid_without_a_subpopulation_size_fails_loudly() {
        for bad in ["hybrid", "hybrid:", "hybrid:0", "hybrid:x", "hybrid-8"] {
            let err = bad.parse::<Backend>().unwrap_err();
            let message = err.to_string();
            assert!(
                message.contains("backend"),
                "error for `{bad}` must name the backend flag: {message}"
            );
            if bad != "hybrid-8" {
                assert!(
                    message.contains("subpopulation") || message.contains("k >= 1"),
                    "error for `{bad}` must explain the missing size: {message}"
                );
            }
        }
    }

    #[test]
    fn family_matching_ignores_the_tracked_count() {
        assert!(Backend::Hybrid(1).same_family(Backend::Hybrid(999)));
        assert!(!Backend::Hybrid(1).same_family(Backend::Dense));
        assert!(Backend::Agents.same_family(Backend::Agents));
        assert_eq!(Backend::Hybrid(7).tracked(), Some(7));
        assert_eq!(Backend::Dense.tracked(), None);
    }

    #[test]
    fn default_is_the_reference_engine() {
        assert_eq!(Backend::default(), Backend::Agents);
    }
}
