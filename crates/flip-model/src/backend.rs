//! Selection between the per-agent and dense simulation engines.

use std::fmt;
use std::str::FromStr;

use crate::error::FlipError;

/// Which simulation engine executes a workload.
///
/// * [`Backend::Agents`] — the per-agent [`Simulation`](crate::Simulation):
///   one state machine object per agent, exact collision resolution, per-agent
///   traces.  The reference semantics; practical up to `n ≈ 10⁴–10⁵`.
/// * [`Backend::Dense`] — the counts-based
///   [`DenseSimulation`](crate::DenseSimulation): `O(#states)` per round,
///   distributionally equivalent at the population level; practical to
///   `n = 10⁷` and beyond.
///
/// Experiment binaries select the backend with `--backend dense|agents`.
///
/// # Example
///
/// ```
/// use flip_model::Backend;
///
/// assert_eq!("dense".parse::<Backend>().unwrap(), Backend::Dense);
/// assert_eq!(Backend::Agents.to_string(), "agents");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The per-agent reference engine.
    #[default]
    Agents,
    /// The dense counts-based engine.
    Dense,
}

impl Backend {
    /// Both backends, in default-first order.
    pub const ALL: [Backend; 2] = [Backend::Agents, Backend::Dense];

    /// The canonical command-line name of the backend.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Agents => "agents",
            Backend::Dense => "dense",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Backend {
    type Err = FlipError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "agents" | "agent" | "per-agent" => Ok(Backend::Agents),
            "dense" | "counts" => Ok(Backend::Dense),
            other => Err(FlipError::InvalidParameter {
                name: "backend",
                message: format!("unknown backend `{other}`; expected `agents` or `dense`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_spellings() {
        assert_eq!("agents".parse::<Backend>().unwrap(), Backend::Agents);
        assert_eq!("per-agent".parse::<Backend>().unwrap(), Backend::Agents);
        assert_eq!("DENSE".parse::<Backend>().unwrap(), Backend::Dense);
        assert_eq!("counts".parse::<Backend>().unwrap(), Backend::Dense);
        assert!("gpu".parse::<Backend>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for backend in Backend::ALL {
            assert_eq!(backend.as_str().parse::<Backend>().unwrap(), backend);
        }
    }

    #[test]
    fn default_is_the_reference_engine() {
        assert_eq!(Backend::default(), Backend::Agents);
    }
}
