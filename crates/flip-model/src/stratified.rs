//! The stratified dense engine: per-stratum counts against a shared pool.
//!
//! The dense engine ([`DenseSimulation`](crate::DenseSimulation)) assumes one
//! interchangeable population: a single count vector, a single send table, a
//! single channel.  Heterogeneous scenarios — zealot subpopulations, agent
//! classes listening through differently-noisy channels — break that
//! assumption and used to fall back to the per-agent engine, capping them
//! orders of magnitude below the `n ≥ 10⁶` regime the paper's asymptotic
//! claims ask for.
//!
//! This module generalizes the counts representation to **strata**.  A
//! stratum is an (agent-class × channel-class) pair with its own count
//! vector, send table ([`StratifiedProtocol::send`]) and channel (one
//! [`Channel`] per stratum, so each stratum has its own crossover
//! parameters).  Agents never move between strata — a stratum is a fixed
//! subpopulation, and all state transitions stay inside it.  Every round the
//! strata push into **one shared global message pool**: sends are one
//! binomial per (stratum, state) cell, the pool's symbol mix is global, and
//! reception is one binomial pair per (stratum, state) cell against the
//! occupancy marginal of the whole population, so a round costs
//! `O(#strata × #states)` regardless of `n`.
//!
//! # Exactness
//!
//! Identical to the dense engine's contract (see [`crate::dense`]): exact
//! aggregate sampling of sends, noise and transitions, with independent
//! per-agent reception at the occupancy marginal `p = 1 − (1 − 1/(n−1))^M`
//! as the one approximation.  With a single stratum the engine draws the
//! *same random variates in the same order* as [`DenseSimulation`] — the
//! dense engine is now a thin wrapper over this one, and
//! `tests/dense_equivalence.rs` pins the bit-identity.
//!
//! # Example
//!
//! ```
//! use flip_model::{
//!     BinarySymmetricChannel, SimulationConfig, StratifiedSimulation, ZealotRumorProtocol,
//! };
//!
//! # fn main() -> Result<(), flip_model::FlipError> {
//! // A million-agent rumor population infiltrated by 1000 zealots that
//! // always push Zero: two strata, one shared message pool.
//! let protocol = ZealotRumorProtocol;
//! let population = ZealotRumorProtocol::population(1_000_000, 0, 1_000, 1_000);
//! let channel = BinarySymmetricChannel::from_epsilon(0.3)?;
//! let config = SimulationConfig::new(1_000_000).with_seed(7);
//! let mut sim =
//!     StratifiedSimulation::new(protocol, vec![channel; 2], population, config)?;
//! sim.run(100);
//! assert!(sim.census().active() > 990_000);
//! # Ok(())
//! # }
//! ```

use rand::distributions::{Binomial, Distribution};

use crate::agent::Round;
use crate::channel::Channel;
use crate::config::SimulationConfig;
use crate::dense::{DensePopulation, DenseProtocol};
use crate::engine::RoundSummary;
use crate::error::FlipError;
use crate::metrics::{Metrics, RoundMetrics};
use crate::opinion::Opinion;
use crate::population::Census;
use crate::rng::SimRng;

/// A protocol over a stratified population: a finite state machine per
/// stratum, runnable by [`StratifiedSimulation`] in `O(#strata × #states)`
/// per round.
///
/// The single-stratum case is exactly [`DenseProtocol`], and every dense
/// protocol implements this trait automatically through a blanket impl —
/// Rumor/Voter/MajoritySampler run unchanged on the stratified engine.
pub trait StratifiedProtocol {
    /// Number of strata (must be at least 1 and constant).
    fn stratum_count(&self) -> usize;

    /// Number of states in `stratum`'s machine (at least 1, constant).
    fn state_count(&self, stratum: usize) -> usize;

    /// Send behaviour of a state in `stratum`: `Some((symbol, probability))`
    /// when its agents push `symbol` with the given probability this round,
    /// `None` when they stay silent ("breathe").
    fn send(&self, stratum: usize, state: usize, round: Round) -> Option<(Opinion, f64)>;

    /// Successor state (within the same stratum) for an agent in `stratum`'s
    /// `state` that accepts `heard` this round.
    fn on_receive(&self, stratum: usize, state: usize, heard: Opinion, round: Round) -> usize;

    /// End-of-round successor, applied after reception; defaults to identity.
    fn on_round_end(&self, stratum: usize, state: usize, round: Round) -> usize {
        let _ = round;
        let _ = stratum;
        state
    }

    /// The opinion agents in `stratum`'s `state` hold, or `None` if undecided.
    fn opinion_of(&self, stratum: usize, state: usize) -> Option<Opinion>;
}

/// Every dense protocol is a one-stratum stratified protocol.
impl<P: DenseProtocol> StratifiedProtocol for P {
    fn stratum_count(&self) -> usize {
        1
    }

    fn state_count(&self, _stratum: usize) -> usize {
        DenseProtocol::state_count(self)
    }

    fn send(&self, _stratum: usize, state: usize, round: Round) -> Option<(Opinion, f64)> {
        DenseProtocol::send(self, state, round)
    }

    fn on_receive(&self, _stratum: usize, state: usize, heard: Opinion, round: Round) -> usize {
        DenseProtocol::on_receive(self, state, heard, round)
    }

    fn on_round_end(&self, _stratum: usize, state: usize, round: Round) -> usize {
        DenseProtocol::on_round_end(self, state, round)
    }

    fn opinion_of(&self, _stratum: usize, state: usize) -> Option<Opinion> {
        DenseProtocol::opinion_of(self, state)
    }
}

/// A population stored as per-stratum packed per-state counts.
///
/// Individual strata may be empty (and may hold a single agent); only the
/// total population must contain at least two agents for push gossip to be
/// defined.
///
/// # Example
///
/// ```
/// use flip_model::StratifiedPopulation;
///
/// let population =
///     StratifiedPopulation::from_strata(vec![vec![97, 1, 2], vec![5]]).unwrap();
/// assert_eq!(population.n(), 105);
/// assert_eq!(population.stratum_count(), 2);
/// assert_eq!(population.stratum(1).n(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratifiedPopulation {
    strata: Vec<DensePopulation>,
    n: u64,
}

impl StratifiedPopulation {
    /// Builds a stratified population from per-stratum count vectors
    /// (`strata[s][state]` agents in stratum `s`'s `state`).
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if the counts sum to fewer
    /// than two agents across all strata, or [`FlipError::InvalidParameter`]
    /// when no strata are given.
    pub fn from_strata(strata: Vec<Vec<u64>>) -> Result<Self, FlipError> {
        if strata.is_empty() {
            return Err(FlipError::InvalidParameter {
                name: "strata",
                message: "a stratified population needs at least one stratum".to_string(),
            });
        }
        let strata: Vec<DensePopulation> = strata
            .into_iter()
            .map(DensePopulation::stratum_from_counts)
            .collect();
        let n: u64 = strata.iter().map(DensePopulation::n).sum();
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n: n as usize });
        }
        Ok(Self { strata, n })
    }

    /// Wraps a dense (single-stratum) population.
    #[must_use]
    pub fn single(population: DensePopulation) -> Self {
        let n = population.n();
        Self {
            strata: vec![population],
            n,
        }
    }

    /// Total number of agents across all strata.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of strata.
    #[must_use]
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// The counts of one stratum.
    ///
    /// # Panics
    ///
    /// Panics if `stratum >= stratum_count()`.
    #[must_use]
    pub fn stratum(&self, stratum: usize) -> &DensePopulation {
        &self.strata[stratum]
    }

    /// All strata, for crate-internal engines that drive the counts directly.
    pub(crate) fn strata(&self) -> &[DensePopulation] {
        &self.strata
    }

    /// Mutable view of all strata, for crate-internal engines.
    pub(crate) fn strata_mut(&mut self) -> &mut [DensePopulation] {
        &mut self.strata
    }

    /// Unwraps a single-stratum population back into its dense form.
    ///
    /// # Panics
    ///
    /// Panics if the population has more than one stratum (callers guard on
    /// construction: the dense wrapper only ever builds single-stratum
    /// populations).
    pub(crate) fn into_stratum0(self) -> DensePopulation {
        assert_eq!(self.strata.len(), 1, "population is not single-stratum");
        self.strata.into_iter().next().expect("one stratum")
    }

    /// A census of the whole population under the protocol's opinion map.
    #[must_use]
    pub fn census<P: StratifiedProtocol>(&self, protocol: &P) -> Census {
        let mut holding = [0u64; 2];
        for (s, stratum) in self.strata.iter().enumerate() {
            for (state, &count) in stratum.counts().iter().enumerate() {
                if let Some(op) = protocol.opinion_of(s, state) {
                    holding[op.index()] += count;
                }
            }
        }
        Census::from_counts(holding[0] as usize, holding[1] as usize, self.n as usize)
    }
}

/// Validates a population against a protocol's stratum/state declarations
/// and pads every stratum's counts vector to its declared state count.
/// Shared between [`StratifiedSimulation::new`] and the hybrid engine's bulk
/// setup.
pub(crate) fn validate_and_pad<P: StratifiedProtocol>(
    protocol: &P,
    population: &mut StratifiedPopulation,
) -> Result<(), FlipError> {
    let strata = protocol.stratum_count();
    if strata == 0 {
        return Err(FlipError::InvalidParameter {
            name: "stratum_count",
            message: "a stratified protocol needs at least one stratum".to_string(),
        });
    }
    if population.stratum_count() != strata {
        return Err(FlipError::InvalidParameter {
            name: "strata",
            message: format!(
                "population has {} strata but the protocol declares {strata}",
                population.stratum_count()
            ),
        });
    }
    for (s, stratum) in population.strata.iter_mut().enumerate() {
        let states = protocol.state_count(s);
        if states == 0 {
            return Err(FlipError::InvalidParameter {
                name: "state_count",
                message: format!("stratum {s} declares no states; need at least one"),
            });
        }
        if stratum.counts().len() > states {
            return Err(FlipError::InvalidParameter {
                name: "counts",
                message: format!(
                    "stratum {s} has {} state slots but its protocol declares {states}",
                    stratum.counts().len()
                ),
            });
        }
        stratum.counts.resize(states, 0);
    }
    Ok(())
}

pub(crate) fn binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    Binomial::new(n, p)
        .expect("probability is validated above")
        .sample(rng)
}

/// A synchronous Flip-model simulation over per-stratum, per-state counts.
///
/// The stratified generalization of [`DenseSimulation`](crate::DenseSimulation)
/// (which is now a single-stratum wrapper around this engine): same
/// [`RoundSummary`]/[`Metrics`] reporting surface, same
/// push-gossip/collision/noise round structure, one channel per stratum, and
/// `O(#strata × #states)` binomial draws per round.
#[derive(Debug)]
pub struct StratifiedSimulation<P, C> {
    protocol: P,
    channels: Vec<C>,
    population: StratifiedPopulation,
    next_counts: Vec<Vec<u64>>,
    rng: SimRng,
    round: Round,
    metrics: Metrics,
    reference: Option<Opinion>,
}

impl<P: StratifiedProtocol, C: Channel> StratifiedSimulation<P, C> {
    /// Creates a stratified simulation over the given population, with one
    /// channel per stratum (`channels[s]` carries stratum `s`'s receptions).
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if the configured population
    /// size disagrees with the counts, the channel list length disagrees
    /// with the protocol's stratum count, the protocol declares no strata or
    /// a stateless stratum, or a stratum's counts vector is longer than its
    /// declared state count.
    pub fn new(
        protocol: P,
        channels: Vec<C>,
        population: StratifiedPopulation,
        config: SimulationConfig,
    ) -> Result<Self, FlipError> {
        if config.population() as u64 != population.n() {
            return Err(FlipError::InvalidParameter {
                name: "population",
                message: format!(
                    "config says {} agents but counts sum to {}",
                    config.population(),
                    population.n()
                ),
            });
        }
        if channels.len() != protocol.stratum_count() {
            return Err(FlipError::InvalidParameter {
                name: "channels",
                message: format!(
                    "{} channels supplied but the protocol declares {} strata",
                    channels.len(),
                    protocol.stratum_count()
                ),
            });
        }
        let mut population = population;
        validate_and_pad(&protocol, &mut population)?;
        let next_counts = population
            .strata
            .iter()
            .map(|stratum| vec![0; stratum.counts().len()])
            .collect();
        Ok(Self {
            protocol,
            channels,
            next_counts,
            population,
            rng: SimRng::from_seed(config.seed()),
            round: 0,
            metrics: Metrics::new(),
            reference: config.reference(),
        })
    }

    /// Executes one synchronous round and returns its summary.
    ///
    /// The draw order is: sends stratum-by-stratum (states inner) into the
    /// shared pool, then per stratum a reception pass (receivers and
    /// heard-ones binomials per state, then that stratum's two flip-count
    /// binomials).  With one stratum this is *exactly* the dense engine's
    /// draw sequence, which is what makes [`DenseSimulation`](crate::DenseSimulation)'s
    /// delegation bit-identical.
    pub fn step(&mut self) -> RoundSummary {
        let round = self.round;
        let n = self.population.n;
        let strata = self.population.strata.len();

        // Phase 1: aggregate sends into one shared pool — one binomial per
        // (stratum, sending state) cell.
        let mut sent_by_symbol = [0u64; 2];
        for s in 0..strata {
            for state in 0..self.population.strata[s].counts.len() {
                let count = self.population.strata[s].counts[state];
                if count == 0 {
                    continue;
                }
                if let Some((symbol, probability)) = self.protocol.send(s, state, round) {
                    sent_by_symbol[symbol.index()] += binomial(&mut self.rng, count, probability);
                }
            }
        }
        let sent = sent_by_symbol[0] + sent_by_symbol[1];

        // Phase 2: aggregate reception — one binomial pair per (stratum,
        // state) cell, against the global pool but through each stratum's
        // own channel.
        for next in &mut self.next_counts {
            next.fill(0);
        }
        let mut accepted = 0u64;
        let mut flips = 0u64;
        if sent == 0 {
            for s in 0..strata {
                for state in 0..self.population.strata[s].counts.len() {
                    let count = self.population.strata[s].counts[state];
                    if count > 0 {
                        self.next_counts[s][self.protocol.on_round_end(s, state, round)] += count;
                    }
                }
            }
        } else {
            // Occupancy marginal of the shared pool (see crate::dense docs);
            // the pool's symbol mix is global, the crossover per stratum.
            let p_receive = 1.0 - (1.0 - 1.0 / (n as f64 - 1.0)).powf(sent as f64);
            let fraction_one = sent_by_symbol[1] as f64 / sent as f64;
            for s in 0..strata {
                let crossover = self.channels[s].mean_crossover();
                let hear_one = fraction_one * (1.0 - crossover) + (1.0 - fraction_one) * crossover;
                let mut stratum_accepted = 0u64;
                let mut heard_ones = 0u64;
                for state in 0..self.population.strata[s].counts.len() {
                    let count = self.population.strata[s].counts[state];
                    if count == 0 {
                        continue;
                    }
                    let receivers = binomial(&mut self.rng, count, p_receive);
                    let hear_ones = binomial(&mut self.rng, receivers, hear_one);
                    let hear_zeros = receivers - hear_ones;
                    stratum_accepted += receivers;
                    heard_ones += hear_ones;
                    let silent_state = self.protocol.on_round_end(s, state, round);
                    self.next_counts[s][silent_state] += count - receivers;
                    let one_state = self.protocol.on_round_end(
                        s,
                        self.protocol.on_receive(s, state, Opinion::One, round),
                        round,
                    );
                    self.next_counts[s][one_state] += hear_ones;
                    let zero_state = self.protocol.on_round_end(
                        s,
                        self.protocol.on_receive(s, state, Opinion::Zero, round),
                        round,
                    );
                    self.next_counts[s][zero_state] += hear_zeros;
                }
                // Flip counts conditioned on the heard symbols actually
                // drawn in this stratum (same conditioning as the dense
                // engine, with this stratum's crossover).
                let flip_given_one = if hear_one > 0.0 {
                    ((1.0 - fraction_one) * crossover / hear_one).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let flip_given_zero = if hear_one < 1.0 {
                    (fraction_one * crossover / (1.0 - hear_one)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                flips += binomial(&mut self.rng, heard_ones, flip_given_one)
                    + binomial(
                        &mut self.rng,
                        stratum_accepted - heard_ones,
                        flip_given_zero,
                    );
                accepted += stratum_accepted;
            }
        }
        for (stratum, next) in self.population.strata.iter_mut().zip(&mut self.next_counts) {
            std::mem::swap(&mut stratum.counts, next);
        }

        // Independent reception can (rarely) draw slightly more receivers
        // than messages; clamp the accounting so `sent = accepted + collided`.
        let accepted_capped = accepted.min(sent);
        // The stratified engine carries no fault plan: the fault counters in
        // its round metrics stay zero.
        let round_metrics = RoundMetrics {
            round,
            messages_sent: sent,
            messages_accepted: accepted_capped,
            messages_collided: sent - accepted_capped,
            bits_flipped: flips.min(accepted_capped),
            ..RoundMetrics::default()
        };
        self.metrics.absorb_round(&round_metrics);
        self.round += 1;

        let census = self.population.census(&self.protocol);
        RoundSummary {
            metrics: round_metrics,
            census_active: census.active(),
            census_correct: self.reference.map(|r| census.holding(r)),
        }
    }

    /// Executes `rounds` rounds and returns the accumulated metrics.
    pub fn run(&mut self, rounds: u64) -> &Metrics {
        for _ in 0..rounds {
            self.step();
        }
        &self.metrics
    }

    /// Executes rounds until `predicate` returns `true` (checked after every
    /// round) or `max_rounds` rounds have run, whichever comes first.
    ///
    /// Returns the number of rounds executed by this call.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut predicate: F) -> u64
    where
        F: FnMut(&Self) -> bool,
    {
        let mut executed = 0;
        while executed < max_rounds {
            self.step();
            executed += 1;
            if predicate(self) {
                break;
            }
        }
        executed
    }

    /// The current per-stratum population counts.
    #[must_use]
    pub fn population(&self) -> &StratifiedPopulation {
        &self.population
    }

    /// A census of the current population.
    #[must_use]
    pub fn census(&self) -> Census {
        self.population.census(&self.protocol)
    }

    /// The accumulated metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The next round index to be executed (equals rounds executed so far).
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The protocol in use.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The per-stratum channels in use.
    #[must_use]
    pub fn channels(&self) -> &[C] {
        &self.channels
    }

    /// Consumes the simulation, returning the final population and metrics.
    #[must_use]
    pub fn into_parts(self) -> (StratifiedPopulation, Metrics) {
        (self.population, self.metrics)
    }

    /// Consumes the simulation, returning protocol, channels, population and
    /// metrics (the dense wrapper uses this to keep its own surface).
    pub(crate) fn into_raw_parts(self) -> (P, Vec<C>, StratifiedPopulation, Metrics) {
        (self.protocol, self.channels, self.population, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BinarySymmetricChannel, NoiselessChannel};
    use crate::dense_protocols::RumorProtocol;

    #[test]
    fn rejects_bad_constructions() {
        assert!(StratifiedPopulation::from_strata(vec![]).is_err());
        assert!(StratifiedPopulation::from_strata(vec![vec![1], vec![0]]).is_err());

        // Channel list length must match the stratum count.
        let population = StratifiedPopulation::single(RumorProtocol::population(10, 0, 1));
        let config = SimulationConfig::new(10);
        assert!(matches!(
            StratifiedSimulation::new(
                RumorProtocol,
                Vec::<NoiselessChannel>::new(),
                population,
                config
            ),
            Err(FlipError::InvalidParameter {
                name: "channels",
                ..
            })
        ));

        // Population stratum count must match the protocol's.
        let population = StratifiedPopulation::from_strata(vec![vec![10], vec![5]]).unwrap();
        let config = SimulationConfig::new(15);
        assert!(matches!(
            StratifiedSimulation::new(RumorProtocol, vec![NoiselessChannel], population, config),
            Err(FlipError::InvalidParameter { name: "strata", .. })
        ));
    }

    #[test]
    fn empty_strata_are_allowed_and_stay_empty() {
        let population = StratifiedPopulation::from_strata(vec![vec![0, 0, 100]]).unwrap();
        assert_eq!(population.n(), 100);
        let config = SimulationConfig::new(100).with_seed(9);
        let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
        let mut sim =
            StratifiedSimulation::new(RumorProtocol, vec![channel], population, config).unwrap();
        sim.run(5);
        assert_eq!(sim.population().n(), 100);
        assert_eq!(sim.census().active(), 100);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let population = StratifiedPopulation::single(RumorProtocol::population(5_000, 5, 5));
            let config = SimulationConfig::new(5_000).with_seed(seed);
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim =
                StratifiedSimulation::new(RumorProtocol, vec![channel], population, config)
                    .unwrap();
            (0..40)
                .map(|_| {
                    let s = sim.step();
                    (s.census_active, s.metrics.messages_sent)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(41), run(41));
        assert_ne!(run(41), run(42));
    }
}
