//! The binary opinion alphabet used by every message in the Flip model.

use std::fmt;
use std::ops::Not;

use rand::Rng;

use crate::rng::SimRng;

/// One of the two abstract, symmetric opinions an agent may hold or transmit.
///
/// The paper treats the two opinions as interchangeable symbols: a protocol may
/// compare opinions for equality and transmit them, but no decision (other than
/// *which* bit to transmit) may depend on the concrete value.  See
/// [`Opinion::flipped`] for the effect of channel noise.
///
/// # Example
///
/// ```
/// use flip_model::Opinion;
///
/// let b = Opinion::One;
/// assert_eq!(b.flipped(), Opinion::Zero);
/// assert_eq!(!b, Opinion::Zero);
/// assert_eq!(Opinion::from(true), Opinion::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opinion {
    /// The opinion encoded by the bit `0`.
    Zero,
    /// The opinion encoded by the bit `1`.
    One,
}

impl Opinion {
    /// Both opinions, in bit order.
    pub const ALL: [Opinion; 2] = [Opinion::Zero, Opinion::One];

    /// Returns the opposite opinion (the result of a channel bit flip).
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Opinion::Zero => Opinion::One,
            Opinion::One => Opinion::Zero,
        }
    }

    /// Encodes the opinion as a bit (`0` or `1`).
    #[must_use]
    pub fn as_bit(self) -> u8 {
        match self {
            Opinion::Zero => 0,
            Opinion::One => 1,
        }
    }

    /// Decodes an opinion from a bit; any non-zero value maps to [`Opinion::One`].
    #[must_use]
    pub fn from_bit(bit: u8) -> Self {
        if bit == 0 {
            Opinion::Zero
        } else {
            Opinion::One
        }
    }

    /// Index of the opinion (`0` or `1`), convenient for array-indexed tallies.
    #[must_use]
    pub fn index(self) -> usize {
        self.as_bit() as usize
    }

    /// Draws an opinion uniformly at random (a fair coin).
    #[must_use]
    pub fn random(rng: &mut SimRng) -> Self {
        if rng.gen::<bool>() {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }
}

impl Not for Opinion {
    type Output = Opinion;

    fn not(self) -> Self::Output {
        self.flipped()
    }
}

impl From<bool> for Opinion {
    fn from(value: bool) -> Self {
        if value {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }
}

impl From<Opinion> for bool {
    fn from(value: Opinion) -> Self {
        value == Opinion::One
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_an_involution() {
        for op in Opinion::ALL {
            assert_eq!(op.flipped().flipped(), op);
            assert_ne!(op.flipped(), op);
        }
    }

    #[test]
    fn not_operator_matches_flipped() {
        assert_eq!(!Opinion::Zero, Opinion::One);
        assert_eq!(!Opinion::One, Opinion::Zero);
    }

    #[test]
    fn bit_round_trip() {
        for op in Opinion::ALL {
            assert_eq!(Opinion::from_bit(op.as_bit()), op);
        }
        assert_eq!(Opinion::from_bit(7), Opinion::One);
    }

    #[test]
    fn bool_conversions_round_trip() {
        for op in Opinion::ALL {
            assert_eq!(Opinion::from(bool::from(op)), op);
        }
    }

    #[test]
    fn index_matches_bit() {
        assert_eq!(Opinion::Zero.index(), 0);
        assert_eq!(Opinion::One.index(), 1);
    }

    #[test]
    fn display_shows_bit() {
        assert_eq!(Opinion::Zero.to_string(), "0");
        assert_eq!(Opinion::One.to_string(), "1");
    }

    #[test]
    fn random_produces_both_values() {
        let mut rng = SimRng::from_seed(3);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[Opinion::random(&mut rng).index()] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
