//! The hybrid engine: a tracked subpopulation simulated exactly, against a
//! dense bulk.
//!
//! The dense/stratified engines reach `n ≥ 10⁶` by replacing per-message
//! channel noise with its mean crossover and per-agent state with counts.
//! That is the right trade for the bulk, but some questions are about
//! *specific agents*: the adversary's targets, a panel of tracked agents
//! whose exact per-message noise matters (e.g. an
//! [`AdversarialCapChannel`](crate::AdversarialCapChannel) whose per-message
//! crossover draws are part of the model), or any protocol whose per-agent
//! implementation exists but whose dense form does not.
//!
//! [`HybridSimulation`] splits the population: `k` **tracked** agents run
//! the per-agent [`Agent`] contract — every send, reception and channel
//! corruption is sampled individually, exactly as the reference engine would
//! — while the remaining `n − k` agents form a dense
//! [`StratifiedPopulation`] bulk advanced with `O(#strata × #states)`
//! binomial draws.  Each round the two sides exchange aggregates through one
//! shared message pool: tracked sends and bulk sends are pooled, every agent
//! (tracked or bulk) receives against the same occupancy marginal, and a
//! tracked agent's accepted message is drawn from the pool's global symbol
//! mix before being corrupted by the *real* channel.  A round therefore
//! costs `O(k + #strata × #states)` — constant in `n` for fixed `k`.
//!
//! # Exactness
//!
//! The bulk inherits the dense engine's contract (exact aggregate sampling;
//! independent reception at the occupancy marginal as the one
//! approximation).  Tracked agents additionally get *exact per-message
//! channel noise* — [`Channel::transmit`] per accepted message rather than
//! the mean crossover — so channels whose per-message law is not a fixed
//! Bernoulli (adversarial caps) keep their exact semantics on the tracked
//! set.  What the split ignores is the `O(k/n)` correlation between the
//! tracked agents' sends and their own receptions (a sender never receives
//! its own message), the same order as the occupancy approximation itself.
//!
//! # Example
//!
//! ```
//! use flip_model::{
//!     AdversarialCapChannel, HybridSimulation, RumorAgent, RumorProtocol, SimulationConfig,
//!     StratifiedPopulation,
//! };
//!
//! # fn main() -> Result<(), flip_model::FlipError> {
//! // A million-agent rumor run where 32 tracked agents experience exact
//! // per-message adversarial noise.
//! let tracked = RumorAgent::population(32, 0, 32);
//! let bulk = StratifiedPopulation::single(RumorProtocol::population(999_968, 0, 968));
//! let channel = AdversarialCapChannel::new(0.1, 0.3)?;
//! let config = SimulationConfig::new(1_000_000).with_seed(7);
//! let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config)?;
//! sim.run(60);
//! assert!(sim.census().active() > 990_000);
//! # Ok(())
//! # }
//! ```

use crate::agent::{Agent, Round};
use crate::channel::Channel;
use crate::config::SimulationConfig;
use crate::engine::RoundSummary;
use crate::error::FlipError;
use crate::faults::{FaultPlan, FaultRole};
use crate::metrics::{Metrics, RoundMetrics};
use crate::opinion::Opinion;
use crate::population::Census;
use crate::rng::SimRng;
use crate::stratified::{binomial, validate_and_pad, StratifiedPopulation, StratifiedProtocol};
use crate::trace::TraceRecorder;
use telemetry::{Event, Phase, Recorder, Telemetry};

/// A synchronous Flip-model simulation over `k` exactly-simulated tracked
/// agents plus a dense bulk, exchanging aggregate send counts and sampled
/// deliveries through one shared pool each round.
///
/// Selected by `--backend hybrid:k` in experiment binaries; see the module
/// docs for the exactness contract.
#[derive(Debug)]
pub struct HybridSimulation<A, P, C> {
    tracked: Vec<A>,
    protocol: P,
    channel: C,
    bulk: StratifiedPopulation,
    next_counts: Vec<Vec<u64>>,
    rng: SimRng,
    round: Round,
    metrics: Metrics,
    reference: Option<Opinion>,
    n: u64,
    /// Fault roles over the tracked prefix — the hybrid engine carries the
    /// faulty agents on its exactly-simulated side, against an honest bulk.
    faults: Option<FaultPlan>,
    /// Activation times and round snapshots for the *tracked* prefix: agent
    /// index `i` in the trace is tracked agent `i`; the anonymous bulk has no
    /// per-agent identity to trace.
    trace: TraceRecorder,
    telemetry: Telemetry,
}

impl<A: Agent, P: StratifiedProtocol, C: Channel> HybridSimulation<A, P, C> {
    /// Creates a hybrid simulation from a tracked subpopulation, a bulk
    /// protocol/population pair, and one channel (used per-message for the
    /// tracked agents and via its mean crossover for the bulk).
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if the tracked set is empty
    /// or the configured population size disagrees with
    /// `tracked.len() + bulk.n()`, [`FlipError::PopulationTooSmall`] if the
    /// two sides sum to fewer than two agents, and the stratified engine's
    /// validation errors for bulk/protocol mismatches.
    pub fn new(
        tracked: Vec<A>,
        protocol: P,
        channel: C,
        bulk: StratifiedPopulation,
        config: SimulationConfig,
    ) -> Result<Self, FlipError> {
        if tracked.is_empty() {
            return Err(FlipError::InvalidParameter {
                name: "tracked",
                message: "the hybrid backend needs a tracked subpopulation of at least \
                          one agent (select it with `--backend hybrid:k`, k >= 1)"
                    .to_string(),
            });
        }
        let n = tracked.len() as u64 + bulk.n();
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n: n as usize });
        }
        if config.population() as u64 != n {
            return Err(FlipError::InvalidParameter {
                name: "population",
                message: format!(
                    "config says {} agents but tracked + bulk sum to {} + {} = {n}",
                    config.population(),
                    tracked.len(),
                    bulk.n()
                ),
            });
        }
        // Faulty roles live on the tracked side: the dense bulk is always
        // honest (its aggregate updates have no per-agent identity to
        // corrupt), so the whole faulty population must fit in `k`.
        let faults = match config.faults() {
            None => None,
            Some(spec) => {
                let faulty = (spec.fraction * n as f64).round() as u64;
                if faulty > tracked.len() as u64 {
                    return Err(FlipError::InvalidParameter {
                        name: "faults",
                        message: format!(
                            "fault fraction {} of n = {n} makes {faulty} agents faulty, \
                             but the hybrid backend carries faults only on its tracked \
                             subpopulation of {}; raise `--backend hybrid:k` to k >= {faulty}",
                            spec.fraction,
                            tracked.len(),
                        ),
                    });
                }
                Some(FaultPlan::leading(&spec, faulty as usize, tracked.len()))
            }
        };
        let mut bulk = bulk;
        validate_and_pad(&protocol, &mut bulk)?;
        let next_counts = bulk
            .strata()
            .iter()
            .map(|stratum| vec![0; stratum.counts().len()])
            .collect();
        let trace = TraceRecorder::new(tracked.len(), config.trace_options(), config.reference());
        Ok(Self {
            tracked,
            protocol,
            channel,
            bulk,
            next_counts,
            rng: SimRng::from_seed(config.seed()),
            round: 0,
            metrics: Metrics::new(),
            reference: config.reference(),
            n,
            faults,
            trace,
            telemetry: Telemetry::off(),
        })
    }

    /// Switches phase timing and event counting on for subsequent rounds.
    ///
    /// Timing reads the monotonic clock only — never the simulation RNG — so
    /// an instrumented run's deliveries, metrics and traces are bit-identical
    /// to an uninstrumented one.
    pub fn enable_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
    }

    /// The accumulated telemetry, when enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Recorder> {
        self.telemetry.recorder()
    }

    /// Takes the accumulated telemetry, leaving telemetry disabled.
    pub fn take_telemetry(&mut self) -> Option<Recorder> {
        self.telemetry.take()
    }

    /// Executes one synchronous round and returns its summary.
    pub fn step(&mut self) -> RoundSummary {
        let round = self.round;
        let n = self.n;
        let strata = self.bulk.strata().len();

        // Phase 1: sends — tracked agents individually, bulk in aggregate,
        // all into one shared pool.
        let span = self.telemetry.begin();
        let mut sent_by_symbol = [0u64; 2];
        let mut forced_sends = 0u64;
        match &self.faults {
            None => {
                for agent in &mut self.tracked {
                    if let Some(symbol) = agent.send(round, &mut self.rng) {
                        sent_by_symbol[symbol.index()] += 1;
                    }
                }
            }
            Some(plan) => {
                // Same role overrides as the per-agent engine: Byzantine
                // roles inject, crashed agents fall silent, adaptive-flip
                // agents negate their own protocol's send.
                for (idx, agent) in self.tracked.iter_mut().enumerate() {
                    let symbol = match plan.forced_send(idx, round) {
                        Some(forced) => {
                            forced_sends += 1;
                            forced
                        }
                        None => {
                            let sent = agent.send(round, &mut self.rng);
                            if plan.role(idx) == FaultRole::ByzantineAdaptiveFlip {
                                sent.map(Opinion::flipped)
                            } else {
                                sent
                            }
                        }
                    };
                    if let Some(symbol) = symbol {
                        sent_by_symbol[symbol.index()] += 1;
                    }
                }
            }
        }
        for s in 0..strata {
            for state in 0..self.bulk.strata()[s].counts.len() {
                let count = self.bulk.strata()[s].counts[state];
                if count == 0 {
                    continue;
                }
                if let Some((symbol, probability)) = self.protocol.send(s, state, round) {
                    sent_by_symbol[symbol.index()] += binomial(&mut self.rng, count, probability);
                }
            }
        }
        let sent = sent_by_symbol[0] + sent_by_symbol[1];
        self.telemetry.end(Phase::ProtocolStep, span);
        self.telemetry.add(Event::FaultForcedSends, forced_sends);

        // Phase 2: reception against the shared pool.
        let span = self.telemetry.begin();
        for next in &mut self.next_counts {
            next.fill(0);
        }
        let mut accepted = 0u64;
        let mut flips = 0u64;
        let mut suppressed = 0u64;
        let mut tracked_corrections = 0u64;
        let record_activations = self.trace.options().record_activations;
        if sent == 0 {
            for s in 0..strata {
                for state in 0..self.bulk.strata()[s].counts.len() {
                    let count = self.bulk.strata()[s].counts[state];
                    if count > 0 {
                        self.next_counts[s][self.protocol.on_round_end(s, state, round)] += count;
                    }
                }
            }
        } else {
            let p_receive = 1.0 - (1.0 - 1.0 / (n as f64 - 1.0)).powf(sent as f64);
            let fraction_one = sent_by_symbol[1] as f64 / sent as f64;

            // Tracked deliveries: sample whether each agent's mailbox is
            // non-empty, draw the accepted symbol from the pool's global
            // mix, then corrupt it through the *real* channel — exact
            // per-message noise, not the mean crossover.
            for (idx, agent) in self.tracked.iter_mut().enumerate() {
                if !self.rng.chance(p_receive) {
                    continue;
                }
                let symbol = if self.rng.chance(fraction_one) {
                    Opinion::One
                } else {
                    Opinion::Zero
                };
                let delivered = self.channel.transmit(symbol, &mut self.rng);
                tracked_corrections += 1;
                if delivered != symbol {
                    flips += 1;
                }
                accepted += 1;
                // A deaf role's message dies at the recipient: its mailbox,
                // symbol and corruption draws are all consumed exactly as
                // for an honest agent (mirroring the per-agent engine), so
                // the rest of the round sees an unchanged stream.
                let deaf = self
                    .faults
                    .as_ref()
                    .is_some_and(|plan| !plan.role(idx).accepts_delivery(round));
                if deaf {
                    suppressed += 1;
                    continue;
                }
                if record_activations {
                    self.trace.on_delivery(idx, round);
                }
                let _ = agent.deliver(round, delivered, &mut self.rng);
            }

            // Bulk deliveries: the stratified engine's aggregate pass.
            let crossover = self.channel.mean_crossover();
            let hear_one = fraction_one * (1.0 - crossover) + (1.0 - fraction_one) * crossover;
            for s in 0..strata {
                let mut stratum_accepted = 0u64;
                let mut heard_ones = 0u64;
                for state in 0..self.bulk.strata()[s].counts.len() {
                    let count = self.bulk.strata()[s].counts[state];
                    if count == 0 {
                        continue;
                    }
                    let receivers = binomial(&mut self.rng, count, p_receive);
                    let hear_ones = binomial(&mut self.rng, receivers, hear_one);
                    let hear_zeros = receivers - hear_ones;
                    stratum_accepted += receivers;
                    heard_ones += hear_ones;
                    let silent_state = self.protocol.on_round_end(s, state, round);
                    self.next_counts[s][silent_state] += count - receivers;
                    let one_state = self.protocol.on_round_end(
                        s,
                        self.protocol.on_receive(s, state, Opinion::One, round),
                        round,
                    );
                    self.next_counts[s][one_state] += hear_ones;
                    let zero_state = self.protocol.on_round_end(
                        s,
                        self.protocol.on_receive(s, state, Opinion::Zero, round),
                        round,
                    );
                    self.next_counts[s][zero_state] += hear_zeros;
                }
                let flip_given_one = if hear_one > 0.0 {
                    ((1.0 - fraction_one) * crossover / hear_one).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let flip_given_zero = if hear_one < 1.0 {
                    (fraction_one * crossover / (1.0 - hear_one)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                flips += binomial(&mut self.rng, heard_ones, flip_given_one)
                    + binomial(
                        &mut self.rng,
                        stratum_accepted - heard_ones,
                        flip_given_zero,
                    );
                accepted += stratum_accepted;
            }
        }
        self.telemetry.end(Phase::NoiseMerge, span);
        self.telemetry
            .add(Event::HybridTrackedCorrections, tracked_corrections);
        self.telemetry
            .add(Event::FaultSuppressedDeliveries, suppressed);

        let span = self.telemetry.begin();
        for (stratum, next) in self.bulk.strata_mut().iter_mut().zip(&mut self.next_counts) {
            std::mem::swap(&mut stratum.counts, next);
        }
        self.telemetry.end(Phase::CensusApply, span);
        if A::USES_END_ROUND {
            let span = self.telemetry.begin();
            match &self.faults {
                None => {
                    for agent in &mut self.tracked {
                        let _ = agent.end_round(round, &mut self.rng);
                    }
                }
                Some(plan) => {
                    for (idx, agent) in self.tracked.iter_mut().enumerate() {
                        if plan.role(idx).runs_protocol(round) {
                            let _ = agent.end_round(round, &mut self.rng);
                        }
                    }
                }
            }
            self.telemetry.end(Phase::ProtocolStep, span);
        }

        let accepted_capped = accepted.min(sent);
        let round_metrics = RoundMetrics {
            round,
            messages_sent: sent,
            messages_accepted: accepted_capped,
            messages_collided: sent - accepted_capped,
            bits_flipped: flips.min(accepted_capped),
            forced_sends,
            suppressed_deliveries: suppressed,
            crashed_agents: self
                .faults
                .as_ref()
                .map_or(0, |plan| plan.crashed_count(round) as u64),
        };
        self.metrics.absorb_round(&round_metrics);
        self.round += 1;

        let census = self.census();
        self.trace.on_round_end(round, &census, sent);
        RoundSummary {
            metrics: round_metrics,
            census_active: census.active(),
            census_correct: self.reference.map(|r| census.holding(r)),
        }
    }

    /// Executes `rounds` rounds and returns the accumulated metrics.
    pub fn run(&mut self, rounds: u64) -> &Metrics {
        for _ in 0..rounds {
            self.step();
        }
        &self.metrics
    }

    /// Executes rounds until `predicate` returns `true` (checked after every
    /// round) or `max_rounds` rounds have run, whichever comes first.
    ///
    /// Returns the number of rounds executed by this call.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut predicate: F) -> u64
    where
        F: FnMut(&Self) -> bool,
    {
        let mut executed = 0;
        while executed < max_rounds {
            self.step();
            executed += 1;
            if predicate(self) {
                break;
            }
        }
        executed
    }

    /// A census over both sides of the split.
    #[must_use]
    pub fn census(&self) -> Census {
        let mut holding = [0usize; 2];
        for agent in &self.tracked {
            if let Some(op) = agent.opinion() {
                holding[op.index()] += 1;
            }
        }
        let bulk = self.bulk.census(&self.protocol);
        Census::from_counts(
            holding[0] + bulk.holding(Opinion::Zero),
            holding[1] + bulk.holding(Opinion::One),
            self.n as usize,
        )
    }

    /// The tracked agents, in their construction order.
    #[must_use]
    pub fn tracked(&self) -> &[A] {
        &self.tracked
    }

    /// The dense bulk's current per-stratum counts.
    #[must_use]
    pub fn bulk(&self) -> &StratifiedPopulation {
        &self.bulk
    }

    /// The accumulated metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The next round index to be executed (equals rounds executed so far).
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The bulk protocol in use.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The channel in use.
    #[must_use]
    pub fn channel(&self) -> &C {
        &self.channel
    }

    /// The fault plan over the tracked prefix, when faults are configured.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The recorded trace over the tracked prefix (activation index `i` is
    /// tracked agent `i`; snapshots cover the whole population).
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Consumes the simulation, returning the tracked agents, the bulk
    /// population, and the accumulated metrics.
    #[must_use]
    pub fn into_parts(self) -> (Vec<A>, StratifiedPopulation, Metrics) {
        (self.tracked, self.bulk, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BinarySymmetricChannel, NoiselessChannel};
    use crate::dense_protocols::{RumorAgent, RumorProtocol};

    fn split_rumor(
        n: u64,
        tracked: usize,
        informed: u64,
    ) -> (Vec<RumorAgent>, StratifiedPopulation) {
        // Tracked agents take the first `tracked` slots of the canonical
        // per-agent layout (informed ones first here, for simplicity).
        let tracked_ones = informed.min(tracked as u64);
        let agents = RumorAgent::population(tracked, 0, tracked_ones as usize);
        let bulk = StratifiedPopulation::single(RumorProtocol::population(
            n - tracked as u64,
            0,
            informed - tracked_ones,
        ));
        (agents, bulk)
    }

    #[test]
    fn rejects_bad_constructions() {
        let (agents, bulk) = split_rumor(100, 4, 10);
        let config = SimulationConfig::new(99);
        assert!(matches!(
            HybridSimulation::new(agents, RumorProtocol, NoiselessChannel, bulk, config),
            Err(FlipError::InvalidParameter {
                name: "population",
                ..
            })
        ));

        let bulk = StratifiedPopulation::single(RumorProtocol::population(10, 0, 0));
        let config = SimulationConfig::new(10);
        assert!(matches!(
            HybridSimulation::new(
                Vec::<RumorAgent>::new(),
                RumorProtocol,
                NoiselessChannel,
                bulk,
                config
            ),
            Err(FlipError::InvalidParameter {
                name: "tracked",
                ..
            })
        ));
    }

    #[test]
    fn rumor_spreads_through_the_split() {
        let (agents, bulk) = split_rumor(50_000, 16, 16);
        let config = SimulationConfig::new(50_000)
            .with_seed(3)
            .with_reference(Opinion::One);
        let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
        let mut sim = HybridSimulation::new(agents, RumorProtocol, channel, bulk, config).unwrap();
        let executed = sim.run_until(1_000, |s| s.census().active() == 50_000);
        assert!(executed < 100, "rumor should spread in O(log n) rounds");
        assert!(sim.census().holding(Opinion::One) > 0);
        assert!(sim.census().holding(Opinion::Zero) > 0);
        let m = sim.metrics();
        assert_eq!(m.messages_sent, m.messages_accepted + m.messages_collided);
    }

    #[test]
    fn fault_fractions_larger_than_the_tracked_set_fail_loudly() {
        let (agents, bulk) = split_rumor(1_000, 16, 16);
        let config = SimulationConfig::new(1_000)
            .with_seed(1)
            .with_faults("byz:0.1".parse().unwrap()); // 100 faulty > 16 tracked
        let err = HybridSimulation::new(agents, RumorProtocol, NoiselessChannel, bulk, config)
            .unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("faults"),
            "must name the parameter: {message}"
        );
        assert!(
            message.contains("hybrid:k") && message.contains("k >= 100"),
            "must tell the caller how to fix it: {message}"
        );
    }

    #[test]
    fn byzantine_tracked_agents_poison_the_honest_bulk() {
        // 100 tracked agents, all Byzantine (round(0.1 * 1000) = 100 = k),
        // flood Zero against an honest bulk: the bulk must pick up Zeros it
        // could never produce honestly.  Only 50 tracked agents start
        // informed, so the other 50 are deaf *and* uninformed.
        let (agents, bulk) = split_rumor(1_000, 100, 50);
        let config = SimulationConfig::new(1_000)
            .with_seed(5)
            .with_faults("byz:0.1".parse().unwrap());
        let mut sim =
            HybridSimulation::new(agents, RumorProtocol, NoiselessChannel, bulk, config).unwrap();
        let plan = sim.fault_plan().expect("faults configured");
        assert_eq!(plan.faulty_count(), 100);
        assert_eq!(plan.len(), 100, "roles cover exactly the tracked prefix");
        sim.run(40);
        assert!(
            sim.census().holding(Opinion::Zero) > 0,
            "Byzantine zeros must reach the bulk"
        );
        // The Byzantine tracked agents never deliver: those that started
        // uninformed stay inactive forever.
        let deaf_uninformed = sim
            .tracked()
            .iter()
            .filter(|agent| agent.opinion().is_none())
            .count();
        assert!(deaf_uninformed > 0, "deaf tracked agents must stay frozen");
    }

    #[test]
    fn tracked_path_meters_the_same_flip_budget_as_the_per_agent_path() {
        // Both engines spend the budget through the one `Channel::transmit`
        // entry point, so total flips never exceed it on either backend.
        use crate::channel::AdversarialCapChannel;
        use crate::engine::Simulation;

        let budget = 5u64;

        let channel = AdversarialCapChannel::new(0.5, 0.5)
            .unwrap()
            .with_flip_budget(budget);
        let agents = RumorAgent::population(500, 0, 250);
        let config = SimulationConfig::new(500).with_seed(7);
        let mut per_agent = Simulation::new(agents, channel, config).unwrap();
        per_agent.run(30);
        assert!(per_agent.metrics().bits_flipped <= budget);
        assert_eq!(
            per_agent.channel().flip_budget_remaining(),
            Some(budget - per_agent.metrics().bits_flipped)
        );
        assert!(per_agent.metrics().bits_flipped > 0, "budget partly spent");

        // Hybrid: all noise lands on the tracked path (a noiseless-mean bulk
        // would divide by zero here, so keep the bulk empty of senders by
        // tracking everyone except a token silent bulk of waiters).
        let channel = AdversarialCapChannel::new(0.5, 0.5)
            .unwrap()
            .with_flip_budget(budget);
        let (tracked, bulk) = split_rumor(500, 100, 100);
        let config = SimulationConfig::new(500).with_seed(7);
        let mut hybrid =
            HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config).unwrap();
        hybrid.run(30);
        let tracked_flips = budget - hybrid.channel().flip_budget_remaining().unwrap();
        assert!(tracked_flips <= budget);
        assert!(
            tracked_flips > 0,
            "tracked deliveries must spend the budget"
        );
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let (agents, bulk) = split_rumor(5_000, 100, 100);
            let config = SimulationConfig::new(5_000)
                .with_seed(seed)
                .with_faults("crash:0.005@10".parse().unwrap());
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim =
                HybridSimulation::new(agents, RumorProtocol, channel, bulk, config).unwrap();
            (0..40)
                .map(|_| {
                    let s = sim.step();
                    (s.census_active, s.metrics.messages_sent)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(33), run(33));
        assert_ne!(run(33), run(34));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let (agents, bulk) = split_rumor(5_000, 8, 8);
            let config = SimulationConfig::new(5_000).with_seed(seed);
            let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
            let mut sim =
                HybridSimulation::new(agents, RumorProtocol, channel, bulk, config).unwrap();
            (0..40)
                .map(|_| {
                    let s = sim.step();
                    (s.census_active, s.metrics.messages_sent)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }
}
