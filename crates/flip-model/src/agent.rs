//! The agent contract that protocols implement.

use std::fmt;

use crate::opinion::Opinion;
use crate::rng::SimRng;

/// A round number (the global, zero-based round counter of the engine).
///
/// Protocols that do not assume a global clock should ignore the value and
/// maintain their own [`LocalClock`](crate::LocalClock).
pub type Round = u64;

/// Identifier of an agent within a population.
///
/// Only the simulation engine ever sees agent identifiers; they are used for
/// routing and tracing.  They are *never* exposed to protocol logic, which
/// keeps the model anonymous as required by the paper.
///
/// # Example
///
/// ```
/// use flip_model::AgentId;
///
/// let id = AgentId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(usize);

impl AgentId {
    /// Wraps a population index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the underlying population index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

impl From<usize> for AgentId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// A per-agent protocol state machine driven by the [`Simulation`](crate::Simulation) engine.
///
/// In every round the engine:
///
/// 1. asks every agent what to [`send`](Agent::send) (or whether to *wait*),
/// 2. routes each sent message to a uniformly random other agent, keeps one
///    message per recipient (uniformly among those that arrived), corrupts the
///    bit through the channel, and calls [`deliver`](Agent::deliver) on the
///    recipient,
/// 3. calls [`end_round`](Agent::end_round) on every agent.
///
/// Agents never learn who they talked to.  The `round` argument is the global
/// round counter; protocols relying only on local clocks must ignore it.
pub trait Agent {
    /// Decides what to transmit this round; `None` means stay silent ("breathe").
    fn send(&mut self, round: Round, rng: &mut SimRng) -> Option<Opinion>;

    /// Handles a message delivered to this agent (already corrupted by the channel).
    fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng);

    /// Hook invoked after all deliveries of the round; the default does nothing.
    ///
    /// Phase-based protocols use this to make end-of-phase decisions (choosing
    /// an initial opinion, taking the majority of samples, ...).
    fn end_round(&mut self, round: Round, rng: &mut SimRng) {
        let _ = (round, rng);
    }

    /// The opinion the agent currently holds, if it has adopted one.
    fn opinion(&self) -> Option<Opinion>;

    /// Whether the agent has been activated (holds an opinion or has heard a message).
    ///
    /// The default considers an agent active exactly when it holds an opinion.
    fn is_active(&self) -> bool {
        self.opinion().is_some()
    }

    /// Whether the agent has irrevocably finished executing its protocol.
    ///
    /// The engine never forces termination; this is informational (used by
    /// [`Simulation::run_until`](crate::Simulation::run_until) predicates and
    /// experiment harnesses).  The default is `false`.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Silent;

    impl Agent for Silent {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            None
        }
        fn deliver(&mut self, _round: Round, _message: Opinion, _rng: &mut SimRng) {}
        fn opinion(&self) -> Option<Opinion> {
            None
        }
    }

    #[test]
    fn default_hooks_are_benign() {
        let mut agent = Silent;
        let mut rng = SimRng::from_seed(0);
        agent.end_round(0, &mut rng);
        assert!(!agent.is_active());
        assert!(!agent.is_done());
    }

    #[test]
    fn agent_id_round_trips() {
        let id = AgentId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(id, AgentId::new(17));
        assert_eq!(id.to_string(), "agent#17");
    }

    #[test]
    fn agent_id_ordering_follows_index() {
        assert!(AgentId::new(1) < AgentId::new(2));
    }
}
