//! The agent contract that protocols implement.

use std::fmt;

use crate::opinion::Opinion;
use crate::rng::SimRng;

/// A round number (the global, zero-based round counter of the engine).
///
/// Protocols that do not assume a global clock should ignore the value and
/// maintain their own [`LocalClock`](crate::LocalClock).
pub type Round = u64;

/// Identifier of an agent within a population.
///
/// Only the simulation engine ever sees agent identifiers; they are used for
/// routing and tracing.  They are *never* exposed to protocol logic, which
/// keeps the model anonymous as required by the paper.
///
/// Stored as 32 bits so a routed [`Delivery`](crate::Delivery) packs into
/// 12 bytes — population indices are bounded well below `u32::MAX` by the
/// scheduler's 31-bit routing-index range, and the round loop streams
/// millions of deliveries per second through the cache hierarchy.
///
/// # Example
///
/// ```
/// use flip_model::AgentId;
///
/// let id = AgentId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(u32);

impl AgentId {
    /// Wraps a population index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the 32-bit identifier space (the
    /// engine's population bound rejects such sizes long before any id is
    /// minted).
    #[must_use]
    pub const fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "agent index exceeds u32 range");
        Self(index as u32)
    }

    /// Returns the underlying population index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

impl From<usize> for AgentId {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

/// A report of how one agent callback changed the agent's opinion, so the
/// engine can maintain a running [`Census`](crate::Census) in O(changes)
/// instead of recounting all `n` agents every round.
///
/// `before` and `after` are the opinions [`Agent::opinion`] would have
/// returned immediately before and after the callback ran.  A callback that
/// cannot change the opinion returns [`OpinionDelta::NONE`]; a callback with
/// non-trivial internal state simply captures `self.opinion()` on entry and
/// exit:
///
/// ```ignore
/// fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng) -> OpinionDelta {
///     let before = self.opinion();
///     /* ... mutate state ... */
///     OpinionDelta::between(before, self.opinion())
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use = "the engine needs the delta to keep its census consistent"]
pub struct OpinionDelta {
    /// Opinion held before the callback ran.
    pub before: Option<Opinion>,
    /// Opinion held after the callback ran.
    pub after: Option<Opinion>,
}

impl OpinionDelta {
    /// The delta of a callback that left the opinion untouched.
    pub const NONE: Self = Self {
        before: None,
        after: None,
    };

    /// A delta from explicit before/after opinions.
    pub fn between(before: Option<Opinion>, after: Option<Opinion>) -> Self {
        Self { before, after }
    }

    /// The delta of an undecided agent adopting its first opinion.
    pub fn adopted(opinion: Opinion) -> Self {
        Self {
            before: None,
            after: Some(opinion),
        }
    }

    /// Whether the callback actually changed the opinion.
    #[must_use]
    pub fn is_change(&self) -> bool {
        self.before != self.after
    }
}

/// A per-agent protocol state machine driven by the [`Simulation`](crate::Simulation) engine.
///
/// In every round the engine:
///
/// 1. asks every agent what to [`send`](Agent::send) (or whether to *wait*),
/// 2. routes each sent message to a uniformly random other agent, keeps one
///    message per recipient (uniformly among those that arrived), corrupts the
///    bit through the channel, and calls [`deliver`](Agent::deliver) on the
///    recipient,
/// 3. calls [`end_round`](Agent::end_round) on every agent.
///
/// Agents never learn who they talked to.  The `round` argument is the global
/// round counter; protocols relying only on local clocks must ignore it.
///
/// # Census contract
///
/// [`deliver`](Agent::deliver) and [`end_round`](Agent::end_round) return an
/// [`OpinionDelta`] describing any change of [`opinion`](Agent::opinion) they
/// caused; the engine folds these into a running census instead of recounting
/// the population.  [`send`](Agent::send) takes `&mut self` only for internal
/// bookkeeping — it must **not** change the value `opinion()` reports, since
/// it has no way to report a delta.  (Debug builds of the engine periodically
/// recount the population and assert agreement.)
pub trait Agent {
    /// Whether this agent type has a non-trivial [`end_round`](Agent::end_round).
    ///
    /// Protocols that never act at end of round (most of the simple dynamics:
    /// rumor spreading, voter models, beacons) can set this to `false`, and
    /// the engine statically skips its O(n) end-of-round hook loop.  Leave it
    /// `true` (the default) whenever `end_round` is overridden.
    const USES_END_ROUND: bool = true;

    /// Decides what to transmit this round; `None` means stay silent ("breathe").
    ///
    /// Must not change the opinion reported by [`opinion`](Agent::opinion)
    /// (see the census contract above).
    fn send(&mut self, round: Round, rng: &mut SimRng) -> Option<Opinion>;

    /// Handles a message delivered to this agent (already corrupted by the
    /// channel), reporting any opinion change it caused.
    fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng) -> OpinionDelta;

    /// Hook invoked after all deliveries of the round; the default does
    /// nothing and reports no change.
    ///
    /// Phase-based protocols use this to make end-of-phase decisions (choosing
    /// an initial opinion, taking the majority of samples, ...).
    fn end_round(&mut self, round: Round, rng: &mut SimRng) -> OpinionDelta {
        let _ = (round, rng);
        OpinionDelta::NONE
    }

    /// The opinion the agent currently holds, if it has adopted one.
    fn opinion(&self) -> Option<Opinion>;

    /// Whether the agent has been activated (holds an opinion or has heard a message).
    ///
    /// The default considers an agent active exactly when it holds an opinion.
    fn is_active(&self) -> bool {
        self.opinion().is_some()
    }

    /// Whether the agent has irrevocably finished executing its protocol.
    ///
    /// The engine never forces termination; this is informational (used by
    /// [`Simulation::run_until`](crate::Simulation::run_until) predicates and
    /// experiment harnesses).  The default is `false`.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Silent;

    impl Agent for Silent {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            None
        }
        fn deliver(&mut self, _round: Round, _message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
            OpinionDelta::NONE
        }
        fn opinion(&self) -> Option<Opinion> {
            None
        }
    }

    #[test]
    fn default_hooks_are_benign() {
        let mut agent = Silent;
        let mut rng = SimRng::from_seed(0);
        assert_eq!(agent.end_round(0, &mut rng), OpinionDelta::NONE);
        assert!(!agent.is_active());
        assert!(!agent.is_done());
    }

    #[test]
    fn opinion_delta_reports_changes() {
        use crate::opinion::Opinion;
        assert!(!OpinionDelta::NONE.is_change());
        assert!(OpinionDelta::adopted(Opinion::One).is_change());
        assert!(!OpinionDelta::between(Some(Opinion::One), Some(Opinion::One)).is_change());
        assert!(OpinionDelta::between(Some(Opinion::One), Some(Opinion::Zero)).is_change());
        assert!(OpinionDelta::between(Some(Opinion::One), None).is_change());
    }

    #[test]
    fn agent_id_round_trips() {
        let id = AgentId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(id, AgentId::new(17));
        assert_eq!(id.to_string(), "agent#17");
    }

    #[test]
    fn agent_id_ordering_follows_index() {
        assert!(AgentId::new(1) < AgentId::new(2));
    }
}
