//! Built-in [`DenseProtocol`] state machines.
//!
//! These are the dense counterparts of the simplest per-agent dynamics the
//! workspace uses: rumor spreading ([`RumorProtocol`], the counts-based twin
//! of the "adopt the first bit you hear" agent), the noisy voter update
//! ([`VoterProtocol`]) and phase-wise majority sampling
//! ([`MajoritySamplerProtocol`], the dense analogue of the paper's Stage II
//! boosting).  Protocol crates can define their own machines; these three
//! cover the scaling and consensus experiments and the equivalence tests.

use crate::agent::{Agent, OpinionDelta, Round};
use crate::dense::{DensePopulation, DenseProtocol};
use crate::opinion::Opinion;
use crate::rng::SimRng;
use crate::stratified::{StratifiedPopulation, StratifiedProtocol};

/// Dense rumor spreading: opinionated agents push their opinion every round,
/// undecided agents stay silent and adopt the first (possibly corrupted) bit
/// they accept, and opinionated agents never change their mind.
///
/// This is exactly the aggregate behaviour of the per-agent `Adopter` used
/// throughout the engine tests, which makes it the reference workload for the
/// dense-vs-agents equivalence suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RumorProtocol;

impl RumorProtocol {
    const UNDECIDED: usize = 0;
    const HOLDING_ZERO: usize = 1;
    const HOLDING_ONE: usize = 2;

    /// Builds the state counts for `n` agents of which `zeros` hold
    /// [`Opinion::Zero`], `ones` hold [`Opinion::One`] and the rest are
    /// undecided.
    ///
    /// # Panics
    ///
    /// Panics if `zeros + ones > n` or the population has fewer than two
    /// agents.
    #[must_use]
    pub fn population(n: u64, zeros: u64, ones: u64) -> DensePopulation {
        assert!(zeros + ones <= n, "more opinions than agents");
        DensePopulation::from_counts(vec![n - zeros - ones, zeros, ones])
            .expect("population has at least two agents")
    }
}

impl DenseProtocol for RumorProtocol {
    fn state_count(&self) -> usize {
        3
    }

    fn send(&self, state: usize, _round: Round) -> Option<(Opinion, f64)> {
        match state {
            Self::HOLDING_ZERO => Some((Opinion::Zero, 1.0)),
            Self::HOLDING_ONE => Some((Opinion::One, 1.0)),
            _ => None,
        }
    }

    fn on_receive(&self, state: usize, heard: Opinion, _round: Round) -> usize {
        if state == Self::UNDECIDED {
            Self::HOLDING_ZERO + heard.index()
        } else {
            state
        }
    }

    fn opinion_of(&self, state: usize) -> Option<Opinion> {
        match state {
            Self::HOLDING_ZERO => Some(Opinion::Zero),
            Self::HOLDING_ONE => Some(Opinion::One),
            _ => None,
        }
    }
}

/// The per-agent twin of [`RumorProtocol`], for running the same rumor
/// dynamics on the reference [`Simulation`](crate::Simulation) engine: silent
/// until it hears a bit, then adopts it and pushes it forever.
///
/// Keeping the twin next to its dense counterpart guarantees the
/// dense-vs-agents equivalence suite and the backend-switching experiments
/// exercise one shared definition of the dynamics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RumorAgent {
    opinion: Option<Opinion>,
}

impl RumorAgent {
    /// An agent already holding `opinion` (`None` for an undecided agent).
    #[must_use]
    pub fn new(opinion: Option<Opinion>) -> Self {
        Self { opinion }
    }

    /// Builds the per-agent population matching
    /// [`RumorProtocol::population`]: `zeros` agents holding
    /// [`Opinion::Zero`], then `ones` holding [`Opinion::One`], then
    /// undecided agents up to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `zeros + ones > n`.
    #[must_use]
    pub fn population(n: usize, zeros: usize, ones: usize) -> Vec<Self> {
        assert!(zeros + ones <= n, "more opinions than agents");
        (0..n)
            .map(|i| {
                Self::new(if i < zeros {
                    Some(Opinion::Zero)
                } else if i < zeros + ones {
                    Some(Opinion::One)
                } else {
                    None
                })
            })
            .collect()
    }
}

impl Agent for RumorAgent {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        self.opinion
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        if self.opinion.is_none() {
            self.opinion = Some(message);
            OpinionDelta::adopted(message)
        } else {
            OpinionDelta::NONE
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        self.opinion
    }
}

/// The dense noisy voter model: every agent pushes its current opinion every
/// round and adopts whatever (possibly corrupted) bit it accepts.
///
/// All agents are always opinionated; state `s` holds the opinion with bit
/// value `s`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoterProtocol;

impl DenseProtocol for VoterProtocol {
    fn state_count(&self) -> usize {
        2
    }

    fn send(&self, state: usize, _round: Round) -> Option<(Opinion, f64)> {
        Some((Opinion::from_bit(state as u8), 1.0))
    }

    fn on_receive(&self, _state: usize, heard: Opinion, _round: Round) -> usize {
        heard.index()
    }

    fn opinion_of(&self, state: usize) -> Option<Opinion> {
        Some(Opinion::from_bit(state as u8))
    }
}

/// Dense phase-wise majority sampling — the aggregate analogue of the paper's
/// Stage II ("speak") boosting.
///
/// Time is divided into phases of `phase_len` rounds.  Within a phase every
/// agent pushes its current opinion each round while tallying the bits it
/// accepts; at the end of the phase it adopts the majority of its tally
/// (keeping its opinion on a tie or an empty tally) and resets.  Each phase
/// multiplies a small population bias by `Θ(ε·√phase_len)`, which is the
/// boost of Lemma 2.11 in aggregate form.
///
/// The state encodes `(opinion, ones heard, total heard)` with both tallies
/// capped at `phase_len`, so the machine has `(L+1)(L+2)` states for
/// `L = phase_len` — constant in `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajoritySamplerProtocol {
    phase_len: u64,
    /// Number of `(ones, total)` tally combinations: (L+1)(L+2)/2.
    tally_states: usize,
}

impl MajoritySamplerProtocol {
    /// Creates a sampler with the given phase length (tallies are capped at
    /// `phase_len`, which is also the number of rounds per phase).
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` is zero.
    #[must_use]
    pub fn new(phase_len: u64) -> Self {
        assert!(phase_len > 0, "phases need at least one round");
        let l = phase_len as usize;
        Self {
            phase_len,
            tally_states: (l + 1) * (l + 2) / 2,
        }
    }

    /// The configured phase length in rounds.
    #[must_use]
    pub fn phase_len(&self) -> u64 {
        self.phase_len
    }

    /// Builds the state counts for a fully opinionated population with
    /// `zeros + ones` agents and empty tallies.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents.
    #[must_use]
    pub fn population(&self, zeros: u64, ones: u64) -> DensePopulation {
        let mut counts = vec![0u64; DenseProtocol::state_count(self)];
        counts[self.encode(Opinion::Zero, 0, 0)] = zeros;
        counts[self.encode(Opinion::One, 0, 0)] = ones;
        DensePopulation::from_counts(counts).expect("population has at least two agents")
    }

    /// Packs `(opinion, ones, total)` into a state index; tallies are stored
    /// triangularly since `ones <= total`.
    fn encode(&self, opinion: Opinion, ones: u64, total: u64) -> usize {
        debug_assert!(ones <= total && total <= self.phase_len);
        let t = total as usize;
        opinion.index() * self.tally_states + t * (t + 1) / 2 + ones as usize
    }

    fn decode(&self, state: usize) -> (Opinion, u64, u64) {
        let opinion = Opinion::from_bit(u8::from(state >= self.tally_states));
        let mut tally = state % self.tally_states;
        let mut total = 0usize;
        while tally > total {
            tally -= total + 1;
            total += 1;
        }
        (opinion, tally as u64, total as u64)
    }

    fn is_phase_end(&self, round: Round) -> bool {
        (round + 1).is_multiple_of(self.phase_len)
    }
}

impl DenseProtocol for MajoritySamplerProtocol {
    fn state_count(&self) -> usize {
        2 * self.tally_states
    }

    fn send(&self, state: usize, _round: Round) -> Option<(Opinion, f64)> {
        let (opinion, _, _) = self.decode(state);
        Some((opinion, 1.0))
    }

    fn on_receive(&self, state: usize, heard: Opinion, _round: Round) -> usize {
        let (opinion, ones, total) = self.decode(state);
        if total >= self.phase_len {
            return state;
        }
        self.encode(opinion, ones + u64::from(heard.as_bit()), total + 1)
    }

    fn on_round_end(&self, state: usize, round: Round) -> usize {
        if !self.is_phase_end(round) {
            return state;
        }
        let (opinion, ones, total) = self.decode(state);
        let next = match (2 * ones).cmp(&total) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => opinion,
        };
        self.encode(next, 0, 0)
    }

    fn opinion_of(&self, state: usize) -> Option<Opinion> {
        let (opinion, _, _) = self.decode(state);
        Some(opinion)
    }
}

/// Stratified rumor spreading infiltrated by **zealots**: stratum 0 runs the
/// honest [`RumorProtocol`] dynamics, stratum 1 is a fixed subpopulation that
/// pushes [`Opinion::Zero`] every round and never listens.
///
/// This is the workspace's canonical *heterogeneous* scenario — two agent
/// classes with different send tables sharing one message pool — and the
/// reason the stratified engine exists: it has no single-stratum dense form,
/// so before strata it only ran on the per-agent engine (capping it near
/// `n ≈ 10⁵`).  [`ZealotAgent`] is its per-agent twin for the equivalence
/// suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZealotRumorProtocol;

impl ZealotRumorProtocol {
    /// Stratum index of the honest rumor-spreading subpopulation.
    pub const HONEST: usize = 0;
    /// Stratum index of the zealot subpopulation.
    pub const ZEALOTS: usize = 1;

    /// Builds the stratified counts for `n` agents total: `zealots` zealots,
    /// and among the `n − zealots` honest agents `zeros`/`ones` opinionated
    /// seeds with the rest undecided.
    ///
    /// # Panics
    ///
    /// Panics if `zeros + ones + zealots > n` or the population has fewer
    /// than two agents.
    #[must_use]
    pub fn population(n: u64, zeros: u64, ones: u64, zealots: u64) -> StratifiedPopulation {
        assert!(zeros + ones + zealots <= n, "more opinions than agents");
        let honest = n - zealots;
        StratifiedPopulation::from_strata(vec![
            vec![honest - zeros - ones, zeros, ones],
            vec![zealots],
        ])
        .expect("population has at least two agents")
    }
}

impl StratifiedProtocol for ZealotRumorProtocol {
    fn stratum_count(&self) -> usize {
        2
    }

    fn state_count(&self, stratum: usize) -> usize {
        if stratum == Self::ZEALOTS {
            1
        } else {
            DenseProtocol::state_count(&RumorProtocol)
        }
    }

    fn send(&self, stratum: usize, state: usize, round: Round) -> Option<(Opinion, f64)> {
        if stratum == Self::ZEALOTS {
            Some((Opinion::Zero, 1.0))
        } else {
            DenseProtocol::send(&RumorProtocol, state, round)
        }
    }

    fn on_receive(&self, stratum: usize, state: usize, heard: Opinion, round: Round) -> usize {
        if stratum == Self::ZEALOTS {
            state
        } else {
            DenseProtocol::on_receive(&RumorProtocol, state, heard, round)
        }
    }

    fn opinion_of(&self, stratum: usize, state: usize) -> Option<Opinion> {
        if stratum == Self::ZEALOTS {
            Some(Opinion::Zero)
        } else {
            DenseProtocol::opinion_of(&RumorProtocol, state)
        }
    }
}

/// The per-agent twin of [`ZealotRumorProtocol`], for running the zealot
/// scenario on the reference [`Simulation`](crate::Simulation) engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZealotAgent {
    /// An honest rumor-spreading agent.
    Honest(RumorAgent),
    /// A zealot: pushes [`Opinion::Zero`] every round, never listens.
    Zealot,
}

impl ZealotAgent {
    /// Builds the per-agent population matching
    /// [`ZealotRumorProtocol::population`]: the honest agents first (in
    /// [`RumorAgent::population`] order), then the zealots.
    ///
    /// # Panics
    ///
    /// Panics if `zeros + ones + zealots > n`.
    #[must_use]
    pub fn population(n: usize, zeros: usize, ones: usize, zealots: usize) -> Vec<Self> {
        assert!(zeros + ones + zealots <= n, "more opinions than agents");
        RumorAgent::population(n - zealots, zeros, ones)
            .into_iter()
            .map(ZealotAgent::Honest)
            .chain((0..zealots).map(|_| ZealotAgent::Zealot))
            .collect()
    }
}

impl Agent for ZealotAgent {
    const USES_END_ROUND: bool = false;

    fn send(&mut self, round: Round, rng: &mut SimRng) -> Option<Opinion> {
        match self {
            ZealotAgent::Honest(agent) => agent.send(round, rng),
            ZealotAgent::Zealot => Some(Opinion::Zero),
        }
    }

    fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng) -> OpinionDelta {
        match self {
            ZealotAgent::Honest(agent) => agent.deliver(round, message, rng),
            ZealotAgent::Zealot => OpinionDelta::NONE,
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        match self {
            ZealotAgent::Honest(agent) => agent.opinion(),
            ZealotAgent::Zealot => Some(Opinion::Zero),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::BinarySymmetricChannel;
    use crate::config::SimulationConfig;
    use crate::dense::DenseSimulation;
    use crate::stratified::StratifiedSimulation;

    #[test]
    fn rumor_population_splits_counts() {
        let p = RumorProtocol::population(100, 10, 20);
        assert_eq!(p.counts(), &[70, 10, 20]);
        assert_eq!(p.census(&RumorProtocol).active(), 30);
    }

    #[test]
    #[should_panic(expected = "more opinions than agents")]
    fn rumor_population_rejects_overfull_seeds() {
        let _ = RumorProtocol::population(10, 6, 6);
    }

    #[test]
    fn voter_states_map_to_opinions() {
        // UFCS throughout: the stratified blanket impl gives every dense
        // protocol a second set of method names differing only in arity.
        let voter = &VoterProtocol;
        assert_eq!(DenseProtocol::opinion_of(voter, 0), Some(Opinion::Zero));
        assert_eq!(DenseProtocol::opinion_of(voter, 1), Some(Opinion::One));
        assert_eq!(DenseProtocol::on_receive(voter, 0, Opinion::One, 0), 1);
        assert_eq!(DenseProtocol::send(voter, 1, 0), Some((Opinion::One, 1.0)));
    }

    #[test]
    fn sampler_encoding_round_trips() {
        let sampler = MajoritySamplerProtocol::new(7);
        for op in Opinion::ALL {
            for total in 0..=7u64 {
                for ones in 0..=total {
                    let state = sampler.encode(op, ones, total);
                    assert!(state < DenseProtocol::state_count(&sampler));
                    assert_eq!(sampler.decode(state), (op, ones, total));
                }
            }
        }
    }

    #[test]
    fn sampler_tallies_and_resets_at_phase_end() {
        let sampler = MajoritySamplerProtocol::new(5);
        let start = sampler.encode(Opinion::Zero, 0, 0);
        // Hear two ones and a zero mid-phase.
        let s = DenseProtocol::on_receive(&sampler, start, Opinion::One, 0);
        let s = DenseProtocol::on_receive(&sampler, s, Opinion::One, 1);
        let s = DenseProtocol::on_receive(&sampler, s, Opinion::Zero, 2);
        assert_eq!(sampler.decode(s), (Opinion::Zero, 2, 3));
        // Mid-phase round ends keep the tally.
        assert_eq!(DenseProtocol::on_round_end(&sampler, s, 2), s);
        // The phase ends after round 4: majority of (2 ones / 3) flips to One.
        let ended = DenseProtocol::on_round_end(&sampler, s, 4);
        assert_eq!(sampler.decode(ended), (Opinion::One, 0, 0));
    }

    #[test]
    fn sampler_keeps_opinion_on_tie_or_silence() {
        let sampler = MajoritySamplerProtocol::new(4);
        let s = sampler.encode(Opinion::One, 1, 2);
        assert_eq!(
            sampler.decode(DenseProtocol::on_round_end(&sampler, s, 3)),
            (Opinion::One, 0, 0)
        );
        let silent = sampler.encode(Opinion::Zero, 0, 0);
        assert_eq!(
            sampler.decode(DenseProtocol::on_round_end(&sampler, silent, 3)),
            (Opinion::Zero, 0, 0)
        );
    }

    #[test]
    fn sampler_caps_tally_at_phase_len() {
        let sampler = MajoritySamplerProtocol::new(2);
        let full = sampler.encode(Opinion::Zero, 1, 2);
        assert_eq!(
            DenseProtocol::on_receive(&sampler, full, Opinion::One, 0),
            full
        );
    }

    #[test]
    fn zealot_populations_match_across_engines() {
        let dense = ZealotRumorProtocol::population(100, 5, 10, 20);
        assert_eq!(dense.n(), 100);
        assert_eq!(
            dense.stratum(ZealotRumorProtocol::HONEST).counts(),
            &[65, 5, 10]
        );
        assert_eq!(dense.stratum(ZealotRumorProtocol::ZEALOTS).counts(), &[20]);
        let agents = ZealotAgent::population(100, 5, 10, 20);
        assert_eq!(agents.len(), 100);
        let zealots = agents
            .iter()
            .filter(|a| matches!(a, ZealotAgent::Zealot))
            .count();
        assert_eq!(zealots, 20);
        // Both censuses agree: zealots hold Zero, honest seeds as assigned.
        let census = dense.census(&ZealotRumorProtocol);
        assert_eq!(census.holding(Opinion::Zero), 25);
        assert_eq!(census.holding(Opinion::One), 10);
    }

    #[test]
    fn zealots_drag_the_population_towards_zero() {
        // 10% zealots vs a One-seeded rumor: once everyone is activated, far
        // more than the noise floor holds Zero.
        let population = ZealotRumorProtocol::population(100_000, 0, 100, 10_000);
        let config = SimulationConfig::new(100_000)
            .with_seed(13)
            .with_reference(Opinion::One);
        let channel = BinarySymmetricChannel::from_epsilon(0.4).unwrap();
        let mut sim =
            StratifiedSimulation::new(ZealotRumorProtocol, vec![channel; 2], population, config)
                .unwrap();
        sim.run_until(500, |s| s.census().active() == 100_000);
        assert_eq!(sim.census().active(), 100_000);
        let zero_share = sim.census().holding(Opinion::Zero) as f64 / 100_000.0;
        // eps = 0.4 noise alone corrupts only 10% of deliveries; zealots push
        // the Zero share well above that.
        assert!(zero_share > 0.2, "zero share = {zero_share}");
    }

    #[test]
    fn sampler_amplifies_a_small_bias() {
        // 52/48 initial split, eps = 0.3 noise, a dozen boost phases: the
        // majority should grow well beyond its initial margin (Lemma 2.11 in
        // aggregate form).
        let sampler = MajoritySamplerProtocol::new(11);
        let population = sampler.population(48_000, 52_000);
        let config = SimulationConfig::new(100_000)
            .with_seed(11)
            .with_reference(Opinion::One);
        let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
        let mut sim = DenseSimulation::new(sampler, channel, population, config).unwrap();
        sim.run(11 * 12);
        let fraction = sim.census().fraction_correct(Opinion::One);
        assert!(fraction > 0.9, "fraction correct = {fraction}");
    }
}
