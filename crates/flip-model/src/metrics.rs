//! Round and message accounting.

/// Aggregate counters maintained by the engine over an entire run.
///
/// In the Flip model every message carries exactly one bit, so
/// `messages_sent` equals the total bit complexity of the execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of rounds executed so far.
    pub rounds: u64,
    /// Total number of messages pushed by agents.
    pub messages_sent: u64,
    /// Messages accepted by a recipient (at most one per agent per round).
    pub messages_accepted: u64,
    /// Messages dropped because the recipient accepted another message that round.
    pub messages_collided: u64,
    /// Accepted messages whose bit was flipped by the channel.
    pub bits_flipped: u64,
    /// Sends intercepted by the fault plan: Byzantine injections that
    /// replaced an honest send and crash silencings that dropped one.
    pub forced_sends: u64,
    /// Deliveries dropped because the recipient's fault role refused them.
    pub suppressed_deliveries: u64,
    /// Agent-rounds spent crashed (per round, the number of agents whose
    /// crash round had already passed).
    pub crashed_agent_rounds: u64,
}

impl Metrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bit complexity of the run (one bit per pushed message).
    #[must_use]
    pub fn bits_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Fraction of accepted messages corrupted by the channel, if any were accepted.
    #[must_use]
    pub fn empirical_flip_rate(&self) -> Option<f64> {
        if self.messages_accepted == 0 {
            None
        } else {
            Some(self.bits_flipped as f64 / self.messages_accepted as f64)
        }
    }

    /// Fraction of sent messages lost to collisions, if any were sent.
    #[must_use]
    pub fn collision_rate(&self) -> Option<f64> {
        if self.messages_sent == 0 {
            None
        } else {
            Some(self.messages_collided as f64 / self.messages_sent as f64)
        }
    }

    /// Adds one round's worth of counters.
    pub fn absorb_round(&mut self, round: &RoundMetrics) {
        self.rounds += 1;
        self.messages_sent += round.messages_sent;
        self.messages_accepted += round.messages_accepted;
        self.messages_collided += round.messages_collided;
        self.bits_flipped += round.bits_flipped;
        self.forced_sends += round.forced_sends;
        self.suppressed_deliveries += round.suppressed_deliveries;
        self.crashed_agent_rounds += round.crashed_agents;
    }
}

/// Counters for a single round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// The round index these counters belong to.
    pub round: u64,
    /// Messages pushed in the round.
    pub messages_sent: u64,
    /// Messages accepted by recipients in the round.
    pub messages_accepted: u64,
    /// Messages dropped due to collisions in the round.
    pub messages_collided: u64,
    /// Accepted messages whose bit was flipped in the round.
    pub bits_flipped: u64,
    /// Sends intercepted by the fault plan in the round.
    pub forced_sends: u64,
    /// Deliveries suppressed by deaf fault roles in the round.
    pub suppressed_deliveries: u64,
    /// Agents that were crashed during the round.
    pub crashed_agents: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbing_rounds_accumulates() {
        let mut m = Metrics::new();
        m.absorb_round(&RoundMetrics {
            round: 0,
            messages_sent: 10,
            messages_accepted: 8,
            messages_collided: 2,
            bits_flipped: 3,
            ..RoundMetrics::default()
        });
        m.absorb_round(&RoundMetrics {
            round: 1,
            messages_sent: 5,
            messages_accepted: 5,
            messages_collided: 0,
            bits_flipped: 1,
            ..RoundMetrics::default()
        });
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages_sent, 15);
        assert_eq!(m.messages_accepted, 13);
        assert_eq!(m.messages_collided, 2);
        assert_eq!(m.bits_flipped, 4);
        assert_eq!(m.bits_sent(), 15);
    }

    #[test]
    fn rates_are_none_when_nothing_happened() {
        let m = Metrics::new();
        assert!(m.empirical_flip_rate().is_none());
        assert!(m.collision_rate().is_none());
    }

    #[test]
    fn rates_are_fractions() {
        let mut m = Metrics::new();
        m.absorb_round(&RoundMetrics {
            round: 0,
            messages_sent: 100,
            messages_accepted: 80,
            messages_collided: 20,
            bits_flipped: 20,
            ..RoundMetrics::default()
        });
        assert!((m.empirical_flip_rate().unwrap() - 0.25).abs() < 1e-12);
        assert!((m.collision_rate().unwrap() - 0.2).abs() < 1e-12);
    }
}
