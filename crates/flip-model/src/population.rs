//! Population-level censuses: counts, fractions and biases.

use crate::agent::{Agent, OpinionDelta};
use crate::opinion::Opinion;

/// A snapshot of how many agents hold which opinion.
///
/// # Example
///
/// ```
/// use flip_model::{Census, Opinion};
///
/// let census = Census::from_counts(60, 40, 100);
/// assert_eq!(census.majority(), Some(Opinion::Zero));
/// assert!((census.fraction_correct(Opinion::Zero) - 0.6).abs() < 1e-12);
/// assert!((census.bias_towards(Opinion::Zero) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    holding: [usize; 2],
    n: usize,
}

impl Census {
    /// Builds a census directly from counts (mostly useful in tests and analysis code).
    #[must_use]
    pub fn from_counts(zeros: usize, ones: usize, n: usize) -> Self {
        Self {
            holding: [zeros, ones],
            n,
        }
    }

    /// Counts opinions over a slice of agents.
    #[must_use]
    pub fn of_agents<A: Agent>(agents: &[A]) -> Self {
        let mut holding = [0usize; 2];
        for agent in agents {
            if let Some(op) = agent.opinion() {
                holding[op.index()] += 1;
            }
        }
        Self {
            holding,
            n: agents.len(),
        }
    }

    /// Folds one agent callback's [`OpinionDelta`] into the counts.
    ///
    /// This is the O(1) update behind the engine's incremental census: the
    /// engine applies the delta each `deliver`/`end_round` returns instead of
    /// recounting all `n` agents every round.
    #[inline]
    pub fn apply(&mut self, delta: OpinionDelta) {
        if delta.before == delta.after {
            return;
        }
        if let Some(before) = delta.before {
            debug_assert!(
                self.holding[before.index()] > 0,
                "delta retracts an opinion nobody held"
            );
            self.holding[before.index()] = self.holding[before.index()].saturating_sub(1);
        }
        if let Some(after) = delta.after {
            self.holding[after.index()] += 1;
        }
    }

    /// Population size the census was taken over.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of agents currently holding any opinion.
    #[must_use]
    pub fn active(&self) -> usize {
        self.holding[0] + self.holding[1]
    }

    /// Number of agents holding the given opinion.
    #[must_use]
    pub fn holding(&self, opinion: Opinion) -> usize {
        self.holding[opinion.index()]
    }

    /// The opinion held by strictly more agents, or `None` on a tie.
    #[must_use]
    pub fn majority(&self) -> Option<Opinion> {
        match self.holding[0].cmp(&self.holding[1]) {
            std::cmp::Ordering::Greater => Some(Opinion::Zero),
            std::cmp::Ordering::Less => Some(Opinion::One),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Fraction of the *whole population* holding `correct`.
    #[must_use]
    pub fn fraction_correct(&self, correct: Opinion) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.holding(correct) as f64 / self.n as f64
    }

    /// Fraction of the *opinionated agents* holding `correct`.
    #[must_use]
    pub fn fraction_correct_among_active(&self, correct: Opinion) -> f64 {
        let active = self.active();
        if active == 0 {
            return 0.0;
        }
        self.holding(correct) as f64 / active as f64
    }

    /// Bias of the whole population towards `correct`: `fraction_correct − 1/2`.
    #[must_use]
    pub fn bias_towards(&self, correct: Opinion) -> f64 {
        self.fraction_correct(correct) - 0.5
    }

    /// Bias of the opinionated agents towards `correct`.
    #[must_use]
    pub fn bias_among_active(&self, correct: Opinion) -> f64 {
        self.fraction_correct_among_active(correct) - 0.5
    }

    /// Whether every agent holds the `correct` opinion.
    #[must_use]
    pub fn is_unanimous(&self, correct: Opinion) -> bool {
        self.holding(correct) == self.n
    }
}

/// The paper's majority-bias of an initial opinionated set (§1.3.1):
/// `(A_B − A_B̄) / (2 |A|)` where `A_B` agents hold the majority opinion `B`.
///
/// Returns `0` for an empty set.
///
/// # Example
///
/// ```
/// use flip_model::majority_bias;
///
/// // 70 agents hold B, 30 hold the other opinion: bias = (70 - 30) / (2 * 100) = 0.2.
/// assert!((majority_bias(70, 30) - 0.2).abs() < 1e-12);
/// ```
#[must_use]
pub fn majority_bias(holding_majority: usize, holding_minority: usize) -> f64 {
    let total = holding_majority + holding_minority;
    if total == 0 {
        return 0.0;
    }
    (holding_majority as f64 - holding_minority as f64) / (2.0 * total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Round;
    use crate::rng::SimRng;

    struct Fixed(Option<Opinion>);

    impl Agent for Fixed {
        fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
            None
        }
        fn deliver(&mut self, _round: Round, _message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
            OpinionDelta::NONE
        }
        fn opinion(&self) -> Option<Opinion> {
            self.0
        }
    }

    #[test]
    fn apply_folds_deltas_into_counts() {
        let mut census = Census::from_counts(2, 3, 10);
        census.apply(OpinionDelta::adopted(Opinion::One));
        assert_eq!(census.holding(Opinion::One), 4);
        assert_eq!(census.active(), 6);
        census.apply(OpinionDelta::between(
            Some(Opinion::One),
            Some(Opinion::Zero),
        ));
        assert_eq!(census.holding(Opinion::One), 3);
        assert_eq!(census.holding(Opinion::Zero), 3);
        census.apply(OpinionDelta::between(Some(Opinion::Zero), None));
        assert_eq!(census.holding(Opinion::Zero), 2);
        assert_eq!(census.active(), 5);
        // No-op deltas leave everything untouched.
        census.apply(OpinionDelta::NONE);
        census.apply(OpinionDelta::between(
            Some(Opinion::One),
            Some(Opinion::One),
        ));
        assert_eq!(census, Census::from_counts(2, 3, 10));
    }

    #[test]
    fn census_counts_agents() {
        let agents = vec![
            Fixed(Some(Opinion::One)),
            Fixed(Some(Opinion::One)),
            Fixed(Some(Opinion::Zero)),
            Fixed(None),
        ];
        let census = Census::of_agents(&agents);
        assert_eq!(census.population(), 4);
        assert_eq!(census.active(), 3);
        assert_eq!(census.holding(Opinion::One), 2);
        assert_eq!(census.holding(Opinion::Zero), 1);
        assert_eq!(census.majority(), Some(Opinion::One));
        assert!(!census.is_unanimous(Opinion::One));
    }

    #[test]
    fn fraction_and_bias_use_population_or_active_as_documented() {
        let census = Census::from_counts(1, 2, 4);
        assert!((census.fraction_correct(Opinion::One) - 0.5).abs() < 1e-12);
        assert!((census.fraction_correct_among_active(Opinion::One) - 2.0 / 3.0).abs() < 1e-12);
        assert!((census.bias_towards(Opinion::One) - 0.0).abs() < 1e-12);
        assert!((census.bias_among_active(Opinion::One) - (2.0 / 3.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn tie_has_no_majority() {
        let census = Census::from_counts(3, 3, 6);
        assert_eq!(census.majority(), None);
    }

    #[test]
    fn empty_population_is_handled() {
        let census = Census::from_counts(0, 0, 0);
        assert_eq!(census.fraction_correct(Opinion::One), 0.0);
        assert_eq!(census.fraction_correct_among_active(Opinion::One), 0.0);
        assert!(!census.is_unanimous(Opinion::Zero) || census.population() == 0);
    }

    #[test]
    fn unanimity_detection() {
        let census = Census::from_counts(0, 5, 5);
        assert!(census.is_unanimous(Opinion::One));
        assert!(!census.is_unanimous(Opinion::Zero));
    }

    #[test]
    fn majority_bias_matches_paper_definition() {
        assert!((majority_bias(70, 30) - 0.2).abs() < 1e-12);
        assert!((majority_bias(50, 50) - 0.0).abs() < 1e-12);
        assert!((majority_bias(100, 0) - 0.5).abs() < 1e-12);
        assert_eq!(majority_bias(0, 0), 0.0);
    }
}
