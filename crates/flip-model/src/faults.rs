//! Fault injection: faulty-participant roles, deterministic fault plans and
//! adversarial message schedules.
//!
//! The Flip model's only adversary so far was *stochastic*: channel noise up
//! to the crossover cap.  This module adds *faulty participants* — agents
//! that crash, push a constant bit, equivocate by round parity, or
//! adaptively invert their own protocol — so the paper's Stage I/II dynamics
//! can be compared against classical BFT machinery (the `ben-or` /
//! `bv-broadcast` / `safe-bbc` registry protocols and experiment E13) under
//! one substrate.
//!
//! # Determinism
//!
//! Fault assignment is sampled **once, at simulation construction**, from
//! the engine's own [`SimRng`] using a single
//! [`reserve_block`](SimRng::reserve_block): agent `i` is faulty iff
//! [`block_word`](SimRng::block_word)`(base, i)` falls below the
//! fraction-scaled threshold.  Because the reservation advances the stream
//! by a fixed amount regardless of how many agents come out faulty, and the
//! per-agent words are re-mixed in registers, fault draws are independent of
//! thread count and of iteration order — a fault-injected parallel round is
//! bit-identical to its sequential twin, exactly like the fault-free engine.
//! A configuration without faults draws nothing, so every pre-existing
//! seeded result is byte-identical.
//!
//! # Role semantics
//!
//! | role | sends | receives | runs protocol |
//! |---|---|---|---|
//! | [`FaultRole::Honest`] | protocol | yes | yes |
//! | [`FaultRole::Crashed`] | protocol until round `r`, then silent | until round `r` | until round `r` |
//! | [`FaultRole::ByzantineConstant`] | the fixed bit, every round | ignores | no |
//! | [`FaultRole::ByzantineEquivocating`] | bit = round parity | ignores | no |
//! | [`FaultRole::ByzantineAdaptiveFlip`] | negation of its honest send | yes | yes |
//!
//! Dropped receptions still consume their routed slot and their channel
//! corruption draw — the message died at a deaf recipient, not in the
//! scheduler — so fault-free agents observe exactly the same stream with or
//! without faulty peers in the population.

use std::cell::Cell;
use std::fmt;
use std::str::FromStr;

use crate::agent::Round;
use crate::channel::Channel;
use crate::error::FlipError;
use crate::opinion::Opinion;
use crate::rng::SimRng;

/// Which fault family a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Byzantine-constant: push the wrong bit ([`Opinion::Zero`], the
    /// convention being that experiments designate [`Opinion::One`] as the
    /// reference) every round, ignore everything received.
    Byzantine,
    /// Byzantine-equivocating: push the bit equal to the round's parity, so
    /// the agent advertises both values in any two consecutive rounds.
    Equivocate,
    /// Byzantine-adaptive: run the honest protocol (receive and update
    /// state normally) but transmit the *negation* of every honest send.
    AdaptiveFlip,
    /// Crash: behave honestly until `round`, then fall permanently silent
    /// and deaf.
    Crash {
        /// First round in which the agent is crashed.
        round: Round,
    },
}

/// A parsed `--faults` directive: which fault kind, injected into which
/// fraction of the population.
///
/// The string forms accepted by [`FromStr`] (and produced by `Display`):
///
/// * `byz:F` — [`FaultKind::Byzantine`] at fraction `F`,
/// * `equiv:F` — [`FaultKind::Equivocate`],
/// * `flip:F` — [`FaultKind::AdaptiveFlip`],
/// * `crash:F@R` — [`FaultKind::Crash`] at round `R`.
///
/// `F` must lie strictly between 0 and 1: a zero fraction would silently run
/// a fault-free simulation while claiming to inject faults.
///
/// # Example
///
/// ```
/// use flip_model::{FaultKind, FaultSpec};
///
/// let spec: FaultSpec = "crash:0.25@8".parse().unwrap();
/// assert_eq!(spec.kind, FaultKind::Crash { round: 8 });
/// assert_eq!(spec.fraction, 0.25);
/// assert_eq!(spec.to_string(), "crash:0.25@8");
/// assert!("byz:0".parse::<FaultSpec>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault family to inject.
    pub kind: FaultKind,
    /// The expected fraction of the population carrying the fault,
    /// strictly inside `(0, 1)`.
    pub fraction: f64,
}

impl FaultSpec {
    /// Creates a spec, validating the fraction.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] (named `faults`) unless
    /// `fraction` is finite and strictly inside `(0, 1)`.
    pub fn new(kind: FaultKind, fraction: f64) -> Result<Self, FlipError> {
        if !fraction.is_finite() || fraction <= 0.0 || fraction >= 1.0 {
            return Err(FlipError::InvalidParameter {
                name: "faults",
                message: format!(
                    "fault fraction {fraction} must lie strictly between 0 and 1 \
                     (a zero fraction would silently run fault-free)"
                ),
            });
        }
        Ok(Self { kind, fraction })
    }

    /// The concrete role a faulty agent under this spec plays.
    #[must_use]
    pub fn role(&self) -> FaultRole {
        match self.kind {
            FaultKind::Byzantine => FaultRole::ByzantineConstant {
                opinion: Opinion::Zero,
            },
            FaultKind::Equivocate => FaultRole::ByzantineEquivocating,
            FaultKind::AdaptiveFlip => FaultRole::ByzantineAdaptiveFlip,
            FaultKind::Crash { round } => FaultRole::Crashed { round },
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Byzantine => write!(f, "byz:{}", self.fraction),
            FaultKind::Equivocate => write!(f, "equiv:{}", self.fraction),
            FaultKind::AdaptiveFlip => write!(f, "flip:{}", self.fraction),
            FaultKind::Crash { round } => write!(f, "crash:{}@{round}", self.fraction),
        }
    }
}

impl FromStr for FaultSpec {
    type Err = FlipError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = |message: String| FlipError::InvalidParameter {
            name: "faults",
            message,
        };
        let (kind_str, rest) = s.split_once(':').ok_or_else(|| {
            invalid(format!(
                "`{s}` has no `:`; expected `byz:F`, `equiv:F`, `flip:F` or `crash:F@R`"
            ))
        })?;
        let parse_fraction = |raw: &str| -> Result<f64, FlipError> {
            raw.parse::<f64>()
                .map_err(|_| invalid(format!("`{raw}` is not a number (the fault fraction)")))
        };
        let kind = match kind_str {
            "byz" => FaultKind::Byzantine,
            "equiv" => FaultKind::Equivocate,
            "flip" => FaultKind::AdaptiveFlip,
            "crash" => {
                let (fraction_str, round_str) = rest.split_once('@').ok_or_else(|| {
                    invalid(format!(
                        "`crash:{rest}` is missing its crash round; write `crash:F@R`"
                    ))
                })?;
                let round = round_str.parse::<Round>().map_err(|_| {
                    invalid(format!("`{round_str}` is not a round number (crash round)"))
                })?;
                return Self::new(FaultKind::Crash { round }, parse_fraction(fraction_str)?);
            }
            other => {
                return Err(invalid(format!(
                    "unknown fault kind `{other}`; expected `byz`, `equiv`, `flip` or `crash`"
                )))
            }
        };
        Self::new(kind, parse_fraction(rest)?)
    }
}

/// The concrete behavior one agent has been assigned for a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRole {
    /// Runs its protocol untouched.
    Honest,
    /// Honest until `round`, then permanently silent and deaf.
    Crashed {
        /// First round in which the agent is crashed.
        round: Round,
    },
    /// Pushes `opinion` every round and ignores everything received.
    ByzantineConstant {
        /// The bit the agent floods.
        opinion: Opinion,
    },
    /// Pushes the bit equal to the current round's parity.
    ByzantineEquivocating,
    /// Runs the honest protocol but transmits the negation of every send.
    ByzantineAdaptiveFlip,
}

impl FaultRole {
    /// Whether the role is anything other than [`FaultRole::Honest`].
    #[must_use]
    pub fn is_faulty(self) -> bool {
        self != FaultRole::Honest
    }

    /// Whether a message delivered in `round` reaches the agent's protocol.
    #[must_use]
    pub fn accepts_delivery(self, round: Round) -> bool {
        match self {
            FaultRole::Honest | FaultRole::ByzantineAdaptiveFlip => true,
            FaultRole::Crashed { round: crash } => round < crash,
            FaultRole::ByzantineConstant { .. } | FaultRole::ByzantineEquivocating => false,
        }
    }

    /// Whether the agent's protocol hooks (`end_round`) run in `round`.
    #[must_use]
    pub fn runs_protocol(self, round: Round) -> bool {
        // Identical gating to reception: a deaf agent's protocol is frozen.
        self.accepts_delivery(round)
    }
}

/// The per-trial deterministic assignment of a [`FaultRole`] to every agent.
///
/// Built either by i.i.d. sampling over the whole population
/// ([`FaultPlan::sample`] — the per-agent engine) or by assigning the role
/// to a leading prefix ([`FaultPlan::leading`] — the hybrid engine, whose
/// tracked agents carry the faulty roles against the dense honest bulk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    roles: Vec<FaultRole>,
    faulty: usize,
    /// The shared crash round when the plan's faulty role is
    /// [`FaultRole::Crashed`] (a plan injects a single spec, so every
    /// crashed agent crashes in the same round).
    crash_round: Option<Round>,
}

impl FaultPlan {
    /// Samples a plan for `n` agents: each independently carries the spec's
    /// role with probability `spec.fraction`.
    ///
    /// Consumes exactly one `n`-word [`SimRng::reserve_block`], so the draw
    /// is thread-count-invariant and costs no per-agent stream state.
    #[must_use]
    pub fn sample(spec: &FaultSpec, n: usize, rng: &mut SimRng) -> Self {
        // fraction < 1 keeps the scaled threshold below 2^64; the `as`
        // conversion saturates anyway for paranoid inputs.
        let threshold = (spec.fraction * (u64::MAX as f64 + 1.0)) as u64;
        let role = spec.role();
        let base = rng.reserve_block(n);
        let mut faulty = 0usize;
        let roles = (0..n)
            .map(|i| {
                if SimRng::block_word(base, i) < threshold {
                    faulty += 1;
                    role
                } else {
                    FaultRole::Honest
                }
            })
            .collect();
        Self {
            roles,
            faulty,
            crash_round: Self::crash_round_of(&role),
        }
    }

    /// A plan over `n` agents whose first `faulty` agents carry the spec's
    /// role — the hybrid layout, where the tracked prefix is the faulty set.
    #[must_use]
    pub fn leading(spec: &FaultSpec, faulty: usize, n: usize) -> Self {
        let faulty = faulty.min(n);
        let role = spec.role();
        let roles = (0..n)
            .map(|i| if i < faulty { role } else { FaultRole::Honest })
            .collect();
        Self {
            roles,
            faulty,
            crash_round: Self::crash_round_of(&role),
        }
    }

    fn crash_round_of(role: &FaultRole) -> Option<Round> {
        match role {
            FaultRole::Crashed { round } => Some(*round),
            _ => None,
        }
    }

    /// How many of the plan's agents are crashed during `round` (O(1): a
    /// plan carries one spec, so all crashed agents share one crash round).
    #[must_use]
    pub fn crashed_count(&self, round: Round) -> usize {
        match self.crash_round {
            Some(crash) if round >= crash => self.faulty,
            _ => 0,
        }
    }

    /// The role of agent `i` (agents beyond the plan are honest).
    #[must_use]
    pub fn role(&self, i: usize) -> FaultRole {
        self.roles.get(i).copied().unwrap_or(FaultRole::Honest)
    }

    /// Whether agent `i` carries a fault.
    #[must_use]
    pub fn is_faulty(&self, i: usize) -> bool {
        self.role(i).is_faulty()
    }

    /// How many agents carry a fault.
    #[must_use]
    pub fn faulty_count(&self) -> usize {
        self.faulty
    }

    /// The number of agents the plan covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether the plan covers no agents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// The message a faulty sender injects in `round`, `Some(None)` for a
    /// silenced sender, or `None` when the agent's own protocol decides
    /// (honest and adaptive-flip roles — the latter negates the result).
    #[must_use]
    pub fn forced_send(&self, i: usize, round: Round) -> Option<Option<Opinion>> {
        match self.role(i) {
            FaultRole::Honest | FaultRole::ByzantineAdaptiveFlip => None,
            FaultRole::Crashed { round: crash } => (round >= crash).then_some(None),
            FaultRole::ByzantineConstant { opinion } => Some(Some(opinion)),
            FaultRole::ByzantineEquivocating => Some(Some(Opinion::from_bit((round & 1) as u8))),
        }
    }
}

/// A message-injection adversary composing with any [`Channel`]: every
/// `period`-th transmission (counted 1-based across the whole run) is
/// *replaced* by a fixed bit instead of passing through the inner channel.
///
/// This models an adversary with limited write access to the medium rather
/// than to the participants: contrast [`FaultRole::ByzantineConstant`],
/// which corrupts a sender, with a schedule that corrupts every k-th
/// *message* regardless of who sent it.
///
/// The replacement counter makes the channel stateful, so
/// [`Channel::fixed_crossover`] reports `None` and the engine always takes
/// the exact per-message path — the schedule composes with fused-noise
/// channels by disabling their fusion, never by being skipped.
///
/// # Example
///
/// ```
/// use flip_model::{AdversarialSchedule, Channel, NoiselessChannel, Opinion, SimRng};
///
/// # fn main() -> Result<(), flip_model::FlipError> {
/// let schedule = AdversarialSchedule::new(NoiselessChannel, Opinion::Zero, 3)?;
/// let mut rng = SimRng::from_seed(1);
/// let sent: Vec<Opinion> = (0..6).map(|_| schedule.transmit(Opinion::One, &mut rng)).collect();
/// // Every third message is replaced by the adversary's bit.
/// assert_eq!(sent[2], Opinion::Zero);
/// assert_eq!(sent[5], Opinion::Zero);
/// assert_eq!(sent[0], Opinion::One);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdversarialSchedule<C> {
    inner: C,
    bit: Opinion,
    period: u64,
    transmitted: Cell<u64>,
}

impl<C: Channel> AdversarialSchedule<C> {
    /// Wraps `inner`, replacing every `period`-th transmission with `bit`.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] when `period` is zero.
    pub fn new(inner: C, bit: Opinion, period: u64) -> Result<Self, FlipError> {
        if period == 0 {
            return Err(FlipError::InvalidParameter {
                name: "period",
                message: "the adversarial schedule period must be >= 1 \
                          (1 replaces every message)"
                    .into(),
            });
        }
        Ok(Self {
            inner,
            bit,
            period,
            transmitted: Cell::new(0),
        })
    }

    /// The wrapped channel.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// How many messages have passed through the schedule so far.
    #[must_use]
    pub fn transmitted(&self) -> u64 {
        self.transmitted.get()
    }
}

impl<C: Channel> Channel for AdversarialSchedule<C> {
    fn transmit(&self, message: Opinion, rng: &mut SimRng) -> Opinion {
        let count = self.transmitted.get() + 1;
        self.transmitted.set(count);
        if count.is_multiple_of(self.period) {
            self.bit
        } else {
            self.inner.transmit(message, rng)
        }
    }

    fn crossover(&self) -> f64 {
        // An upper bound: the injected bit differs from the payload at most
        // once per period, on top of the inner channel's own crossover.
        (self.inner.crossover() + 1.0 / self.period as f64).min(1.0)
    }

    fn mean_crossover(&self) -> f64 {
        // The schedule's replacements flip only when the payload disagrees
        // with the injected bit (unknowable here), so the inner mean plus
        // the full replacement rate is the honest upper bound.
        (self.inner.mean_crossover() + 1.0 / self.period as f64).min(1.0)
    }

    fn fixed_crossover(&self) -> Option<f64> {
        // Stateful by construction: the engine must call `transmit` for
        // every message or the schedule would silently never fire.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BinarySymmetricChannel, NoiselessChannel};

    #[test]
    fn fault_specs_parse_and_round_trip() {
        for (text, kind, fraction) in [
            ("byz:0.1", FaultKind::Byzantine, 0.1),
            ("equiv:0.2", FaultKind::Equivocate, 0.2),
            ("flip:0.05", FaultKind::AdaptiveFlip, 0.05),
            ("crash:0.25@8", FaultKind::Crash { round: 8 }, 0.25),
        ] {
            let spec: FaultSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec.kind, kind, "{text}");
            assert_eq!(spec.fraction, fraction, "{text}");
            assert_eq!(spec.to_string(), text);
            assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn invalid_fault_specs_fail_naming_the_parameter() {
        for bad in [
            "byz:0",
            "byz:1",
            "byz:-0.1",
            "byz:half",
            "byz",
            "crash:0.1",
            "crash:0.1@x",
            "gremlin:0.1",
            "byz:0.1@3",
        ] {
            let err = match bad.parse::<FaultSpec>() {
                Ok(spec) => panic!("`{bad}` must be rejected, parsed {spec:?}"),
                Err(err) => err.to_string(),
            };
            assert!(
                err.contains("faults"),
                "`{bad}` error must name `faults`: {err}"
            );
        }
        // `byz:0.1@3` sneaks a crash round into a non-crash kind.
        assert!("byz:0.1@3".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn sampled_plans_hit_the_expected_fraction_and_are_deterministic() {
        let spec: FaultSpec = "byz:0.1".parse().unwrap();
        let mut rng = SimRng::from_seed(42);
        let plan = FaultPlan::sample(&spec, 100_000, &mut rng);
        assert_eq!(plan.len(), 100_000);
        let frac = plan.faulty_count() as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "fraction = {frac}");
        // Same seed, same plan; the draw is a pure function of the stream.
        let mut rng2 = SimRng::from_seed(42);
        assert_eq!(FaultPlan::sample(&spec, 100_000, &mut rng2), plan);
        // And the faulty count matches a recount of the roles.
        let recount = (0..plan.len()).filter(|&i| plan.is_faulty(i)).count();
        assert_eq!(recount, plan.faulty_count());
    }

    #[test]
    fn leading_plans_assign_the_prefix() {
        let spec: FaultSpec = "equiv:0.5".parse().unwrap();
        let plan = FaultPlan::leading(&spec, 3, 8);
        assert_eq!(plan.faulty_count(), 3);
        assert!(plan.is_faulty(0) && plan.is_faulty(2));
        assert!(!plan.is_faulty(3) && !plan.is_faulty(7));
        // Out-of-plan indices are honest.
        assert_eq!(plan.role(100), FaultRole::Honest);
    }

    #[test]
    fn roles_gate_sending_reception_and_protocol() {
        let crash = FaultRole::Crashed { round: 5 };
        assert!(crash.accepts_delivery(4) && !crash.accepts_delivery(5));
        assert!(crash.runs_protocol(4) && !crash.runs_protocol(6));
        let constant = FaultRole::ByzantineConstant {
            opinion: Opinion::Zero,
        };
        assert!(!constant.accepts_delivery(0));
        assert!(FaultRole::ByzantineAdaptiveFlip.accepts_delivery(0));
        assert!(FaultRole::Honest.accepts_delivery(0));
        assert!(constant.is_faulty() && !FaultRole::Honest.is_faulty());
    }

    #[test]
    fn forced_sends_follow_the_role_table() {
        let byz: FaultSpec = "byz:0.5".parse().unwrap();
        let plan = FaultPlan::leading(&byz, 1, 2);
        assert_eq!(plan.forced_send(0, 0), Some(Some(Opinion::Zero)));
        assert_eq!(plan.forced_send(1, 0), None, "honest agents decide");

        let equiv: FaultSpec = "equiv:0.5".parse().unwrap();
        let plan = FaultPlan::leading(&equiv, 1, 2);
        assert_eq!(plan.forced_send(0, 0), Some(Some(Opinion::Zero)));
        assert_eq!(plan.forced_send(0, 1), Some(Some(Opinion::One)));

        let crash: FaultSpec = "crash:0.5@3".parse().unwrap();
        let plan = FaultPlan::leading(&crash, 1, 2);
        assert_eq!(plan.forced_send(0, 2), None, "honest until the crash");
        assert_eq!(plan.forced_send(0, 3), Some(None), "silent after");

        let flip: FaultSpec = "flip:0.5".parse().unwrap();
        let plan = FaultPlan::leading(&flip, 1, 2);
        assert_eq!(plan.forced_send(0, 0), None, "adaptive runs the protocol");
    }

    #[test]
    fn crashed_count_is_zero_before_the_crash_round_and_all_faulty_after() {
        let crash: FaultSpec = "crash:0.5@3".parse().unwrap();
        let plan = FaultPlan::leading(&crash, 2, 8);
        assert_eq!(plan.crashed_count(0), 0);
        assert_eq!(plan.crashed_count(2), 0);
        assert_eq!(plan.crashed_count(3), 2);
        assert_eq!(plan.crashed_count(100), 2);
        // Non-crash faults never report crashed agents.
        let byz: FaultSpec = "byz:0.5".parse().unwrap();
        let plan = FaultPlan::leading(&byz, 2, 8);
        assert_eq!(plan.crashed_count(0), 0);
        assert_eq!(plan.crashed_count(50), 0);
        // Sampled plans carry the crash round too.
        let mut rng = SimRng::from_seed(11);
        let sampled = FaultPlan::sample(&crash, 1000, &mut rng);
        assert_eq!(sampled.crashed_count(2), 0);
        assert_eq!(sampled.crashed_count(3), sampled.faulty_count());
    }

    #[test]
    fn adversarial_schedule_replaces_every_period_th_message() {
        let schedule = AdversarialSchedule::new(NoiselessChannel, Opinion::Zero, 1).unwrap();
        let mut rng = SimRng::from_seed(7);
        for _ in 0..10 {
            assert_eq!(schedule.transmit(Opinion::One, &mut rng), Opinion::Zero);
        }
        assert_eq!(schedule.transmitted(), 10);
        assert!(AdversarialSchedule::new(NoiselessChannel, Opinion::Zero, 0).is_err());
    }

    #[test]
    fn adversarial_schedule_composes_with_noisy_channels() {
        // Between injections the inner channel's stream is untouched: a
        // period-3 schedule over a BSC must produce the inner channel's
        // exact outputs on non-multiples (same RNG draws, same results).
        let inner = BinarySymmetricChannel::new(0.3).unwrap();
        let schedule = AdversarialSchedule::new(inner, Opinion::Zero, 3).unwrap();
        let mut rng_direct = SimRng::from_seed(9);
        let mut rng_sched = SimRng::from_seed(9);
        for i in 1..=30u64 {
            let through = schedule.transmit(Opinion::One, &mut rng_sched);
            if i.is_multiple_of(3) {
                assert_eq!(through, Opinion::Zero, "message {i} must be replaced");
            } else {
                assert_eq!(
                    through,
                    inner.transmit(Opinion::One, &mut rng_direct),
                    "message {i} must pass through the inner channel"
                );
            }
        }
        assert!(
            schedule.fixed_crossover().is_none(),
            "stateful: never fused"
        );
        assert!(schedule.crossover() >= inner.crossover());
    }
}
