//! Push-gossip routing with per-recipient collision resolution.

use rand::Rng;

use crate::agent::AgentId;
use crate::error::FlipError;
use crate::opinion::Opinion;
use crate::rng::SimRng;

/// A message accepted by its recipient in one round, before channel noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The agent that pushed the message.
    pub sender: AgentId,
    /// The agent that accepted the message.
    pub recipient: AgentId,
    /// The transmitted opinion as it left the sender (noise is applied later).
    pub payload: Opinion,
}

/// The outcome of routing one round of push gossip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRouting {
    /// Messages accepted by their recipients (one per receiving agent at most).
    pub accepted: Vec<Delivery>,
    /// Number of messages pushed this round.
    pub sent: u64,
    /// Number of messages dropped because their recipient accepted another one.
    pub collided: u64,
}

/// Routes pushed messages to uniformly random recipients and resolves collisions.
///
/// The scheduler implements exactly the interaction pattern of the paper
/// (§1.3.2): each pushed message is addressed to an agent chosen uniformly at
/// random among the *other* `n − 1` agents, and an agent that receives several
/// messages in the same round accepts one of them chosen uniformly at random.
///
/// The scheduler reuses internal buffers across rounds, so a single instance
/// should be kept for the lifetime of a simulation.
#[derive(Debug, Clone)]
pub struct GossipScheduler {
    n: usize,
    /// Number of messages that have arrived at each agent this round.
    arrival_counts: Vec<u32>,
    /// The reservoir-sampled kept message per agent this round.
    kept: Vec<Option<(AgentId, Opinion)>>,
    /// Agents touched this round (for cheap resets).
    touched: Vec<usize>,
}

impl GossipScheduler {
    /// Creates a scheduler for a population of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        Ok(Self {
            n,
            arrival_counts: vec![0; n],
            kept: vec![None; n],
            touched: Vec::new(),
        })
    }

    /// The population size this scheduler routes for.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Routes one round of sends.
    ///
    /// `sends` lists `(sender index, opinion)` pairs for every agent that chose
    /// to push a message this round.  Each message is assigned a uniformly
    /// random recipient different from its sender; each recipient keeps one
    /// arriving message uniformly at random (reservoir sampling of size one).
    pub fn route(&mut self, sends: &[(usize, Opinion)], rng: &mut SimRng) -> RoundRouting {
        // Reset only the entries touched last round.
        for &idx in &self.touched {
            self.arrival_counts[idx] = 0;
            self.kept[idx] = None;
        }
        self.touched.clear();

        let mut sent = 0u64;
        for &(sender, payload) in sends {
            debug_assert!(sender < self.n, "sender index out of range");
            sent += 1;
            // Uniform recipient among the other n - 1 agents.
            let mut recipient = rng.gen_range(0..self.n - 1);
            if recipient >= sender {
                recipient += 1;
            }
            let count = &mut self.arrival_counts[recipient];
            *count += 1;
            if *count == 1 {
                self.touched.push(recipient);
                self.kept[recipient] = Some((AgentId::new(sender), payload));
            } else {
                // Reservoir sampling: replace with probability 1/count.
                let c = *count;
                if rng.gen_range(0..c) == 0 {
                    self.kept[recipient] = Some((AgentId::new(sender), payload));
                }
            }
        }

        let mut accepted = Vec::with_capacity(self.touched.len());
        let mut collided = 0u64;
        for &idx in &self.touched {
            let (sender, payload) = self.kept[idx].expect("touched entries hold a message");
            collided += u64::from(self.arrival_counts[idx] - 1);
            accepted.push(Delivery {
                sender,
                recipient: AgentId::new(idx),
                payload,
            });
        }

        RoundRouting {
            accepted,
            sent,
            collided,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_populations() {
        assert!(GossipScheduler::new(0).is_err());
        assert!(GossipScheduler::new(1).is_err());
        assert!(GossipScheduler::new(2).is_ok());
    }

    #[test]
    fn no_sends_no_deliveries() {
        let mut s = GossipScheduler::new(10).unwrap();
        let mut rng = SimRng::from_seed(0);
        let routing = s.route(&[], &mut rng);
        assert!(routing.accepted.is_empty());
        assert_eq!(routing.sent, 0);
        assert_eq!(routing.collided, 0);
    }

    #[test]
    fn never_delivers_to_sender() {
        let mut s = GossipScheduler::new(5).unwrap();
        let mut rng = SimRng::from_seed(1);
        for _ in 0..500 {
            let routing = s.route(&[(2, Opinion::One)], &mut rng);
            assert_eq!(routing.accepted.len(), 1);
            assert_ne!(routing.accepted[0].recipient.index(), 2);
            assert_eq!(routing.accepted[0].sender.index(), 2);
        }
    }

    #[test]
    fn each_recipient_accepts_at_most_one_message() {
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(2);
        // All four agents push, so collisions are very likely.
        let sends: Vec<(usize, Opinion)> = (0..4).map(|i| (i, Opinion::Zero)).collect();
        for _ in 0..200 {
            let routing = s.route(&sends, &mut rng);
            let mut seen = [0u32; 4];
            for d in &routing.accepted {
                seen[d.recipient.index()] += 1;
            }
            assert!(seen.iter().all(|&c| c <= 1));
            assert_eq!(
                routing.sent,
                routing.accepted.len() as u64 + routing.collided
            );
        }
    }

    #[test]
    fn recipients_are_roughly_uniform() {
        let mut s = GossipScheduler::new(6).unwrap();
        let mut rng = SimRng::from_seed(3);
        let mut counts = [0u32; 6];
        let trials = 30_000;
        for _ in 0..trials {
            let routing = s.route(&[(0, Opinion::One)], &mut rng);
            counts[routing.accepted[0].recipient.index()] += 1;
        }
        assert_eq!(counts[0], 0);
        let expected = trials as f64 / 5.0;
        for &c in &counts[1..] {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.1,
                "counts = {counts:?}"
            );
        }
    }

    #[test]
    fn collision_winner_is_roughly_uniform() {
        // Three senders all pushing into a 2-agent-recipient world is impossible;
        // instead use n = 2: both messages from agent 0 and 1 must go to the other,
        // so craft a scenario with repeated sends from distinct senders and check
        // the accepted sender distribution at a single recipient.
        let mut s = GossipScheduler::new(3).unwrap();
        let mut rng = SimRng::from_seed(4);
        let mut winner_counts = [0u32; 3];
        let mut total = 0u32;
        for _ in 0..30_000 {
            let routing = s.route(&[(0, Opinion::Zero), (1, Opinion::One)], &mut rng);
            for d in &routing.accepted {
                if d.recipient.index() == 2 && routing.collided == 1 {
                    // Both messages landed on agent 2; record who won.
                    winner_counts[d.sender.index()] += 1;
                    total += 1;
                }
            }
        }
        assert!(total > 5_000, "collisions should be frequent, got {total}");
        let share0 = f64::from(winner_counts[0]) / f64::from(total);
        assert!((share0 - 0.5).abs() < 0.05, "share0 = {share0}");
    }

    #[test]
    fn buffers_reset_between_rounds() {
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(5);
        let r1 = s.route(&[(0, Opinion::One), (1, Opinion::One)], &mut rng);
        assert!(r1.sent == 2);
        let r2 = s.route(&[], &mut rng);
        assert!(r2.accepted.is_empty());
        assert_eq!(r2.sent, 0);
        assert_eq!(r2.collided, 0);
    }
}
