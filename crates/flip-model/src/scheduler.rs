//! Push-gossip routing with per-recipient collision resolution.

use crate::agent::AgentId;
use crate::error::FlipError;
use crate::opinion::Opinion;
use crate::pool::{RoundPool, MAX_WORKERS};
use crate::rng::SimRng;
use telemetry::{Event, Phase, Telemetry};

/// A message accepted by its recipient in one round, before channel noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The agent that pushed the message.
    pub sender: AgentId,
    /// The agent that accepted the message.
    pub recipient: AgentId,
    /// The transmitted opinion as it left the sender (noise is applied later).
    pub payload: Opinion,
}

const PLACEHOLDER: Delivery = Delivery {
    sender: AgentId::new(0),
    recipient: AgentId::new(0),
    payload: Opinion::Zero,
};

/// Population size at and above which [`GossipScheduler::route_into`] routes
/// dense rounds through the radix-bucketed path.
///
/// Chosen by benchmark (the `substrate/route_radix` vs
/// `substrate/route_single_pass` pairs): the single-scatter path wins while
/// the packed reservoir slots stay close enough to the core that the
/// out-of-order window hides their random-access latency, and the radix
/// path's streaming passes win once the slot array falls out of the private
/// caches and each scatter write turns into a far-cache round trip.  On the
/// reference machine a dense all-send break-even scan put the cross between
/// `n ≈ 1.3×10⁵` and `n = 2×10⁵`, with the radix win growing to ~1.3× at
/// `n = 10⁶` and ~2.2× at `n = 2×10⁶`.  `2¹⁷` sits at the measured parity
/// point, so the dispatch is never worse than single-pass and captures the
/// full large-`n` win.
pub const RADIX_MIN_N: usize = 1 << 17;

/// Recipients per radix bucket, as a shift: buckets of `2¹³` agents make an
/// 8-byte-per-slot reservoir window of 64 KiB — small enough to stay
/// resident in any L2 together with the bucket's staging area, large enough
/// that per-bucket bookkeeping is negligible.
pub const RADIX_BUCKET_BITS: u32 = 13;

/// Dense/sparse round threshold, as a shift: a round is *dense* when
/// `m ≥ n >> DENSE_SEND_SHIFT` (at least one message per eight agents).
/// Dense rounds emit by sweeping the reservoir slots in recipient order
/// (O(n) sequential); sparse rounds walk the messages in first-arrival
/// order (O(m) random, but `m` is small).  Benchmark-chosen: the sweep's
/// ~1 ns/slot sequential cost breaks even with the ~6 ns/message random
/// gather around one message per 6–10 agents.
const DENSE_SEND_SHIFT: u32 = 3;

/// The outcome of routing one round of push gossip.
///
/// Designed for reuse: [`GossipScheduler::route_into`] refills an existing
/// instance, so a long-running simulation routes every round into one buffer
/// with zero per-round allocation.  The accepted messages live in a
/// population-sized build buffer (whose tail doubles as the routing loop's
/// discard slot) and are exposed as the [`accepted`](RoundRouting::accepted)
/// prefix slice.
///
/// The instance also owns the message-sized staging array of the radix
/// path ([`GossipScheduler::route_into_radix`]): the packed reservoir
/// words, grouped into their recipients' cache buckets.
/// [`with_capacity`](RoundRouting::with_capacity) sizes it eagerly for
/// populations at or above the radix crossover — ~8.6 MB at `n = 10⁶`,
/// deliberately traded for a hard never-allocates-after-construction
/// guarantee on the hot path — while instances built through
/// [`Default`] grow it on the first radix round and reuse it afterwards.
/// Either way the round loop is allocation-free at steady state on both
/// routing paths.
#[derive(Debug, Clone, Default)]
pub struct RoundRouting {
    /// Build buffer: `accepted_len` live entries, then scratch (the very
    /// last entry is the discard slot for losing reservoir writes).
    buffer: Vec<Delivery>,
    accepted_len: usize,
    /// Number of messages pushed this round.
    pub sent: u64,
    /// Number of messages dropped because their recipient accepted another one.
    pub collided: u64,
    /// Radix staging: packed reservoir words (each carrying its in-bucket
    /// recipient offset), grouped by recipient bucket.
    staged: Vec<u64>,
}

impl RoundRouting {
    /// An empty routing pre-sized for a population of `capacity` agents (at
    /// most one accepted message per recipient, so routing into it can never
    /// allocate).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        // Pre-size the radix staging too when the population is large
        // enough to route through it, so `route_into` never allocates.
        let staged = if capacity >= RADIX_MIN_N {
            GossipScheduler::radix_staged_len(capacity, capacity)
        } else {
            0
        };
        Self {
            buffer: vec![PLACEHOLDER; capacity + 1],
            accepted_len: 0,
            sent: 0,
            collided: 0,
            staged: vec![0; staged],
        }
    }

    /// Pre-grows the radix staging for parallel rounds of up to `lanes`
    /// lanes over a population of `n` (sized for the worst-case all-send
    /// round), so a warmed-up engine's parallel rounds never allocate.
    pub(crate) fn reserve_parallel(&mut self, n: usize, lanes: usize) {
        let staged = GossipScheduler::radix_parallel_staged_len(n, n, lanes);
        if self.staged.len() < staged {
            self.staged.resize(staged, 0);
        }
    }

    /// Messages accepted by their recipients (one per receiving agent at most).
    #[must_use]
    pub fn accepted(&self) -> &[Delivery] {
        &self.buffer[..self.accepted_len]
    }

    /// Mutable view of the accepted messages (callers may corrupt payloads
    /// in place when applying channel noise).
    #[must_use]
    pub fn accepted_mut(&mut self) -> &mut [Delivery] {
        &mut self.buffer[..self.accepted_len]
    }
}

impl PartialEq for RoundRouting {
    fn eq(&self, other: &Self) -> bool {
        // Only the live prefix is meaningful; the scratch tail is garbage.
        self.sent == other.sent
            && self.collided == other.collided
            && self.accepted() == other.accepted()
    }
}

impl Eq for RoundRouting {}

/// Routes pushed messages to uniformly random recipients and resolves collisions.
///
/// The scheduler implements exactly the interaction pattern of the paper
/// (§1.3.2): each pushed message is addressed to an agent chosen uniformly at
/// random among the *other* `n − 1` agents, and an agent that receives several
/// messages in the same round accepts one of them chosen uniformly at random.
///
/// # Hot-path design
///
/// Message `i`'s random word is re-mixed on demand from a counter base
/// reserved with [`SimRng::reserve_block`] (no word buffer exists); the low
/// half maps to the recipient with a cached-threshold 32-bit Lemire
/// multiply-shift (exact — the rare rejection redraws re-mix the message's
/// own word, so every recipient is a pure function of its block word and
/// the whole stream is partition-invariant across workers)
/// and the whole message collapses into one *packed reservoir word*
///
/// ```text
/// priority(18 bits, low bit forced 1) ┃ sender(31) ┃ payload(1) ┃ bucket offset(14)
///          bits 63..46                ┃ bits 45..15┃   bit 14   ┃    bits 13..0
/// ```
///
/// so per-recipient collision resolution is a single branch-free
/// `slot = max(slot, word)`: the highest priority wins, which picks a
/// uniformly random arrival up to ties.  Exact priority ties — probability
/// `2⁻¹⁷` per colliding pair, versus `2⁻³¹` for the previous 31-bit
/// priority, so ~16000× more frequent than before — fall through to the
/// sender bits and deterministically favour the higher sender index
/// (roughly four sender-biased deliveries per million-message round,
/// where the old design had effectively none).  That deviation from exact
/// uniformity is the price of fitting the whole message in one staging
/// word, and remains orders of magnitude below anything the statistical
/// suite — or any experiment at feasible trial counts — can resolve.  A
/// zero slot means "no arrivals" (drawn priorities
/// have their low bit forced), the winning slot *is* the delivery — no
/// lookup back into the send list — and the word carries its recipient's
/// in-bucket offset so the radix path stages whole messages as single
/// `u64`s: one write stream per bucket, write-combining-friendly.
///
/// Emission order is a deterministic function of `(n, m)`, identical on
/// every routing path: **dense** rounds (`m ≥ n/8`) sweep the slots in
/// recipient order (sequential, and recipients arrive pre-sorted for the
/// engine's delivery loop), **sparse** rounds walk messages in
/// first-arrival order (O(m) instead of an O(n) sweep).
///
/// Two routing paths implement these semantics bit-identically, selected by
/// population size (see [`RADIX_MIN_N`]):
///
/// * [`route_into_single_pass`](GossipScheduler::route_into_single_pass) —
///   scatter straight into the population-wide slot array.  Optimal while
///   random slot accesses stay within reach of the cache hierarchy's
///   latency-hiding.
/// * [`route_into_radix`](GossipScheduler::route_into_radix) — stage each
///   message into its recipient's cache bucket (`bucket = recipient >>`
///   [`RADIX_BUCKET_BITS`]) in one streaming pass, then max-resolve bucket
///   by bucket inside one 64 KiB window.  Because `max` is commutative, the
///   buckets use fixed-capacity staging areas with a tiny spill list
///   instead of an exact-histogram pre-pass — one streaming write per
///   message, no second scan of the send list.
///
/// The scheduler reuses internal buffers across rounds, so a single instance
/// should be kept for the lifetime of a simulation.
#[derive(Debug, Clone)]
pub struct GossipScheduler {
    n: usize,
    /// `n − 1` (the recipient span), as the 32-bit Lemire multiplier.
    span: u32,
    /// `2^32 mod span`: the cached Lemire rejection threshold.
    threshold: u32,
    /// Packed per-recipient reservoir words (see the struct docs); the
    /// radix path uses only the first `2^RADIX_BUCKET_BITS` entries as its
    /// bucket window.
    slots: Vec<u64>,
    /// Recipient of each message this round (sparse rounds only, for the
    /// first-arrival emission walk).
    recipients: Vec<u32>,
    /// Per-bucket staging write cursors for the radix scatter pass.
    bucket_cursors: Vec<u32>,
    /// Radix staging overflow: `(recipient, packed word)` for the rare
    /// messages whose bucket filled its fixed-capacity staging area.
    spill: Vec<(u32, u64)>,
    /// Per-worker spill lists for the parallel scatter (worker `w` owns
    /// `spills[w]`; the resolve phase reads all of them, in any order —
    /// `max` is commutative).
    spills: Vec<Vec<(u32, u64)>>,
    /// Accepted-delivery count per bucket, filled by the parallel resolve
    /// phase so emission offsets can be prefix-summed.
    bucket_accepted: Vec<u32>,
    /// Exclusive prefix sums of `bucket_accepted` (`bucket_count + 1`
    /// entries): bucket `b` emits into `buffer[offsets[b]..offsets[b + 1]]`.
    bucket_offsets: Vec<u32>,
    /// Test-only override of the per-bucket staging capacity, so the spill
    /// path can be forced deterministically (a correctly sized capacity
    /// makes natural spills ~6σ events no test could wait for).
    #[cfg(test)]
    forced_bucket_capacity: Option<usize>,
}

impl GossipScheduler {
    /// Creates a scheduler for a population of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if `n < 2`, or
    /// [`FlipError::InvalidParameter`] if `n` exceeds the 31-bit routing
    /// index range (sender indices share a 32-bit lane with the payload bit
    /// in the packed reservoir word; `2³¹` agents is also far past any
    /// population the per-agent engine could hold in memory).
    pub fn new(n: usize) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        if n > 1 << 31 {
            return Err(FlipError::InvalidParameter {
                name: "population",
                message: format!("population {n} exceeds the 31-bit routing-index range"),
            });
        }
        let span = (n - 1) as u32;
        Ok(Self {
            n,
            span,
            threshold: span.wrapping_neg() % span,
            slots: vec![0; n],
            recipients: Vec::new(),
            bucket_cursors: Vec::new(),
            // Pre-sized so that the (≈ never taken) spill path does not
            // allocate mid-round; 1024 entries is > 6σ beyond any real
            // overflow mass.
            spill: Vec::with_capacity(1024),
            spills: Vec::new(),
            bucket_accepted: Vec::new(),
            bucket_offsets: Vec::new(),
            #[cfg(test)]
            forced_bucket_capacity: None,
        })
    }

    /// The population size this scheduler routes for.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Whether a round of `m` sends emits in recipient order (dense) or
    /// first-arrival message order (sparse); see the struct docs.
    #[inline]
    fn is_dense(&self, m: usize) -> bool {
        m >= self.n >> DENSE_SEND_SHIFT
    }

    /// Per-bucket staging capacity for a round of `m` sends over a
    /// population of `n`: the expected bucket load plus `6σ` slack, so the
    /// spill list stays empty for all practical purposes.
    fn radix_bucket_capacity(n: usize, m: usize) -> usize {
        // The mean must be a *full* bucket's expected share of the
        // messages, `m · 2^bits / n` — dividing by the bucket count would
        // understate it whenever the trailing bucket is partial (or, for
        // exact multiples, permanently empty), eroding the 6σ slack to a
        // fraction of a σ and pushing steady traffic into the spill list.
        // No overflow: `m ≤ n ≤ 2³¹`, so `m << 13 < 2⁴⁴`.
        let mean = (m << RADIX_BUCKET_BITS).div_ceil(n);
        mean + 6 * ((mean as f64).sqrt() as usize) + 16
    }

    /// Total staging length the radix path needs for `m` sends over `n`
    /// agents (monotone in `m`, so sizing for `m = n` covers every round).
    fn radix_staged_len(n: usize, m: usize) -> usize {
        ((n >> RADIX_BUCKET_BITS) + 1) * Self::radix_bucket_capacity(n, m)
    }

    /// Total staging length the *parallel* radix path needs for `m` sends
    /// over `n` agents split across `lanes` lanes: each lane gets its own
    /// fixed-capacity area per bucket, sized for its message chunk.
    fn radix_parallel_staged_len(n: usize, m: usize, lanes: usize) -> usize {
        let lanes = lanes.clamp(1, m.max(1));
        let chunk_len = m.max(1).div_ceil(lanes);
        let lanes = m.max(1).div_ceil(chunk_len);
        let bucket_count = n.div_ceil(1 << RADIX_BUCKET_BITS);
        lanes * bucket_count * Self::radix_bucket_capacity(n, chunk_len)
    }

    /// Pre-grows the parallel path's per-lane bookkeeping (staging cursors,
    /// spill lists, per-bucket accepted counts and emission offsets) for
    /// rounds of up to `lanes` lanes, so a warmed-up engine's parallel
    /// rounds never allocate.
    pub(crate) fn reserve_parallel(&mut self, lanes: usize) {
        let lanes = lanes.max(1);
        let bucket_count = self.n.div_ceil(1 << RADIX_BUCKET_BITS);
        if self.bucket_cursors.len() < lanes * bucket_count {
            self.bucket_cursors.resize(lanes * bucket_count, 0);
        }
        while self.spills.len() < lanes {
            self.spills.push(Vec::with_capacity(1024));
        }
        if self.bucket_accepted.len() < bucket_count {
            self.bucket_accepted.resize(bucket_count, 0);
        }
        if self.bucket_offsets.len() < bucket_count + 1 {
            self.bucket_offsets.resize(bucket_count + 1, 0);
        }
    }

    /// Routes one round of sends into a fresh [`RoundRouting`].
    ///
    /// Equivalent to [`route_into`](GossipScheduler::route_into) with a new
    /// output buffer; hot loops should hold one `RoundRouting` and call
    /// `route_into` instead to avoid the per-round allocation.
    pub fn route(&mut self, sends: &[(u32, Opinion)], rng: &mut SimRng) -> RoundRouting {
        let mut out = RoundRouting::with_capacity(self.n);
        self.route_into(sends, rng, &mut out);
        out
    }

    /// Routes one round of sends, reusing `out`'s buffers.
    ///
    /// `sends` lists `(sender index, opinion)` pairs for every agent that chose
    /// to push a message this round.  Each message is assigned a uniformly
    /// random recipient different from its sender; each recipient keeps one
    /// arriving message uniformly at random (highest reservoir priority).
    ///
    /// Dispatches dense rounds of populations of at least [`RADIX_MIN_N`]
    /// agents to the cache-bucketed radix path and everything else to the
    /// single-pass path; the paths consume the same RNG stream and produce
    /// bit-identical routings, so the crossover is invisible to callers.
    ///
    /// After the first call with this scheduler's population, `out` never
    /// allocates again.
    pub fn route_into(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
    ) {
        self.route_into_with(sends, rng, out, &mut Telemetry::off());
    }

    /// [`route_into`](GossipScheduler::route_into) with phase timing and
    /// event counting through `tel`.
    ///
    /// Telemetry is observational only: `tel` never touches `rng`, so the
    /// routing (and the post-round RNG state) is bit-identical whether the
    /// handle is enabled, disabled, or absent.
    pub fn route_into_with(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        tel: &mut Telemetry,
    ) {
        if self.n >= RADIX_MIN_N && self.is_dense(sends.len()) {
            self.route_into_radix_with(sends, rng, out, tel);
        } else {
            self.route_into_single_pass_with(sends, rng, out, tel);
        }
    }

    /// Grows the output buffer; a no-op after the first round.
    fn grow_buffer(&self, out: &mut RoundRouting) {
        if out.buffer.len() < self.n + 1 {
            out.buffer.resize(self.n + 1, PLACEHOLDER);
        }
    }

    /// Draws a message's uniform recipient among the other `n − 1` agents
    /// from its pre-drawn `word` (32-bit Lemire multiply-shift with the
    /// cached rejection `threshold`; exact — the cold rejection path redraws
    /// by re-mixing the message's *own* word instead of pulling from the
    /// live stream).
    ///
    /// The redraw chain — attempt `t` uses
    /// [`SimRng::block_word`]`(word, t)`, each output an independent
    /// SplitMix64 mix of the original draw — is a pure function of `word`,
    /// so a message's recipient depends only on its reserved block word and
    /// never on which other messages were routed before it.  That makes the
    /// whole recipient stream *partition-invariant*: the parallel scatter
    /// can hand any message range to any worker and still produce the exact
    /// recipients of the sequential walk, and the post-round RNG state is
    /// always precisely `reserve_block(m)` past the pre-round state.
    ///
    /// An associated function (not a method) so the parallel scatter workers
    /// can call it with copied `span`/`threshold` without borrowing the
    /// scheduler.
    /// Returns the recipient plus the number of rejection redraws the draw
    /// cost (almost always 0; surfaced as [`Event::LemireRedraws`]).
    #[inline(always)]
    fn draw_recipient(word: u64, sender: usize, span: u32, threshold: u32) -> (usize, u64) {
        let mut product = u64::from(word as u32) * u64::from(span);
        let mut attempt = 0usize;
        while (product as u32) < threshold {
            let redraw = SimRng::block_word(word, attempt);
            attempt += 1;
            product = u64::from(redraw as u32) * u64::from(span);
        }
        let recipient = (product >> 32) as usize;
        (recipient + usize::from(recipient >= sender), attempt as u64)
    }

    /// [`Self::draw_recipient`] with this scheduler's cached span/threshold.
    #[inline(always)]
    fn recipient_of(&self, word: u64, sender: usize) -> (usize, u64) {
        Self::draw_recipient(word, sender, self.span, self.threshold)
    }

    /// The packed reservoir word of a message (see the struct docs): the
    /// priority drawn from the top of `word`, the sender, the payload bit
    /// and the recipient's offset within its radix bucket.
    #[inline(always)]
    fn packed_word(word: u64, sender: u32, payload: Opinion, recipient: usize) -> u64 {
        let offset = (recipient as u64) & ((1 << RADIX_BUCKET_BITS) - 1);
        (((word >> 46) | 1) << 46)
            | (u64::from(sender) << 15)
            | (u64::from(payload.as_bit()) << 14)
            | offset
    }

    /// Unpacks a winning reservoir word into its delivery.
    #[inline(always)]
    fn delivery_of(pword: u64, recipient: usize) -> Delivery {
        Delivery {
            sender: AgentId::new(((pword >> 15) & 0x7FFF_FFFF) as usize),
            recipient: AgentId::new(recipient),
            payload: Opinion::from_bit((pword >> 14) as u8 & 1),
        }
    }

    /// Emits deliveries by sweeping `slots[0..n]` in recipient order,
    /// zeroing each slot for the next round.  Branch-free: empty slots
    /// write to the current position without advancing it.
    fn emit_dense(&mut self, m: usize, out: &mut RoundRouting) {
        let mut accepted_len = 0usize;
        for (recipient, slot) in self.slots.iter_mut().enumerate() {
            let pword = *slot;
            *slot = 0;
            out.buffer[accepted_len] = Self::delivery_of(pword, recipient);
            accepted_len += usize::from(pword != 0);
        }
        out.accepted_len = accepted_len;
        out.sent = m as u64;
        out.collided = m as u64 - accepted_len as u64;
    }

    /// The single-pass routing path: scatter each message's packed word
    /// straight into its recipient's reservoir slot, then emit.
    ///
    /// This is [`route_into`](GossipScheduler::route_into)'s default path
    /// (public so benchmarks and the equivalence tests can pin it against
    /// the radix path at any size): the random slot accesses carry no
    /// loop-borne dependency, so the out-of-order core keeps many cache
    /// misses in flight at once.
    pub fn route_into_single_pass(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
    ) {
        self.route_into_single_pass_with(sends, rng, out, &mut Telemetry::off());
    }

    /// [`route_into_single_pass`](GossipScheduler::route_into_single_pass)
    /// with phase timing and event counting through `tel`.
    pub fn route_into_single_pass_with(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        tel: &mut Telemetry,
    ) {
        let m = sends.len();
        self.grow_buffer(out);
        let span = tel.begin();
        let base = rng.reserve_block(m);
        tel.end(Phase::RngReserve, span);
        let mut redraws = 0u64;

        if self.is_dense(m) {
            let span = tel.begin();
            for (i, &(sender, payload)) in sends.iter().enumerate() {
                debug_assert!((sender as usize) < self.n, "sender index out of range");
                let word = SimRng::block_word(base, i);
                let (recipient, attempts) = self.recipient_of(word, sender as usize);
                redraws += attempts;
                let slot = &mut self.slots[recipient];
                *slot = (*slot).max(Self::packed_word(word, sender, payload, recipient));
            }
            tel.end(Phase::Scatter, span);
            tel.add(Event::LemireRedraws, redraws);
            let span = tel.begin();
            self.emit_dense(m, out);
            tel.end(Phase::SweepEmit, span);
            return;
        }

        // Sparse: remember each message's recipient so emission can walk
        // the (few) messages in first-arrival order instead of sweeping
        // all n slots.
        if self.recipients.len() < m {
            self.recipients.resize(m, 0);
        }
        let span = tel.begin();
        for (i, &(sender, payload)) in sends.iter().enumerate() {
            debug_assert!((sender as usize) < self.n, "sender index out of range");
            let word = SimRng::block_word(base, i);
            let (recipient, attempts) = self.recipient_of(word, sender as usize);
            redraws += attempts;
            self.recipients[i] = recipient as u32;
            let slot = &mut self.slots[recipient];
            *slot = (*slot).max(Self::packed_word(word, sender, payload, recipient));
        }
        tel.end(Phase::Scatter, span);
        tel.add(Event::LemireRedraws, redraws);

        // First-arrival emission: the first walk past a recipient finds its
        // winning word and zeroes the slot, so duplicates emit nothing.
        let span = tel.begin();
        let mut accepted_len = 0usize;
        for &recipient in &self.recipients[..m] {
            let slot = &mut self.slots[recipient as usize];
            let pword = *slot;
            *slot = 0;
            out.buffer[accepted_len] = Self::delivery_of(pword, recipient as usize);
            accepted_len += usize::from(pword != 0);
        }
        out.accepted_len = accepted_len;
        out.sent = m as u64;
        out.collided = m as u64 - accepted_len as u64;
        tel.end(Phase::SweepEmit, span);
    }

    /// The cache-bucketed radix routing path: stage each message into its
    /// recipient's bucket, then max-resolve and emit bucket by bucket
    /// inside one cache-resident window.
    ///
    /// Bit-identical to
    /// [`route_into_single_pass`](GossipScheduler::route_into_single_pass)
    /// from an equal RNG state — same word stream, same rejection redraws,
    /// same winners, same emission order — the routing equivalence tests
    /// pin this at `n ∈ {10³, 10⁵, 10⁶}`.  Dense rounds run three
    /// streaming phases:
    ///
    /// 1. **Scatter** — draw each recipient from its block word (a pure
    ///    per-message function, so the draws match the single-pass path
    ///    word for word) and append the packed word to its bucket's staging
    ///    area.
    ///    Buckets have fixed capacity (expected load + 6σ); the rare
    ///    overflow goes to a spill list.  `max` is commutative, so staging
    ///    order — and spill — cannot affect the result.
    /// 2. **Resolve** — per bucket: max-fold the staged words (and any of
    ///    the bucket's spilled words) into a 64 KiB slot window that stays
    ///    cache-resident throughout.
    /// 3. **Emit** — sweep the window in recipient order, zeroing as it
    ///    goes; buckets are visited in order, so the global emission order
    ///    is exactly the dense recipient order of the single-pass path.
    ///
    /// Sparse rounds (`m < n/8`) delegate to the single-pass path: with few
    /// messages the scatter misses are few, and the bucket machinery would
    /// cost more than it saves.
    pub fn route_into_radix(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
    ) {
        self.route_into_radix_with(sends, rng, out, &mut Telemetry::off());
    }

    /// [`route_into_radix`](GossipScheduler::route_into_radix) with phase
    /// timing and event counting through `tel` (the fused resolve + emit
    /// pass is attributed to [`Phase::WindowResolve`]).
    pub fn route_into_radix_with(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        tel: &mut Telemetry,
    ) {
        let m = sends.len();
        if !self.is_dense(m) {
            self.route_into_single_pass_with(sends, rng, out, tel);
            return;
        }
        self.grow_buffer(out);
        let bucket_count = (self.n >> RADIX_BUCKET_BITS) + 1;
        let capacity = Self::radix_bucket_capacity(self.n, m);
        #[cfg(test)]
        let capacity = self.forced_bucket_capacity.unwrap_or(capacity);
        let staged_len = bucket_count * capacity;
        if out.staged.len() < staged_len {
            out.staged.resize(staged_len, 0);
        }
        if self.bucket_cursors.len() < bucket_count {
            self.bucket_cursors.resize(bucket_count, 0);
        }
        let span = tel.begin();
        let base = rng.reserve_block(m);
        tel.end(Phase::RngReserve, span);

        // Phase 1 — scatter into the fixed-capacity staging areas: one
        // sequential write stream per bucket (the staged word carries the
        // in-bucket offset, so a message is a single 8-byte append) instead
        // of a population-wide random scatter.
        let span = tel.begin();
        for b in 0..bucket_count {
            self.bucket_cursors[b] = (b * capacity) as u32;
        }
        self.spill.clear();
        let bucket_mask = (1u32 << RADIX_BUCKET_BITS) - 1;
        let mut redraws = 0u64;
        for (i, &(sender, payload)) in sends.iter().enumerate() {
            debug_assert!((sender as usize) < self.n, "sender index out of range");
            let word = SimRng::block_word(base, i);
            let (recipient, attempts) = self.recipient_of(word, sender as usize);
            redraws += attempts;
            let pword = Self::packed_word(word, sender, payload, recipient);
            let bucket = recipient >> RADIX_BUCKET_BITS;
            let at = self.bucket_cursors[bucket] as usize;
            if at < (bucket + 1) * capacity {
                out.staged[at] = pword;
                self.bucket_cursors[bucket] = at as u32 + 1;
            } else {
                self.spill.push((recipient as u32, pword));
            }
        }
        tel.end(Phase::Scatter, span);
        tel.add(Event::LemireRedraws, redraws);
        tel.add(Event::RadixSpills, self.spill.len() as u64);
        if tel.is_enabled() {
            let high_water = (0..bucket_count)
                .map(|b| u64::from(self.bucket_cursors[b]) - (b * capacity) as u64)
                .max()
                .unwrap_or(0);
            tel.observe_max(Event::StagingHighWater, high_water);
        }

        // Phases 2 + 3 — per bucket: max-resolve staged (+ spilled) words
        // in the resident window, then sweep-emit in recipient order.
        let span = tel.begin();
        let window_len = 1usize << RADIX_BUCKET_BITS;
        let offset_mask = (1u64 << RADIX_BUCKET_BITS) - 1;
        let mut accepted_len = 0usize;
        for b in 0..bucket_count {
            let start = b * capacity;
            let end = self.bucket_cursors[b] as usize;
            let bucket_base = b << RADIX_BUCKET_BITS;
            let span = window_len.min(self.n - bucket_base);
            for at in start..end {
                let pword = out.staged[at];
                let slot = &mut self.slots[(pword & offset_mask) as usize];
                *slot = (*slot).max(pword);
            }
            if !self.spill.is_empty() {
                for &(recipient, pword) in &self.spill {
                    if (recipient >> RADIX_BUCKET_BITS) as usize == b {
                        let slot = &mut self.slots[(recipient & bucket_mask) as usize];
                        *slot = (*slot).max(pword);
                    }
                }
            }
            for off in 0..span {
                let pword = self.slots[off];
                self.slots[off] = 0;
                out.buffer[accepted_len] = Self::delivery_of(pword, bucket_base + off);
                accepted_len += usize::from(pword != 0);
            }
        }

        out.accepted_len = accepted_len;
        out.sent = m as u64;
        out.collided = m as u64 - accepted_len as u64;
        tel.end(Phase::WindowResolve, span);
    }

    /// Routes one round like [`route_into`](GossipScheduler::route_into),
    /// fanning the radix path's phases across `pool`'s lanes.
    ///
    /// Bit-identical to the sequential `route_into` for **any** pool width —
    /// same deliveries, same emission order, same collision counts, same
    /// post-round RNG state — so a caller can thread any thread budget
    /// through without perturbing seeded results.  The thread-count
    /// invariance suite in `tests/radix_routing.rs` pins this across
    /// lanes × population × density.
    pub fn route_into_parallel(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        pool: &RoundPool,
    ) {
        self.route_into_parallel_with(sends, rng, out, pool, &mut Telemetry::off());
    }

    /// [`route_into_parallel`](GossipScheduler::route_into_parallel) with
    /// phase timing and event counting through `tel`.
    pub fn route_into_parallel_with(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        pool: &RoundPool,
        tel: &mut Telemetry,
    ) {
        if self.n >= RADIX_MIN_N && self.is_dense(sends.len()) {
            self.route_into_radix_parallel_with(sends, rng, out, pool, tel);
        } else {
            self.route_into_single_pass_with(sends, rng, out, tel);
        }
    }

    /// The parallel radix routing path: the same three phases as
    /// [`route_into_radix`](GossipScheduler::route_into_radix), each fanned
    /// out across the pool's lanes, bit-identical to both sequential paths
    /// from an equal RNG state for every lane count.
    ///
    /// Determinism is by construction, not by scheduling discipline:
    ///
    /// * **Scatter** — lane `w` draws the words for its message range
    ///   straight from the round's reserved counter base
    ///   ([`SimRng::reserve_block`]/[`SimRng::block_word`]), so message
    ///   `i`'s word — and, through the per-message redraw chain, its
    ///   recipient — is identical no matter which lane processes it.  Each
    ///   lane stages packed words into its own fixed-capacity bucket areas
    ///   (a private slice of the staging array), overflow going to its
    ///   private spill list.
    /// * **Resolve** — lanes own disjoint contiguous bucket ranges of the
    ///   population-wide slot array and `max`-fold every lane's staging
    ///   areas (plus every spill list) for their buckets.  `max` is
    ///   commutative and associative, so the merged slot values cannot
    ///   depend on lane count or interleaving; the per-bucket accepted
    ///   counts fall out of the fold for free (a slot's first arrival
    ///   counts it).
    /// * **Emit** — a sequential prefix sum over the per-bucket counts
    ///   (micro-work: one add per 2¹³ agents) fixes every bucket's emission
    ///   offset, then lanes sweep their bucket ranges into disjoint regions
    ///   of the output buffer, zeroing slots as they go.  Global emission
    ///   order is exactly the sequential sweep's recipient order.
    ///
    /// Sparse rounds delegate to the single-pass path (as the sequential
    /// radix path does), empty and single-lane rounds to the sequential
    /// radix path.  Public so the invariance tests and benches can force
    /// this path below [`RADIX_MIN_N`]; like `route_into_radix` it accepts
    /// any population the scheduler accepts.
    pub fn route_into_radix_parallel(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        pool: &RoundPool,
    ) {
        self.route_into_radix_parallel_with(sends, rng, out, pool, &mut Telemetry::off());
    }

    /// [`route_into_radix_parallel`](GossipScheduler::route_into_radix_parallel)
    /// with phase timing and event counting through `tel`: the three pool
    /// dispatches map onto [`Phase::Scatter`], [`Phase::WindowResolve`] and
    /// [`Phase::SweepEmit`].
    pub fn route_into_radix_parallel_with(
        &mut self,
        sends: &[(u32, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
        pool: &RoundPool,
        tel: &mut Telemetry,
    ) {
        let m = sends.len();
        if !self.is_dense(m) {
            self.route_into_single_pass_with(sends, rng, out, tel);
            return;
        }
        if m == 0 || pool.workers() == 1 {
            self.route_into_radix_with(sends, rng, out, tel);
            return;
        }
        self.grow_buffer(out);
        let n = self.n;
        let window = 1usize << RADIX_BUCKET_BITS;
        let bucket_count = n.div_ceil(window);
        let lanes = pool.workers().min(m);
        let chunk_len = m.div_ceil(lanes);
        let lanes = m.div_ceil(chunk_len);
        let capacity = Self::radix_bucket_capacity(n, chunk_len);
        #[cfg(test)]
        let capacity = self.forced_bucket_capacity.unwrap_or(capacity);
        let region_len = bucket_count * capacity;
        let staged_len = lanes * region_len;
        if out.staged.len() < staged_len {
            out.staged.resize(staged_len, 0);
        }
        self.reserve_parallel(lanes);
        let tspan = tel.begin();
        let base = rng.reserve_block(m);
        tel.end(Phase::RngReserve, tspan);
        let (span, threshold) = (self.span, self.threshold);

        // Phase 1 — parallel scatter: lane `w` stages messages
        // `[w·chunk_len, (w+1)·chunk_len)` into its private bucket areas.
        // Each lane counts its own rejection redraws into a private slot
        // (stack array — no allocation, no sharing).
        let mut lane_redraws = [0u64; MAX_WORKERS];
        let tspan = tel.begin();
        {
            let staged = &mut out.staged[..staged_len];
            let cursors = &mut self.bucket_cursors[..lanes * bucket_count];
            let spills = &mut self.spills[..lanes];
            let tasks = staged
                .chunks_mut(region_len)
                .zip(cursors.chunks_mut(bucket_count))
                .zip(spills.iter_mut())
                .zip(sends.chunks(chunk_len))
                .zip(lane_redraws.iter_mut())
                .enumerate()
                .map(|(lane, ((((staged, cursors), spill), sends), redraws))| {
                    (lane * chunk_len, staged, cursors, spill, sends, redraws)
                });
            pool.run(
                tasks,
                |_, (first, staged, cursors, spill, sends, redraws)| {
                    for (b, cursor) in cursors.iter_mut().enumerate() {
                        *cursor = (b * capacity) as u32;
                    }
                    spill.clear();
                    let mut lane_attempts = 0u64;
                    for (i, &(sender, payload)) in sends.iter().enumerate() {
                        debug_assert!((sender as usize) < n, "sender index out of range");
                        let word = SimRng::block_word(base, first + i);
                        let (recipient, attempts) =
                            Self::draw_recipient(word, sender as usize, span, threshold);
                        lane_attempts += attempts;
                        let pword = Self::packed_word(word, sender, payload, recipient);
                        let bucket = recipient >> RADIX_BUCKET_BITS;
                        let at = cursors[bucket] as usize;
                        if at < (bucket + 1) * capacity {
                            staged[at] = pword;
                            cursors[bucket] = at as u32 + 1;
                        } else {
                            spill.push((recipient as u32, pword));
                        }
                    }
                    *redraws = lane_attempts;
                },
            );
        }
        tel.end(Phase::Scatter, tspan);
        tel.add(Event::LemireRedraws, lane_redraws[..lanes].iter().sum());
        tel.add(
            Event::RadixSpills,
            self.spills[..lanes].iter().map(|s| s.len() as u64).sum(),
        );
        if tel.is_enabled() {
            let cursors = &self.bucket_cursors[..lanes * bucket_count];
            let high_water = (0..lanes * bucket_count)
                .map(|at| u64::from(cursors[at]) - ((at % bucket_count) * capacity) as u64)
                .max()
                .unwrap_or(0);
            tel.observe_max(Event::StagingHighWater, high_water);
        }

        // Phase 2 — parallel resolve: lanes own disjoint contiguous bucket
        // ranges and max-fold every lane's staging (and spills) for their
        // buckets, counting each slot's first arrival.
        let tspan = tel.begin();
        let bucket_chunk = bucket_count.div_ceil(lanes);
        {
            let staged = &out.staged[..staged_len];
            let cursors = &self.bucket_cursors[..lanes * bucket_count];
            let spills = &self.spills[..lanes];
            let slots = &mut self.slots[..n];
            let accepted = &mut self.bucket_accepted[..bucket_count];
            let tasks = slots
                .chunks_mut(bucket_chunk << RADIX_BUCKET_BITS)
                .zip(accepted.chunks_mut(bucket_chunk))
                .enumerate()
                .map(|(range, (slots, accepted))| (range * bucket_chunk, slots, accepted));
            pool.run(tasks, |_, (bucket_lo, slots, accepted)| {
                let offset_mask = (1u64 << RADIX_BUCKET_BITS) - 1;
                for ((b_rel, wslots), count_slot) in slots
                    .chunks_mut(window)
                    .enumerate()
                    .zip(accepted.iter_mut())
                {
                    let b = bucket_lo + b_rel;
                    let mut count = 0u32;
                    for lane in 0..lanes {
                        let start = lane * region_len + b * capacity;
                        let end = lane * region_len + cursors[lane * bucket_count + b] as usize;
                        for &pword in &staged[start..end] {
                            let slot = &mut wslots[(pword & offset_mask) as usize];
                            let was = *slot;
                            *slot = was.max(pword);
                            count += u32::from(was == 0);
                        }
                    }
                    for spill in spills {
                        if spill.is_empty() {
                            continue;
                        }
                        for &(recipient, pword) in spill {
                            if (recipient as usize) >> RADIX_BUCKET_BITS == b {
                                let slot = &mut wslots[(recipient as usize) & (window - 1)];
                                let was = *slot;
                                *slot = was.max(pword);
                                count += u32::from(was == 0);
                            }
                        }
                    }
                    *count_slot = count;
                }
            });
        }

        // Sequential prefix sum over the per-bucket counts: one add per
        // bucket (2¹³ agents), negligible against the parallel phases.
        let mut total = 0u32;
        for b in 0..bucket_count {
            self.bucket_offsets[b] = total;
            total += self.bucket_accepted[b];
        }
        self.bucket_offsets[bucket_count] = total;
        let accepted_total = total as usize;
        tel.end(Phase::WindowResolve, tspan);

        // Phase 3 — parallel emit: each bucket range sweeps its windows in
        // recipient order into its exact (disjoint) region of the output
        // buffer, zeroing slots for the next round.  The write is
        // branch-free — an empty slot writes a placeholder at the current
        // position without advancing it, which the next winner overwrites —
        // and once a range has emitted its full count the remaining slots
        // are provably zero, so the sweep stops.
        let tspan = tel.begin();
        {
            let offsets = &self.bucket_offsets[..bucket_count + 1];
            let slots = &mut self.slots[..n];
            let buffer = &mut out.buffer[..accepted_total];
            let range_count = bucket_count.div_ceil(bucket_chunk);
            let region_lens = (0..range_count).map(|range| {
                let lo = range * bucket_chunk;
                let hi = (lo + bucket_chunk).min(bucket_count);
                (offsets[hi] - offsets[lo]) as usize
            });
            let tasks = slots
                .chunks_mut(bucket_chunk << RADIX_BUCKET_BITS)
                .zip(SplitMutByLens::new(buffer, region_lens))
                .enumerate()
                .map(|(range, (slots, region))| (range * bucket_chunk, slots, region));
            pool.run(tasks, |_, (bucket_lo, slots, region)| {
                let len = region.len();
                let mut at = 0usize;
                'sweep: for (b_rel, wslots) in slots.chunks_mut(window).enumerate() {
                    let bucket_base = (bucket_lo + b_rel) << RADIX_BUCKET_BITS;
                    for (off, slot) in wslots.iter_mut().enumerate() {
                        if at == len {
                            break 'sweep;
                        }
                        let pword = *slot;
                        *slot = 0;
                        region[at] = Self::delivery_of(pword, bucket_base + off);
                        at += usize::from(pword != 0);
                    }
                }
                debug_assert_eq!(at, len, "emitted deliveries diverged from resolve counts");
            });
        }

        out.accepted_len = accepted_total;
        out.sent = m as u64;
        out.collided = m as u64 - accepted_total as u64;
        tel.end(Phase::SweepEmit, tspan);
    }
}

/// Splits one mutable slice into consecutive disjoint sub-slices of the
/// given lengths — the safe-code way to hand each parallel emit range its
/// exact region of the output buffer.
struct SplitMutByLens<'a, T, I> {
    rest: &'a mut [T],
    lens: I,
}

impl<'a, T, I: Iterator<Item = usize>> SplitMutByLens<'a, T, I> {
    fn new(slice: &'a mut [T], lens: impl IntoIterator<Item = usize, IntoIter = I>) -> Self {
        Self {
            rest: slice,
            lens: lens.into_iter(),
        }
    }
}

impl<'a, T, I: Iterator<Item = usize>> Iterator for SplitMutByLens<'a, T, I> {
    type Item = &'a mut [T];

    fn next(&mut self) -> Option<&'a mut [T]> {
        let len = self.lens.next()?;
        let rest = std::mem::take(&mut self.rest);
        let (head, tail) = rest.split_at_mut(len);
        self.rest = tail;
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rejects_tiny_populations() {
        assert!(GossipScheduler::new(0).is_err());
        assert!(GossipScheduler::new(1).is_err());
        assert!(GossipScheduler::new(2).is_ok());
    }

    #[test]
    fn rejects_populations_beyond_the_31_bit_index_range() {
        // The bound is checked before any allocation, so this test does not
        // try to reserve a 2³¹-slot buffer.
        let err = GossipScheduler::new((1usize << 31) + 1).unwrap_err();
        assert!(matches!(err, FlipError::InvalidParameter { .. }), "{err}");
        assert!(err.to_string().contains("31-bit"), "{err}");
    }

    #[test]
    fn no_sends_no_deliveries() {
        let mut s = GossipScheduler::new(10).unwrap();
        let mut rng = SimRng::from_seed(0);
        let routing = s.route(&[], &mut rng);
        assert!(routing.accepted().is_empty());
        assert_eq!(routing.sent, 0);
        assert_eq!(routing.collided, 0);
    }

    #[test]
    fn never_delivers_to_sender() {
        let mut s = GossipScheduler::new(5).unwrap();
        let mut rng = SimRng::from_seed(1);
        for _ in 0..500 {
            let routing = s.route(&[(2, Opinion::One)], &mut rng);
            assert_eq!(routing.accepted().len(), 1);
            assert_ne!(routing.accepted()[0].recipient.index(), 2);
            assert_eq!(routing.accepted()[0].sender.index(), 2);
        }
    }

    #[test]
    fn each_recipient_accepts_at_most_one_message() {
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(2);
        // All four agents push, so collisions are very likely.
        let sends: Vec<(u32, Opinion)> = (0..4).map(|i| (i, Opinion::Zero)).collect();
        for _ in 0..200 {
            let routing = s.route(&sends, &mut rng);
            let mut seen = [0u32; 4];
            for d in routing.accepted() {
                seen[d.recipient.index()] += 1;
            }
            assert!(seen.iter().all(|&c| c <= 1));
            assert_eq!(
                routing.sent,
                routing.accepted().len() as u64 + routing.collided
            );
        }
    }

    #[test]
    fn recipients_are_roughly_uniform() {
        let mut s = GossipScheduler::new(6).unwrap();
        let mut rng = SimRng::from_seed(3);
        let mut counts = [0u32; 6];
        let trials = 30_000;
        for _ in 0..trials {
            let routing = s.route(&[(0, Opinion::One)], &mut rng);
            counts[routing.accepted()[0].recipient.index()] += 1;
        }
        assert_eq!(counts[0], 0);
        let expected = trials as f64 / 5.0;
        for &c in &counts[1..] {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.1,
                "counts = {counts:?}"
            );
        }
    }

    #[test]
    fn collision_winner_is_roughly_uniform() {
        // Two senders pushing into a 3-agent population collide at agent 2
        // whenever both messages land there; the reservoir priority must pick
        // each sender's message about half the time.
        let mut s = GossipScheduler::new(3).unwrap();
        let mut rng = SimRng::from_seed(4);
        let mut winner_counts = [0u32; 3];
        let mut total = 0u32;
        for _ in 0..30_000 {
            let routing = s.route(&[(0, Opinion::Zero), (1, Opinion::One)], &mut rng);
            for d in routing.accepted() {
                if d.recipient.index() == 2 && routing.collided == 1 {
                    // Both messages landed on agent 2; record who won.
                    winner_counts[d.sender.index()] += 1;
                    total += 1;
                }
            }
        }
        assert!(total > 5_000, "collisions should be frequent, got {total}");
        let share0 = f64::from(winner_counts[0]) / f64::from(total);
        assert!((share0 - 0.5).abs() < 0.05, "share0 = {share0}");
    }

    #[test]
    fn three_way_collision_winner_is_roughly_uniform() {
        // Three senders in a 4-agent population: conditioned on all three
        // messages landing on agent 3, each must win 1/3 of the time.
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(5);
        let sends = [(0u32, Opinion::Zero), (1, Opinion::One), (2, Opinion::Zero)];
        let mut winner_counts = [0u32; 4];
        let mut total = 0u32;
        for _ in 0..60_000 {
            let routing = s.route(&sends, &mut rng);
            if routing.collided == 2 && routing.accepted()[0].recipient.index() == 3 {
                winner_counts[routing.accepted()[0].sender.index()] += 1;
                total += 1;
            }
        }
        assert!(total > 1_000, "three-way collisions observed: {total}");
        for (sender, &count) in winner_counts.iter().take(3).enumerate() {
            let share = f64::from(count) / f64::from(total);
            assert!(
                (share - 1.0 / 3.0).abs() < 0.05,
                "sender {sender} share = {share}"
            );
        }
    }

    #[test]
    fn route_into_reuses_the_output_buffer() {
        let mut s = GossipScheduler::new(16).unwrap();
        let mut rng = SimRng::from_seed(7);
        let sends: Vec<(u32, Opinion)> = (0..16).map(|i| (i, Opinion::One)).collect();
        let mut out = RoundRouting::with_capacity(16);
        let capacity = out.buffer.capacity();
        for _ in 0..100 {
            s.route_into(&sends, &mut rng, &mut out);
            assert_eq!(out.sent, 16);
            assert_eq!(out.sent, out.accepted().len() as u64 + out.collided);
            assert_eq!(
                out.buffer.capacity(),
                capacity,
                "routing buffer must never reallocate at capacity n"
            );
        }
    }

    #[test]
    fn route_and_route_into_agree_from_equal_rng_states() {
        let mut s1 = GossipScheduler::new(8).unwrap();
        let mut s2 = GossipScheduler::new(8).unwrap();
        let mut rng1 = SimRng::from_seed(9);
        let mut rng2 = SimRng::from_seed(9);
        let sends: Vec<(u32, Opinion)> = (0..8).map(|i| (i, Opinion::Zero)).collect();
        let mut out = RoundRouting::default();
        for _ in 0..20 {
            let fresh = s1.route(&sends, &mut rng1);
            s2.route_into(&sends, &mut rng2, &mut out);
            assert_eq!(fresh, out);
        }
    }

    /// Routes `sends` through both paths from equal RNG states and asserts
    /// routing and stream agree bit for bit.
    fn assert_paths_agree(n: usize, sends: &[(u32, Opinion)], seed: u64, rounds: usize) {
        let mut single = GossipScheduler::new(n).unwrap();
        let mut radix = GossipScheduler::new(n).unwrap();
        let mut rng_single = SimRng::from_seed(seed);
        let mut rng_radix = SimRng::from_seed(seed);
        let mut out_single = RoundRouting::with_capacity(n);
        let mut out_radix = RoundRouting::with_capacity(n);
        for round in 0..rounds {
            single.route_into_single_pass(sends, &mut rng_single, &mut out_single);
            radix.route_into_radix(sends, &mut rng_radix, &mut out_radix);
            assert_eq!(
                out_single, out_radix,
                "n = {n}, round {round}: routings diverged"
            );
            assert_eq!(
                rng_single.next_u64(),
                rng_radix.next_u64(),
                "n = {n}, round {round}: RNG streams diverged"
            );
        }
    }

    #[test]
    fn parallel_radix_agrees_with_both_sequential_paths() {
        // Unit-level smoke for the parallel path (the full thread-count ×
        // population × density matrix lives in `tests/radix_routing.rs`):
        // 3 lanes over a small population must match the sequential radix
        // path bit for bit, dense and sparse.
        let pool = RoundPool::new(3);
        for n in [100usize, 1_000, 8_192 + 7] {
            let all: Vec<(u32, Opinion)> = (0..n as u32)
                .map(|i| (i, Opinion::from_bit(u8::from(i % 3 == 0))))
                .collect();
            let sparse: Vec<(u32, Opinion)> = (0..n as u32)
                .step_by(17)
                .map(|i| (i, Opinion::One))
                .collect();
            for sends in [&all[..], &sparse[..], &[], &all[..1]] {
                let mut sequential = GossipScheduler::new(n).unwrap();
                let mut parallel = GossipScheduler::new(n).unwrap();
                let mut rng_seq = SimRng::from_seed(0x9A7 ^ n as u64);
                let mut rng_par = SimRng::from_seed(0x9A7 ^ n as u64);
                let mut out_seq = RoundRouting::with_capacity(n);
                let mut out_par = RoundRouting::with_capacity(n);
                for round in 0..3 {
                    sequential.route_into_radix(sends, &mut rng_seq, &mut out_seq);
                    parallel.route_into_radix_parallel(sends, &mut rng_par, &mut out_par, &pool);
                    assert_eq!(out_seq, out_par, "n = {n}, round {round}");
                    assert_eq!(rng_seq.next_u64(), rng_par.next_u64(), "n = {n}");
                }
            }
        }
    }

    #[test]
    fn parallel_radix_resolves_forced_spills_identically() {
        // Starve the per-lane bucket capacity so every lane's spill list
        // carries real traffic, and require the merged result to stay
        // bit-identical to the sequential single-pass path.
        let n = (1usize << RADIX_BUCKET_BITS) + 7;
        let sends: Vec<(u32, Opinion)> = (0..n as u32)
            .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
            .collect();
        let pool = RoundPool::new(4);
        let mut single = GossipScheduler::new(n).unwrap();
        let mut parallel = GossipScheduler::new(n).unwrap();
        parallel.forced_bucket_capacity = Some(8);
        let mut rng_single = SimRng::from_seed(0x5F13);
        let mut rng_par = SimRng::from_seed(0x5F13);
        let mut out_single = RoundRouting::with_capacity(n);
        let mut out_par = RoundRouting::with_capacity(n);
        for round in 0..4 {
            single.route_into_single_pass(&sends, &mut rng_single, &mut out_single);
            parallel.route_into_radix_parallel(&sends, &mut rng_par, &mut out_par, &pool);
            let spilled: usize = parallel.spills.iter().map(Vec::len).sum();
            assert!(
                spilled > 1_000,
                "round {round}: the starved capacity must actually spill, got {spilled}"
            );
            assert_eq!(out_single, out_par, "round {round}");
            assert_eq!(rng_single.next_u64(), rng_par.next_u64());
        }
    }

    #[test]
    fn radix_and_single_pass_agree_from_equal_rng_states() {
        for n in [100usize, 1_000, 8_192, 10_000] {
            let all: Vec<(u32, Opinion)> = (0..n as u32)
                .map(|i| (i, Opinion::from_bit(u8::from(i % 3 == 0))))
                .collect();
            let sparse: Vec<(u32, Opinion)> = (0..n as u32)
                .step_by(7)
                .map(|i| (i, Opinion::One))
                .collect();
            assert_paths_agree(n, &all, 0xABCD ^ n as u64, 5);
            assert_paths_agree(n, &sparse, 0x1234 ^ n as u64, 5);
            assert_paths_agree(n, &[], 7, 2);
            assert_paths_agree(n, &[(n as u32 / 2, Opinion::One)], 8, 20);
        }
    }

    #[test]
    fn route_into_dispatches_by_population_without_changing_results() {
        // Below the crossover `route_into` is the single-pass path, at or
        // above it the radix path; both facts are observable only through
        // bit-identity with the explicitly invoked path.
        let n = 4_096;
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::Zero)).collect();
        let mut dispatched = GossipScheduler::new(n).unwrap();
        let mut explicit = GossipScheduler::new(n).unwrap();
        let mut rng1 = SimRng::from_seed(3);
        let mut rng2 = SimRng::from_seed(3);
        let mut out1 = RoundRouting::with_capacity(n);
        let mut out2 = RoundRouting::with_capacity(n);
        for _ in 0..3 {
            dispatched.route_into(&sends, &mut rng1, &mut out1);
            explicit.route_into_single_pass(&sends, &mut rng2, &mut out2);
            assert_eq!(out1, out2);
        }
    }

    #[test]
    fn radix_collision_winner_is_roughly_uniform() {
        // The radix path must implement the same exact-uniform reservoir:
        // two senders colliding at agent 2 split the wins about evenly.
        let mut s = GossipScheduler::new(3).unwrap();
        let mut rng = SimRng::from_seed(4);
        let mut out = RoundRouting::with_capacity(3);
        let mut winner_counts = [0u32; 3];
        let mut total = 0u32;
        for _ in 0..30_000 {
            s.route_into_radix(&[(0, Opinion::Zero), (1, Opinion::One)], &mut rng, &mut out);
            for d in out.accepted() {
                if d.recipient.index() == 2 && out.collided == 1 {
                    winner_counts[d.sender.index()] += 1;
                    total += 1;
                }
            }
        }
        assert!(total > 5_000, "collisions should be frequent, got {total}");
        let share0 = f64::from(winner_counts[0]) / f64::from(total);
        assert!((share0 - 0.5).abs() < 0.05, "share0 = {share0}");
    }

    #[test]
    fn dense_rounds_emit_in_recipient_order_sparse_in_arrival_order() {
        let n = 64;
        let mut s = GossipScheduler::new(n).unwrap();
        let mut rng = SimRng::from_seed(11);
        // Dense: everyone sends; accepted recipients must come out sorted.
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
        let routing = s.route(&sends, &mut rng);
        let recipients: Vec<usize> = routing
            .accepted()
            .iter()
            .map(|d| d.recipient.index())
            .collect();
        let mut sorted = recipients.clone();
        sorted.sort_unstable();
        assert_eq!(recipients, sorted, "dense emission is recipient-ordered");

        // Sparse: a handful of senders; every send is its own first arrival
        // with high probability, and sparse rounds emit one delivery per
        // distinct recipient in arrival order.
        let sparse = [(0u32, Opinion::One), (1, Opinion::Zero)];
        let routing = s.route(&sparse, &mut rng);
        assert!(routing.accepted().len() <= 2);
        assert_eq!(
            routing.sent,
            routing.accepted().len() as u64 + routing.collided
        );
    }

    #[test]
    fn spilled_radix_messages_still_resolve_exactly() {
        // A correctly sized capacity makes natural spills ~6σ events, so
        // force the spill path: shrink every bucket's staging area to a
        // handful of entries and require the radix result (now resolved
        // almost entirely through the spill list, across two buckets) to
        // stay bit-identical to the single-pass path.
        let n = (1usize << RADIX_BUCKET_BITS) + 7;
        let sends: Vec<(u32, Opinion)> = (0..n as u32)
            .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
            .collect();
        // Sanity: the honest capacity never spills on this workload ...
        assert_paths_agree(n, &sends, 0x5F11, 4);

        // ... and a starved capacity spills thousands of messages per
        // round yet still resolves identically.
        let mut single = GossipScheduler::new(n).unwrap();
        let mut radix = GossipScheduler::new(n).unwrap();
        radix.forced_bucket_capacity = Some(8);
        let mut rng_single = SimRng::from_seed(0x5F12);
        let mut rng_radix = SimRng::from_seed(0x5F12);
        let mut out_single = RoundRouting::with_capacity(n);
        let mut out_radix = RoundRouting::with_capacity(n);
        for round in 0..4 {
            single.route_into_single_pass(&sends, &mut rng_single, &mut out_single);
            radix.route_into_radix(&sends, &mut rng_radix, &mut out_radix);
            assert!(
                radix.spill.len() > 1_000,
                "round {round}: the starved capacity must actually spill, got {}",
                radix.spill.len()
            );
            assert_eq!(out_single, out_radix, "round {round}");
            assert_eq!(rng_single.next_u64(), rng_radix.next_u64());
        }
    }

    #[test]
    fn telemetry_counts_forced_spills_without_perturbing_deliveries() {
        // Same starved-capacity workload as above, but routed through the
        // instrumented entry point: the spill counter must see every
        // overflowed message, the staging high-water must pin at the forced
        // capacity, and — the load-bearing half — deliveries and the RNG
        // stream must stay bit-identical to the uninstrumented scheduler.
        let n = (1usize << RADIX_BUCKET_BITS) + 7;
        let sends: Vec<(u32, Opinion)> = (0..n as u32)
            .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
            .collect();
        let mut plain = GossipScheduler::new(n).unwrap();
        let mut instrumented = GossipScheduler::new(n).unwrap();
        plain.forced_bucket_capacity = Some(8);
        instrumented.forced_bucket_capacity = Some(8);
        let mut tel = Telemetry::enabled();
        let mut rng_plain = SimRng::from_seed(0x5F14);
        let mut rng_inst = SimRng::from_seed(0x5F14);
        let mut out_plain = RoundRouting::with_capacity(n);
        let mut out_inst = RoundRouting::with_capacity(n);
        let rounds = 3u64;
        for round in 0..rounds {
            plain.route_into_radix(&sends, &mut rng_plain, &mut out_plain);
            instrumented.route_into_radix_with(&sends, &mut rng_inst, &mut out_inst, &mut tel);
            assert_eq!(out_plain, out_inst, "round {round}");
            assert_eq!(rng_plain.next_u64(), rng_inst.next_u64(), "round {round}");
        }
        let recorder = tel.recorder().expect("telemetry is enabled");
        assert!(
            recorder.event(Event::RadixSpills) > 1_000 * rounds,
            "starved capacity must spill thousands per round, counted {}",
            recorder.event(Event::RadixSpills)
        );
        assert_eq!(
            recorder.event(Event::StagingHighWater),
            8,
            "high water saturates at the forced capacity"
        );
        for phase in [Phase::RngReserve, Phase::Scatter, Phase::WindowResolve] {
            assert_eq!(
                recorder.phases().get(phase).count,
                rounds,
                "{phase} must be timed once per round"
            );
        }
    }

    #[test]
    fn buffers_reset_between_rounds() {
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(5);
        let r1 = s.route(&[(0, Opinion::One), (1, Opinion::One)], &mut rng);
        assert!(r1.sent == 2);
        let r2 = s.route(&[], &mut rng);
        assert!(r2.accepted().is_empty());
        assert_eq!(r2.sent, 0);
        assert_eq!(r2.collided, 0);
    }

    /// Property coverage of the packed reservoir word, the unit the whole
    /// routing design (and its parallel merge) rests on: encoding must
    /// round-trip every field, and `max`-resolution must be a commutative,
    /// associative fold with `0` as identity — that algebra is exactly what
    /// lets worker lanes stage and merge words in any order bit-identically.
    mod packed_word_properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_opinion() -> impl Strategy<Value = Opinion> {
            prop_oneof![Just(Opinion::Zero), Just(Opinion::One)]
        }

        /// Packs an arbitrary `(priority word, sender, payload, recipient)`
        /// tuple the way the routing paths do.
        fn pack(word: u64, sender: u32, payload: Opinion, recipient: usize) -> u64 {
            GossipScheduler::packed_word(word, sender, payload, recipient)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Encode → decode reproduces the sender, the payload and the
            /// in-bucket offset for the full 31-bit sender/recipient range,
            /// and a packed word is never the `0` "no arrival" sentinel.
            #[test]
            fn packed_words_round_trip(
                word in 0u64..u64::MAX,
                sender in 0u32..0x8000_0000,
                payload in arb_opinion(),
                recipient in 0usize..(1 << 31),
            ) {
                let pword = pack(word, sender, payload, recipient);
                // The low priority bit is forced on, so a packed word can
                // never alias the sentinel.
                prop_assert_ne!(pword, 0);
                let delivery = GossipScheduler::delivery_of(pword, recipient);
                prop_assert_eq!(delivery.sender.index(), sender as usize);
                prop_assert_eq!(delivery.recipient.index(), recipient);
                prop_assert_eq!(delivery.payload, payload);
                // The low 14 bits carry the recipient's offset inside its
                // radix bucket, and the top 18 the (low-bit-forced) priority.
                let mask = (1u64 << RADIX_BUCKET_BITS) - 1;
                prop_assert_eq!(pword & mask, recipient as u64 & mask);
                prop_assert_eq!(pword >> 46, (word >> 46) | 1);
            }

            /// `max` resolution is order-independent: folding the same
            /// messages shuffled, sorted, reversed, or split at any pivot
            /// (two lanes merged afterwards — the parallel path's shape)
            /// always yields the same winner, and `0` slots are an identity.
            #[test]
            fn max_resolution_is_commutative_and_associative(
                messages in proptest::collection::vec(
                    (0u64..u64::MAX, 0u32..0x8000_0000, arb_opinion(), 0usize..(1 << 31)),
                    0..40,
                ),
                rotation in 0usize..40,
                pivot in 0usize..40,
            ) {
                let packed: Vec<u64> = messages
                    .iter()
                    .map(|&(w, s, p, r)| pack(w, s, p, r))
                    .collect();
                let fold = |words: &[u64]| words.iter().fold(0u64, |slot, &w| slot.max(w));

                let reference = fold(&packed);
                // Commutativity: any reordering folds to the same winner.
                let mut rotated = packed.clone();
                if !rotated.is_empty() {
                    let mid = rotation % rotated.len();
                    rotated.rotate_left(mid);
                }
                prop_assert_eq!(fold(&rotated), reference);
                let mut sorted = packed.clone();
                sorted.sort_unstable();
                prop_assert_eq!(fold(&sorted), reference);
                sorted.reverse();
                prop_assert_eq!(fold(&sorted), reference);
                // Associativity: fold two disjoint lanes, then merge —
                // exactly how the parallel resolve combines staging areas.
                let cut = pivot.min(packed.len());
                let (lane_a, lane_b) = packed.split_at(cut);
                prop_assert_eq!(fold(lane_a).max(fold(lane_b)), reference);
                // Zero is the identity the empty slots provide: folding
                // extra sentinel words in cannot move the winner.
                let mut with_sentinels = vec![0u64];
                with_sentinels.extend_from_slice(&packed);
                with_sentinels.push(0);
                prop_assert_eq!(fold(&with_sentinels), reference);
                if !packed.is_empty() {
                    // Real arrivals never fold back down to the sentinel.
                    prop_assert_ne!(reference, 0);
                }
            }
        }
    }
}
