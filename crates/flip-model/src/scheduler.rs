//! Push-gossip routing with per-recipient collision resolution.

use rand::RngCore;

use crate::agent::AgentId;
use crate::error::FlipError;
use crate::opinion::Opinion;
use crate::rng::SimRng;

/// A message accepted by its recipient in one round, before channel noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The agent that pushed the message.
    pub sender: AgentId,
    /// The agent that accepted the message.
    pub recipient: AgentId,
    /// The transmitted opinion as it left the sender (noise is applied later).
    pub payload: Opinion,
}

const PLACEHOLDER: Delivery = Delivery {
    sender: AgentId::new(0),
    recipient: AgentId::new(0),
    payload: Opinion::Zero,
};

/// The outcome of routing one round of push gossip.
///
/// Designed for reuse: [`GossipScheduler::route_into`] refills an existing
/// instance, so a long-running simulation routes every round into one buffer
/// with zero per-round allocation.  The accepted messages live in a
/// population-sized build buffer (whose tail doubles as the routing loop's
/// discard slot) and are exposed as the [`accepted`](RoundRouting::accepted)
/// prefix slice.
#[derive(Debug, Clone, Default)]
pub struct RoundRouting {
    /// Build buffer: `accepted_len` live entries, then scratch (the very
    /// last entry is the discard slot for losing reservoir writes).
    buffer: Vec<Delivery>,
    accepted_len: usize,
    /// Number of messages pushed this round.
    pub sent: u64,
    /// Number of messages dropped because their recipient accepted another one.
    pub collided: u64,
}

impl RoundRouting {
    /// An empty routing pre-sized for a population of `capacity` agents (at
    /// most one accepted message per recipient, so routing into it can never
    /// allocate).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buffer: vec![PLACEHOLDER; capacity + 1],
            accepted_len: 0,
            sent: 0,
            collided: 0,
        }
    }

    /// Messages accepted by their recipients (one per receiving agent at most).
    #[must_use]
    pub fn accepted(&self) -> &[Delivery] {
        &self.buffer[..self.accepted_len]
    }

    /// Mutable view of the accepted messages (the engine corrupts payloads in
    /// place when applying channel noise).
    #[must_use]
    pub fn accepted_mut(&mut self) -> &mut [Delivery] {
        &mut self.buffer[..self.accepted_len]
    }
}

impl PartialEq for RoundRouting {
    fn eq(&self, other: &Self) -> bool {
        // Only the live prefix is meaningful; the scratch tail is garbage.
        self.sent == other.sent
            && self.collided == other.collided
            && self.accepted() == other.accepted()
    }
}

impl Eq for RoundRouting {}

/// Per-recipient routing state for one round, packed into a single 8-byte
/// word so each message touches exactly one random cache location.
#[derive(Debug, Clone, Copy, Default)]
struct RecipientSlot {
    /// Highest reservoir priority seen at this agent this round (`0` = no
    /// arrivals yet; drawn priorities always have their low bit set).
    priority: u32,
    /// Message index (into the round's `sends`) of the arrival currently
    /// winning this agent's reservoir; reset to `0` with `priority`.
    winner: u32,
}

/// Routes pushed messages to uniformly random recipients and resolves collisions.
///
/// The scheduler implements exactly the interaction pattern of the paper
/// (§1.3.2): each pushed message is addressed to an agent chosen uniformly at
/// random among the *other* `n − 1` agents, and an agent that receives several
/// messages in the same round accepts one of them chosen uniformly at random.
///
/// # Hot-path design
///
/// One batched [`SimRng::fill_u64`] pass draws one word per message; the low
/// half maps to the recipient with a cached-threshold 32-bit Lemire
/// multiply-shift (exact — the rare rejection redraws from the live stream)
/// and the high half becomes the message's *reservoir priority*.  A
/// recipient keeps the highest-priority message that reached it, which picks
/// a uniformly random arrival (priorities are i.i.d. uniform) without any
/// per-collision RNG call.  The routing loop itself is free of
/// data-dependent branches: winners and losers both store, losers into the
/// buffer's discard slot, selected by conditional moves.
///
/// The scheduler reuses internal buffers across rounds, so a single instance
/// should be kept for the lifetime of a simulation.
#[derive(Debug, Clone)]
pub struct GossipScheduler {
    n: usize,
    /// `n − 1` (the recipient span), as the 32-bit Lemire multiplier.
    span: u32,
    /// `2^32 mod span`: the cached Lemire rejection threshold.
    threshold: u32,
    /// Per-recipient reservoir state for the current round.
    slots: Vec<RecipientSlot>,
    /// Recipient of each message this round (one entry per send).
    recipients: Vec<u32>,
    /// One random word per message, filled in a single batched pass.
    words: Vec<u64>,
}

impl GossipScheduler {
    /// Creates a scheduler for a population of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if `n < 2`, or
    /// [`FlipError::InvalidParameter`] if `n` exceeds the 32-bit routing
    /// index range (`n − 1` must fit in a `u32`).
    pub fn new(n: usize) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        let Ok(span) = u32::try_from(n - 1) else {
            return Err(FlipError::InvalidParameter {
                name: "population",
                message: format!("population {n} exceeds the u32 routing-index range"),
            });
        };
        Ok(Self {
            n,
            span,
            threshold: span.wrapping_neg() % span,
            slots: vec![RecipientSlot::default(); n],
            recipients: Vec::new(),
            words: Vec::new(),
        })
    }

    /// The population size this scheduler routes for.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Routes one round of sends into a fresh [`RoundRouting`].
    ///
    /// Equivalent to [`route_into`](GossipScheduler::route_into) with a new
    /// output buffer; hot loops should hold one `RoundRouting` and call
    /// `route_into` instead to avoid the per-round allocation.
    pub fn route(&mut self, sends: &[(usize, Opinion)], rng: &mut SimRng) -> RoundRouting {
        let mut out = RoundRouting::with_capacity(self.n);
        self.route_into(sends, rng, &mut out);
        out
    }

    /// Routes one round of sends, reusing `out`'s buffers.
    ///
    /// `sends` lists `(sender index, opinion)` pairs for every agent that chose
    /// to push a message this round.  Each message is assigned a uniformly
    /// random recipient different from its sender; each recipient keeps one
    /// arriving message uniformly at random (highest reservoir priority).
    ///
    /// After the first call with this scheduler's population, `out` never
    /// allocates again.
    pub fn route_into(
        &mut self,
        sends: &[(usize, Opinion)],
        rng: &mut SimRng,
        out: &mut RoundRouting,
    ) {
        let m = sends.len();

        // Grow the working buffers on demand; no-ops after the first round.
        if out.buffer.len() < self.n + 1 {
            out.buffer.resize(self.n + 1, PLACEHOLDER);
        }
        if self.words.len() < m {
            self.words.resize(m, 0);
            self.recipients.resize(m, 0);
        }

        // One batched pass of counter-mixed words, one word per message.
        rng.fill_u64(&mut self.words[..m]);

        // Pass 1 - scatter: update each message's recipient reservoir.
        // Nothing loop-carried depends on the (random, cache-missing) slot
        // loads, so the out-of-order core overlaps many messages at once.
        let span = self.span;
        let threshold = self.threshold;
        let words = &self.words[..m];
        for (i, &(sender, _)) in sends.iter().enumerate() {
            let word = words[i];
            debug_assert!(sender < self.n, "sender index out of range");
            // Low half of the word: uniform recipient among the other n − 1
            // agents (32-bit Lemire multiply-shift; the cold rejection path
            // redraws from the live stream to stay exactly uniform).
            let mut product = u64::from(word as u32) * u64::from(span);
            while (product as u32) < threshold {
                product = u64::from(rng.next_u64() as u32) * u64::from(span);
            }
            let mut recipient = (product >> 32) as usize;
            recipient += usize::from(recipient >= sender);

            // High half: the reservoir priority.  The forced low bit keeps
            // drawn priorities nonzero (zero means "no arrivals"); ties —
            // probability ~2⁻³¹ per colliding pair — keep the earlier
            // arrival, which preserves uniformity up to that same odds.
            let priority = ((word >> 32) as u32) | 1;

            let slot = &mut self.slots[recipient];
            let wins = priority > slot.priority;
            slot.priority = if wins { priority } else { slot.priority };
            slot.winner = if wins { i as u32 } else { slot.winner };
            self.recipients[i] = recipient as u32;
        }

        // Pass 2 — gather: walk the messages again; each recipient's first
        // occurrence reads its final winner and appends the delivery, then
        // zeroes the slot, so duplicates (and next round's reset) cost
        // nothing extra.  Branch-free: losers write to the same buffer
        // position without advancing it.
        let mut accepted_len = 0usize;
        for &recipient in &self.recipients[..m] {
            let slot = &mut self.slots[recipient as usize];
            let live = slot.priority != 0;
            // Stale slots always hold winner 0, which is in bounds for any
            // non-empty round.
            let (sender, payload) = sends[slot.winner as usize];
            *slot = RecipientSlot::default();
            out.buffer[accepted_len] = Delivery {
                sender: AgentId::new(sender),
                recipient: AgentId::new(recipient as usize),
                payload,
            };
            accepted_len += usize::from(live);
        }

        out.accepted_len = accepted_len;
        out.sent = m as u64;
        out.collided = m as u64 - accepted_len as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_populations() {
        assert!(GossipScheduler::new(0).is_err());
        assert!(GossipScheduler::new(1).is_err());
        assert!(GossipScheduler::new(2).is_ok());
    }

    #[test]
    fn no_sends_no_deliveries() {
        let mut s = GossipScheduler::new(10).unwrap();
        let mut rng = SimRng::from_seed(0);
        let routing = s.route(&[], &mut rng);
        assert!(routing.accepted().is_empty());
        assert_eq!(routing.sent, 0);
        assert_eq!(routing.collided, 0);
    }

    #[test]
    fn never_delivers_to_sender() {
        let mut s = GossipScheduler::new(5).unwrap();
        let mut rng = SimRng::from_seed(1);
        for _ in 0..500 {
            let routing = s.route(&[(2, Opinion::One)], &mut rng);
            assert_eq!(routing.accepted().len(), 1);
            assert_ne!(routing.accepted()[0].recipient.index(), 2);
            assert_eq!(routing.accepted()[0].sender.index(), 2);
        }
    }

    #[test]
    fn each_recipient_accepts_at_most_one_message() {
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(2);
        // All four agents push, so collisions are very likely.
        let sends: Vec<(usize, Opinion)> = (0..4).map(|i| (i, Opinion::Zero)).collect();
        for _ in 0..200 {
            let routing = s.route(&sends, &mut rng);
            let mut seen = [0u32; 4];
            for d in routing.accepted() {
                seen[d.recipient.index()] += 1;
            }
            assert!(seen.iter().all(|&c| c <= 1));
            assert_eq!(
                routing.sent,
                routing.accepted().len() as u64 + routing.collided
            );
        }
    }

    #[test]
    fn recipients_are_roughly_uniform() {
        let mut s = GossipScheduler::new(6).unwrap();
        let mut rng = SimRng::from_seed(3);
        let mut counts = [0u32; 6];
        let trials = 30_000;
        for _ in 0..trials {
            let routing = s.route(&[(0, Opinion::One)], &mut rng);
            counts[routing.accepted()[0].recipient.index()] += 1;
        }
        assert_eq!(counts[0], 0);
        let expected = trials as f64 / 5.0;
        for &c in &counts[1..] {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.1,
                "counts = {counts:?}"
            );
        }
    }

    #[test]
    fn collision_winner_is_roughly_uniform() {
        // Two senders pushing into a 3-agent population collide at agent 2
        // whenever both messages land there; the reservoir priority must pick
        // each sender's message about half the time.
        let mut s = GossipScheduler::new(3).unwrap();
        let mut rng = SimRng::from_seed(4);
        let mut winner_counts = [0u32; 3];
        let mut total = 0u32;
        for _ in 0..30_000 {
            let routing = s.route(&[(0, Opinion::Zero), (1, Opinion::One)], &mut rng);
            for d in routing.accepted() {
                if d.recipient.index() == 2 && routing.collided == 1 {
                    // Both messages landed on agent 2; record who won.
                    winner_counts[d.sender.index()] += 1;
                    total += 1;
                }
            }
        }
        assert!(total > 5_000, "collisions should be frequent, got {total}");
        let share0 = f64::from(winner_counts[0]) / f64::from(total);
        assert!((share0 - 0.5).abs() < 0.05, "share0 = {share0}");
    }

    #[test]
    fn three_way_collision_winner_is_roughly_uniform() {
        // Three senders in a 4-agent population: conditioned on all three
        // messages landing on agent 3, each must win 1/3 of the time.
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(5);
        let sends = [
            (0usize, Opinion::Zero),
            (1, Opinion::One),
            (2, Opinion::Zero),
        ];
        let mut winner_counts = [0u32; 4];
        let mut total = 0u32;
        for _ in 0..60_000 {
            let routing = s.route(&sends, &mut rng);
            if routing.collided == 2 && routing.accepted()[0].recipient.index() == 3 {
                winner_counts[routing.accepted()[0].sender.index()] += 1;
                total += 1;
            }
        }
        assert!(total > 1_000, "three-way collisions observed: {total}");
        for (sender, &count) in winner_counts.iter().take(3).enumerate() {
            let share = f64::from(count) / f64::from(total);
            assert!(
                (share - 1.0 / 3.0).abs() < 0.05,
                "sender {sender} share = {share}"
            );
        }
    }

    #[test]
    fn route_into_reuses_the_output_buffer() {
        let mut s = GossipScheduler::new(16).unwrap();
        let mut rng = SimRng::from_seed(7);
        let sends: Vec<(usize, Opinion)> = (0..16).map(|i| (i, Opinion::One)).collect();
        let mut out = RoundRouting::with_capacity(16);
        let capacity = out.buffer.capacity();
        for _ in 0..100 {
            s.route_into(&sends, &mut rng, &mut out);
            assert_eq!(out.sent, 16);
            assert_eq!(out.sent, out.accepted().len() as u64 + out.collided);
            assert_eq!(
                out.buffer.capacity(),
                capacity,
                "routing buffer must never reallocate at capacity n"
            );
        }
    }

    #[test]
    fn route_and_route_into_agree_from_equal_rng_states() {
        let mut s1 = GossipScheduler::new(8).unwrap();
        let mut s2 = GossipScheduler::new(8).unwrap();
        let mut rng1 = SimRng::from_seed(9);
        let mut rng2 = SimRng::from_seed(9);
        let sends: Vec<(usize, Opinion)> = (0..8).map(|i| (i, Opinion::Zero)).collect();
        let mut out = RoundRouting::default();
        for _ in 0..20 {
            let fresh = s1.route(&sends, &mut rng1);
            s2.route_into(&sends, &mut rng2, &mut out);
            assert_eq!(fresh, out);
        }
    }

    #[test]
    fn buffers_reset_between_rounds() {
        let mut s = GossipScheduler::new(4).unwrap();
        let mut rng = SimRng::from_seed(5);
        let r1 = s.route(&[(0, Opinion::One), (1, Opinion::One)], &mut rng);
        assert!(r1.sent == 2);
        let r2 = s.route(&[], &mut rng);
        assert!(r2.accepted().is_empty());
        assert_eq!(r2.sent, 0);
        assert_eq!(r2.collided, 0);
    }
}
