//! A persistent worker pool for intra-round parallelism.
//!
//! [`RoundPool`] exists because the engine's round loop must stay
//! **allocation-free after warm-up** (pinned by `tests/zero_alloc.rs`):
//! `std::thread::scope` spawns and joins OS threads every call, which both
//! allocates on the caller and costs far more than a 64 KiB bucket's worth
//! of routing work.  The pool spawns its workers once, parks them on a
//! condvar, and dispatches one *job* (a set of disjoint borrowed tasks) per
//! routing phase; on Linux the mutex/condvar rendezvous is futex-based and
//! allocation-free, so a steady-state round performs zero allocations with
//! worker threads active.
//!
//! # Safety model
//!
//! This is the only module in the crate allowed to use `unsafe`
//! (`#![deny(unsafe_code)]` everywhere else), and the unsafety is exactly
//! the classic *scoped-task* erasure:
//!
//! * [`RoundPool::run`] type-erases a stack array of task bundles and the
//!   caller's closure behind a raw pointer + monomorphized trampoline,
//!   because the long-lived worker threads cannot name the caller's
//!   short-lived lifetimes.
//! * Soundness rests on a strict rendezvous: `run` does not return (even by
//!   panic — a drop guard enforces it) until every worker has finished its
//!   task and can no longer touch the erased context.  Workers only read
//!   the context pointer between the "job published" and "last task done"
//!   edges, both under the state mutex.
//! * Disjointness of the tasks themselves is the *caller's* obligation and
//!   is expressed in safe code: each bundle is built from `chunks_mut`-style
//!   split borrows before erasure, and task `i` is taken (moved out) by
//!   exactly one executor.
//!
//! The caller participates as worker 0 (running bundle 0 inline), so a pool
//! of `workers` uses `workers − 1` OS threads and `workers == 1` degrades
//! to plain sequential execution with no synchronisation at all.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Hard cap on pool width: task bundles live in a stack array of this many
/// slots inside [`RoundPool::run`] (heap-free dispatch), so a pool can never
/// be wider.  64 workers is far past the point where a single round's ~n
/// words of routing traffic saturates memory bandwidth.
pub const MAX_WORKERS: usize = 64;

/// A published unit of work: a type-erased context plus the trampoline that
/// knows how to execute task `index` of that context.
struct Job {
    /// Borrow of the erased `TaskSet` living on the dispatching caller's
    /// stack; valid for exactly the lifetime of the rendezvous (see module
    /// docs).
    context: *const (),
    /// Monomorphized executor: takes task `index` out of the context and
    /// runs the caller's closure on it.
    run: unsafe fn(*const (), usize),
    /// Number of task bundles in the context (caller executes bundle 0).
    tasks: usize,
    /// Generation counter distinguishing this job from the previous one, so
    /// a worker re-checking the state after finishing cannot re-run it.
    epoch: u64,
}

// SAFETY: the raw context pointer is only dereferenced through `run` by
// workers holding a task index `< tasks`, while the publishing caller blocks
// in the rendezvous keeping the pointee alive; the pointee (`TaskSet`) is
// built from `Send` task bundles and a `Sync` closure.
unsafe impl Send for Job {}

/// Shared pool state behind the mutex.
struct State {
    job: Option<Job>,
    /// Workers still executing a task of the current job.
    remaining: usize,
    /// Set when a worker's task panicked; the dispatching caller re-raises.
    panicked: bool,
    shutdown: bool,
    next_epoch: u64,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published (workers wait here).
    go: Condvar,
    /// Signalled when the last task of a job finishes (caller waits here).
    done: Condvar,
    /// When set, every executed task adds its wall time to its lane's
    /// counter below.  Off (the default) costs one relaxed load per task
    /// and never reads the clock.
    timing: AtomicBool,
    /// Per-lane busy nanoseconds, drained by
    /// [`RoundPool::drain_lane_nanos`].
    lane_nanos: [AtomicU64; MAX_WORKERS],
}

impl Shared {
    /// Executes one task through `run`, timing it when enabled.
    ///
    /// # Safety
    ///
    /// Same contract as the `run` trampoline: `context` must point to a
    /// live task set whose slot `index` is populated and unshared.
    unsafe fn execute(&self, run: unsafe fn(*const (), usize), context: *const (), index: usize) {
        let start = self.timing.load(Ordering::Relaxed).then(Instant::now);
        // SAFETY: forwarded caller contract.
        unsafe { run(context, index) };
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.lane_nanos[index].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// The erased context: the caller's closure and the taken-by-one-executor
/// task slots.
struct TaskSet<'a, T, F> {
    tasks: &'a [UnsafeCell<Option<T>>],
    run_task: &'a F,
}

// SAFETY: workers access disjoint `UnsafeCell` slots (slot `i` is touched
// only by the executor of task `i`) and share `run_task: &F` with `F: Sync`.
unsafe impl<T: Send, F: Sync> Sync for TaskSet<'_, T, F> {}

/// Monomorphized job executor: moves task `index` out of its slot and runs
/// the caller's closure on it.
///
/// # Safety
///
/// `context` must point to a live `TaskSet<T, F>` whose slot `index` is
/// populated and not accessed by any other thread.
unsafe fn trampoline<T: Send, F: Fn(usize, T) + Sync>(context: *const (), index: usize) {
    // SAFETY: per the contract above; the pool dispatches each index to
    // exactly one executor while the caller keeps the set alive.
    let set = unsafe { &*context.cast::<TaskSet<'_, T, F>>() };
    let task = unsafe { (*set.tasks[index].get()).take() };
    (set.run_task)(index, task.expect("pool task dispatched twice"));
}

/// A fixed-width pool of persistent worker threads executing one multi-task
/// job at a time.
///
/// Created once per simulation (warm-up), reused every round, joined on
/// drop.  See the module docs for the design and safety model, and
/// [`route_into_radix_parallel`](crate::GossipScheduler::route_into_radix_parallel)
/// for the primary caller.
pub struct RoundPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for RoundPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl RoundPool {
    /// Creates a pool of `workers` total execution lanes (the calling thread
    /// is lane 0, so `workers − 1` OS threads are spawned; values are
    /// clamped to `1..=`[`MAX_WORKERS`]).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, MAX_WORKERS);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
                next_epoch: 1,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            timing: AtomicBool::new(false),
            lane_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
        });
        let handles = (1..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flip-round-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn round-pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            handles,
        }
    }

    /// Total execution lanes (including the calling thread).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Turns per-lane busy-time accounting on or off.  Off (the default)
    /// costs one relaxed flag load per dispatched task and never reads the
    /// clock, preserving the allocation-free, timing-free hot path.
    pub fn set_timing(&self, enabled: bool) {
        self.shared.timing.store(enabled, Ordering::Relaxed);
    }

    /// Whether per-lane busy-time accounting is on.
    #[must_use]
    pub fn timing_enabled(&self) -> bool {
        self.shared.timing.load(Ordering::Relaxed)
    }

    /// Drains the accumulated per-lane busy nanoseconds into `sink(lane,
    /// ns)`, resetting the counters (idle lanes are skipped).
    pub fn drain_lane_nanos(&self, mut sink: impl FnMut(usize, u64)) {
        for (lane, counter) in self.shared.lane_nanos.iter().enumerate().take(self.workers) {
            let ns = counter.swap(0, Ordering::Relaxed);
            if ns > 0 {
                sink(lane, ns);
            }
        }
    }

    /// Runs up to [`Self::workers`] task bundles concurrently, one per lane,
    /// and returns when all of them have finished.
    ///
    /// `tasks` yields the per-lane bundles (built from disjoint borrows —
    /// `chunks_mut` slices and friends); `run_task(lane, bundle)` executes
    /// one of them.  Bundle 0 runs on the calling thread, so a single-lane
    /// pool is plain sequential execution.  Heap-free: bundles are staged in
    /// a stack array.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` yields more than [`Self::workers`] bundles, and
    /// re-raises (as a panic on the caller) any panic from a worker's task —
    /// after all other workers finished, so no borrow outlives the call.
    pub fn run<T, I, F>(&self, tasks: I, run_task: F)
    where
        T: Send,
        I: IntoIterator<Item = T>,
        F: Fn(usize, T) + Sync,
    {
        let slots: [UnsafeCell<Option<T>>; MAX_WORKERS] =
            std::array::from_fn(|_| UnsafeCell::new(None));
        let mut count = 0usize;
        for task in tasks {
            assert!(
                count < self.workers,
                "RoundPool::run dispatched more tasks than workers ({})",
                self.workers
            );
            // Not yet shared: plain initialisation through the cell.
            // SAFETY: `slots` is exclusively owned until the job is
            // published below.
            unsafe { *slots[count].get() = Some(task) };
            count += 1;
        }
        if count == 0 {
            return;
        }
        let set = TaskSet {
            tasks: &slots[..count],
            run_task: &run_task,
        };
        let context: *const () = (&raw const set).cast();

        if count > 1 {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            debug_assert!(state.job.is_none(), "RoundPool::run is not reentrant");
            let epoch = state.next_epoch;
            state.next_epoch += 1;
            state.remaining = count - 1;
            state.job = Some(Job {
                context,
                run: trampoline::<T, F>,
                tasks: count,
                epoch,
            });
            drop(state);
            self.shared.go.notify_all();
        }

        // The guard is the heart of the safety argument: whatever happens
        // while the caller executes bundle 0 — including a panic — the
        // erased context stays alive until every worker is done with it.
        let rendezvous = Rendezvous {
            shared: if count > 1 { Some(&self.shared) } else { None },
        };
        // SAFETY: slot 0 is populated and no worker executes index 0.
        unsafe { self.shared.execute(trampoline::<T, F>, context, 0) };
        drop(rendezvous);
    }
}

/// Waits out the current job on drop; re-raises worker panics.
struct Rendezvous<'a> {
    shared: Option<&'a Shared>,
}

impl Drop for Rendezvous<'_> {
    fn drop(&mut self) {
        let Some(shared) = self.shared else { return };
        let mut state = shared.state.lock().expect("pool mutex poisoned");
        while state.remaining > 0 {
            state = shared.done.wait(state).expect("pool mutex poisoned");
        }
        state.job = None;
        let worker_panicked = std::mem::replace(&mut state.panicked, false);
        drop(state);
        if worker_panicked && !std::thread::panicking() {
            panic!("a RoundPool worker task panicked");
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let claimed = {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = &state.job {
                    if job.epoch != last_epoch {
                        last_epoch = job.epoch;
                        break (index < job.tasks).then_some((job.context, job.run));
                    }
                }
                state = shared.go.wait(state).expect("pool mutex poisoned");
            }
        };
        // `claimed` is None when this job has fewer tasks than lanes; the
        // epoch was still recorded so the worker sleeps through it.
        if let Some((context, run)) = claimed {
            // A panicking task must still report completion, or the caller
            // would wait forever; the panic flag is re-raised caller-side.
            // SAFETY: the dispatching caller keeps `context` alive until
            // `remaining` reaches zero, which this worker has not yet
            // signalled; `index < tasks` was checked under the lock.
            let ok = catch_unwind(AssertUnwindSafe(|| unsafe {
                shared.execute(run, context, index)
            }))
            .is_ok();
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            state.panicked |= !ok;
            state.remaining -= 1;
            if state.remaining == 0 {
                shared.done.notify_all();
            }
        }
    }
}

impl Drop for RoundPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.shared.go.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn width_is_clamped() {
        assert_eq!(RoundPool::new(0).workers(), 1);
        assert_eq!(RoundPool::new(1).workers(), 1);
        assert_eq!(RoundPool::new(3).workers(), 3);
        assert_eq!(RoundPool::new(10_000).workers(), MAX_WORKERS);
    }

    #[test]
    fn runs_disjoint_mutable_tasks() {
        let pool = RoundPool::new(4);
        let mut data = vec![0u64; 4096];
        for round in 1..=50u64 {
            pool.run(data.chunks_mut(1024), |lane, chunk| {
                for x in chunk {
                    *x += round * (lane as u64 + 1);
                }
            });
        }
        // Lane assignment is by chunk order, so the result is deterministic.
        let sum_rounds: u64 = (1..=50).sum();
        for (i, &x) in data.iter().enumerate() {
            let lane = (i / 1024) as u64 + 1;
            assert_eq!(x, sum_rounds * lane, "index {i}");
        }
    }

    #[test]
    fn caller_lane_is_zero_and_executes_inline() {
        let pool = RoundPool::new(2);
        let caller = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.run([0usize, 1], |lane, task| {
            assert_eq!(lane, task);
            if lane == 0 {
                assert_eq!(std::thread::current().id(), caller);
            } else {
                assert_ne!(std::thread::current().id(), caller);
            }
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fewer_tasks_than_lanes_is_fine() {
        let pool = RoundPool::new(8);
        for _ in 0..10 {
            let hits = AtomicUsize::new(0);
            pool.run([(); 3], |_, ()| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 3);
        }
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let pool = RoundPool::new(4);
        pool.run(std::iter::empty::<()>(), |_, ()| panic!("never runs"));
    }

    #[test]
    fn single_lane_pool_is_sequential() {
        let pool = RoundPool::new(1);
        let mut total = 0u64;
        // A single bundle borrowing the accumulator mutably: lane 0 runs it
        // inline, so the borrow is plain and the closure still `Sync`-checks.
        pool.run([&mut total], |lane, total| {
            assert_eq!(lane, 0);
            *total += 7;
        });
        assert_eq!(total, 7);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = RoundPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(0..4usize, |_, task| {
                assert!(task != 2, "task 2 explodes");
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked job and runs the next one.
        let hits = AtomicUsize::new(0);
        pool.run(0..4usize, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn caller_task_panic_still_waits_for_workers() {
        let pool = RoundPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(0..4usize, |lane, _| {
                if lane == 0 {
                    panic!("caller lane explodes");
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // All worker lanes ran to completion before `run` unwound, so their
        // borrows never outlived the call.
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn lane_timing_accumulates_only_when_enabled() {
        let pool = RoundPool::new(2);
        pool.run([(), ()], |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let mut drained = Vec::new();
        pool.drain_lane_nanos(|lane, ns| drained.push((lane, ns)));
        assert!(
            drained.is_empty(),
            "timing off records nothing: {drained:?}"
        );

        pool.set_timing(true);
        assert!(pool.timing_enabled());
        pool.run([(), ()], |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        pool.drain_lane_nanos(|lane, ns| drained.push((lane, ns)));
        assert_eq!(drained.len(), 2, "{drained:?}");
        assert_eq!(drained[0].0, 0);
        assert_eq!(drained[1].0, 1);
        assert!(
            drained.iter().all(|&(_, ns)| ns >= 1_000_000),
            "{drained:?}"
        );
        // Draining resets the counters.
        let mut again = Vec::new();
        pool.drain_lane_nanos(|lane, ns| again.push((lane, ns)));
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn too_many_tasks_panics() {
        let pool = RoundPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(0..3usize, |_, _| {});
        }));
        assert!(result.is_err());
    }
}
