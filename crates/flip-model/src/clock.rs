//! Clock models: the fully-synchronous global clock and bounded-offset local clocks.

use rand::Rng;

use crate::rng::SimRng;

/// How agents' clocks are initialised at the start of an execution.
///
/// * [`ClockModel::Global`] — the fully-synchronous setting of paper §2: every
///   agent starts with its clock at zero.
/// * [`ClockModel::BoundedOffset`] — the relaxed setting of paper §3.1: every
///   clock starts at an integer drawn uniformly from `[0, max_offset)`.
/// * [`ClockModel::OnActivation`] — the standard setting of paper §1.3.3: an
///   agent's clock starts (at zero) only when it first hears a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockModel {
    /// All agents share a global clock initialised to zero.
    Global,
    /// Each clock is initialised to an arbitrary value in `[0, max_offset)`.
    BoundedOffset {
        /// Exclusive upper bound `D` on initial clock values.
        max_offset: u64,
    },
    /// Clocks start only upon activation (first received message).
    OnActivation,
}

impl ClockModel {
    /// Draws the initial clock value for one agent under this model.
    ///
    /// For [`ClockModel::OnActivation`] the initial value is `0`; the clock
    /// should additionally be considered *stopped* until activation, which is
    /// the protocol's responsibility (see [`LocalClock::stopped`]).
    #[must_use]
    pub fn initial_offset(&self, rng: &mut SimRng) -> u64 {
        match self {
            ClockModel::Global | ClockModel::OnActivation => 0,
            ClockModel::BoundedOffset { max_offset } => {
                if *max_offset <= 1 {
                    0
                } else {
                    rng.gen_range(0..*max_offset)
                }
            }
        }
    }
}

/// A per-agent local clock.
///
/// The clock ticks once per simulation round (the protocol calls
/// [`LocalClock::tick`] from its `end_round` hook), can start from a non-zero
/// offset, can be created stopped (for the on-activation model) and can be
/// reset (used by the clock-synchronisation preamble of paper §3.2).
///
/// # Example
///
/// ```
/// use flip_model::LocalClock;
///
/// let mut clock = LocalClock::stopped();
/// clock.tick();
/// assert_eq!(clock.now(), None); // not started yet
/// clock.start_at(0);
/// clock.tick();
/// clock.tick();
/// assert_eq!(clock.now(), Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalClock {
    value: Option<u64>,
}

impl LocalClock {
    /// A running clock starting at `offset`.
    #[must_use]
    pub fn starting_at(offset: u64) -> Self {
        Self {
            value: Some(offset),
        }
    }

    /// A stopped clock (reads `None` until started).
    #[must_use]
    pub fn stopped() -> Self {
        Self { value: None }
    }

    /// Whether the clock has been started.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.value.is_some()
    }

    /// The current reading, or `None` if the clock has not started.
    #[must_use]
    pub fn now(&self) -> Option<u64> {
        self.value
    }

    /// Starts (or restarts) the clock at the given value.
    pub fn start_at(&mut self, value: u64) {
        self.value = Some(value);
    }

    /// Resets a running clock back to zero; stopped clocks stay stopped.
    pub fn reset(&mut self) {
        if self.value.is_some() {
            self.value = Some(0);
        }
    }

    /// Advances the clock by one round if it is running.
    pub fn tick(&mut self) {
        if let Some(v) = self.value.as_mut() {
            *v += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_model_has_zero_offsets() {
        let mut rng = SimRng::from_seed(0);
        for _ in 0..10 {
            assert_eq!(ClockModel::Global.initial_offset(&mut rng), 0);
        }
    }

    #[test]
    fn bounded_offsets_are_in_range_and_varied() {
        let mut rng = SimRng::from_seed(1);
        let model = ClockModel::BoundedOffset { max_offset: 10 };
        let offsets: Vec<u64> = (0..200).map(|_| model.initial_offset(&mut rng)).collect();
        assert!(offsets.iter().all(|&o| o < 10));
        assert!(offsets.iter().any(|&o| o != offsets[0]));
    }

    #[test]
    fn degenerate_bound_yields_zero() {
        let mut rng = SimRng::from_seed(2);
        let model = ClockModel::BoundedOffset { max_offset: 1 };
        assert_eq!(model.initial_offset(&mut rng), 0);
        let model = ClockModel::BoundedOffset { max_offset: 0 };
        assert_eq!(model.initial_offset(&mut rng), 0);
    }

    #[test]
    fn stopped_clock_ignores_ticks_until_started() {
        let mut clock = LocalClock::stopped();
        assert!(!clock.is_running());
        clock.tick();
        assert_eq!(clock.now(), None);
        clock.start_at(5);
        clock.tick();
        assert_eq!(clock.now(), Some(6));
    }

    #[test]
    fn reset_only_affects_running_clocks() {
        let mut stopped = LocalClock::stopped();
        stopped.reset();
        assert_eq!(stopped.now(), None);

        let mut running = LocalClock::starting_at(9);
        running.reset();
        assert_eq!(running.now(), Some(0));
    }

    #[test]
    fn default_clock_is_stopped() {
        assert_eq!(LocalClock::default().now(), None);
    }
}
