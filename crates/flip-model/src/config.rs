//! Simulation configuration.

use crate::faults::FaultSpec;
use crate::opinion::Opinion;
use crate::trace::TraceOptions;

/// Configuration for a [`Simulation`](crate::Simulation).
///
/// `SimulationConfig` is a non-consuming builder: configure it with the
/// `with_*` methods and pass it to [`Simulation::new`](crate::Simulation::new).
///
/// # Example
///
/// ```
/// use flip_model::{Opinion, SimulationConfig};
///
/// let config = SimulationConfig::new(1_000)
///     .with_seed(7)
///     .with_reference(Opinion::One)
///     .with_history(true);
/// assert_eq!(config.population(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    n: usize,
    seed: u64,
    reference: Option<Opinion>,
    trace: TraceOptions,
    threads: usize,
    faults: Option<FaultSpec>,
}

impl SimulationConfig {
    /// Creates a configuration for a population of `n` agents with seed `0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            seed: 0,
            reference: None,
            trace: TraceOptions::default(),
            threads: 1,
            faults: None,
        }
    }

    /// Sets the RNG seed (runs with equal seeds are bit-for-bit identical).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declares which opinion is "correct" so that traces can record the
    /// per-round fraction of correct agents.
    #[must_use]
    pub fn with_reference(mut self, reference: Opinion) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Enables (or disables) per-round history recording in the trace.
    #[must_use]
    pub fn with_history(mut self, record: bool) -> Self {
        self.trace.record_history = record;
        self
    }

    /// Enables (or disables) recording each agent's activation round.
    #[must_use]
    pub fn with_activation_trace(mut self, record: bool) -> Self {
        self.trace.record_activations = record;
        self
    }

    /// Replaces the trace options wholesale.
    #[must_use]
    pub fn with_trace_options(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the number of worker lanes available to a single round
    /// (default `1`: fully sequential).
    ///
    /// Intra-round parallelism is **bit-identical** to the sequential
    /// engine: a seeded run produces exactly the same deliveries, metrics
    /// and RNG stream at every thread count (see
    /// [`GossipScheduler::route_into_parallel`](crate::GossipScheduler::route_into_parallel)),
    /// so this knob trades wall-clock for cores without perturbing results.
    /// Values are clamped to [`MAX_WORKERS`](crate::MAX_WORKERS); sweeps
    /// should derive this from
    /// `TrialRunner::round_threads` so trial fan-out and round workers
    /// share one budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Injects faulty participants: the engine samples a deterministic
    /// [`FaultPlan`](crate::FaultPlan) from `spec` at construction (the
    /// hybrid engine assigns the faulty roles to its tracked prefix).
    ///
    /// Without this call no fault machinery runs and no RNG words are
    /// drawn for fault assignment, so fault-free seeded results are
    /// byte-identical to builds that predate fault injection.
    #[must_use]
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// The configured population size.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// The configured RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured correct opinion, if any.
    #[must_use]
    pub fn reference(&self) -> Option<Opinion> {
        self.reference
    }

    /// The configured trace options.
    #[must_use]
    pub fn trace_options(&self) -> TraceOptions {
        self.trace
    }

    /// The configured number of per-round worker lanes (at least `1`).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured fault injection, if any.
    #[must_use]
    pub fn faults(&self) -> Option<FaultSpec> {
        self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let config = SimulationConfig::new(42)
            .with_seed(9)
            .with_reference(Opinion::Zero)
            .with_history(true)
            .with_activation_trace(true);
        assert_eq!(config.population(), 42);
        assert_eq!(config.seed(), 9);
        assert_eq!(config.reference(), Some(Opinion::Zero));
        assert!(config.trace_options().record_history);
        assert!(config.trace_options().record_activations);
    }

    #[test]
    fn defaults_are_quiet() {
        let config = SimulationConfig::new(5);
        assert_eq!(config.seed(), 0);
        assert_eq!(config.reference(), None);
        assert!(!config.trace_options().record_history);
        assert!(!config.trace_options().record_activations);
        assert_eq!(config.threads(), 1);
    }

    #[test]
    fn threads_are_clamped_to_at_least_one() {
        assert_eq!(SimulationConfig::new(5).with_threads(0).threads(), 1);
        assert_eq!(SimulationConfig::new(5).with_threads(4).threads(), 4);
    }

    #[test]
    fn faults_default_to_none_and_round_trip() {
        assert_eq!(SimulationConfig::new(5).faults(), None);
        let spec: FaultSpec = "byz:0.1".parse().unwrap();
        assert_eq!(
            SimulationConfig::new(5).with_faults(spec).faults(),
            Some(spec)
        );
    }

    #[test]
    fn trace_options_can_be_replaced() {
        let config = SimulationConfig::new(5).with_trace_options(TraceOptions {
            record_history: true,
            record_activations: false,
        });
        assert!(config.trace_options().record_history);
    }
}
