//! Error types for the Flip-model substrate.

use std::error::Error;
use std::fmt;

/// Errors returned when constructing or running Flip-model simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlipError {
    /// The binary symmetric channel crossover probability must lie in `[0, 1/2]`.
    InvalidCrossover {
        /// The rejected probability.
        probability: f64,
    },
    /// The noise margin `ε` must lie in `(0, 1/2]`.
    InvalidEpsilon {
        /// The rejected value of `ε`.
        epsilon: f64,
    },
    /// A population must contain at least two agents for push gossip to be defined.
    PopulationTooSmall {
        /// The rejected population size.
        n: usize,
    },
    /// A protocol or configuration parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for FlipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipError::InvalidCrossover { probability } => write!(
                f,
                "channel crossover probability {probability} is outside [0, 0.5]"
            ),
            FlipError::InvalidEpsilon { epsilon } => {
                write!(f, "noise margin epsilon {epsilon} is outside (0, 0.5]")
            }
            FlipError::PopulationTooSmall { n } => {
                write!(f, "population of {n} agents is too small; need at least 2")
            }
            FlipError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for FlipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = FlipError::InvalidCrossover { probability: 0.7 };
        assert!(e.to_string().contains("0.7"));
        let e = FlipError::InvalidEpsilon { epsilon: 0.9 };
        assert!(e.to_string().contains("0.9"));
        let e = FlipError::PopulationTooSmall { n: 1 };
        assert!(e.to_string().contains('1'));
        let e = FlipError::InvalidParameter {
            name: "beta",
            message: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("beta"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlipError>();
    }
}
